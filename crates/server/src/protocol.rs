//! The wire protocol: typed requests and response builders.
//!
//! Transport is **JSON lines**: one request object per line from the
//! client, one response object per line from the server, UTF-8, `\n`
//! terminated.  The full message catalogue with examples lives in
//! `docs/PROTOCOL.md`; this module is its executable form — every request
//! the server accepts parses into a [`Request`], and every response the
//! server emits is built here.

use std::time::Duration;

use qob_core::{QueryReport, ScriptOutcome, ServerContext, SessionError};
use qob_sql::ParamValue;

use crate::json::Json;

/// A parsed client request (the `"type"` field selects the variant).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `{"type":"query","sql":"..."}` — plan and execute a `;`-separated
    /// script, one result per statement.
    Query {
        /// The SQL text (may hold several `;`-separated statements).
        sql: String,
    },
    /// `{"type":"explain","sql":"..."}` — plan only, never execute.
    Explain {
        /// The SQL text.
        sql: String,
    },
    /// `{"type":"set","option":"threads","value":"4"}` — update one
    /// per-session option.
    Set {
        /// Option name (`threads`, `timeout_ms`, `estimator`, `execute`).
        option: String,
        /// New value, as a string (numbers are accepted and stringified).
        value: String,
    },
    /// `{"type":"prepare","name":"q","sql":"SELECT ... ?"}` — register a
    /// parameterized statement under a session-private name.
    Prepare {
        /// The statement name.
        name: String,
        /// The (possibly parameterized) statement body.
        sql: String,
    },
    /// `{"type":"execute","name":"q","params":[2000,"x",null]}` — run a
    /// prepared statement with concrete parameter values.
    Execute {
        /// The prepared statement's name.
        name: String,
        /// Parameter values, in slot order (JSON numbers, strings, null).
        params: Vec<ParamValue>,
    },
    /// `{"type":"deallocate","name":"q"}` — drop a prepared statement.
    Deallocate {
        /// The prepared statement's name.
        name: String,
    },
    /// `{"type":"stats"}` — server-wide counters and warm-state info.
    Stats,
    /// `{"type":"metrics"}` — the Prometheus text exposition plus a JSON
    /// summary (latency percentiles, counters).
    Metrics,
    /// `{"type":"history","top":10}` — the per-fingerprint query history:
    /// counts, per-phase latency percentiles and recent regressions.  The
    /// optional `top` caps the fingerprint list to the hottest N by count.
    History {
        /// Cap on returned fingerprints (`None` = all, hottest first).
        top: Option<u64>,
    },
    /// `{"type":"trace_export"}` — the shared pool's retained pipeline
    /// spans as a Chrome trace-event JSON array (loadable in
    /// `about://tracing`).
    TraceExport,
    /// `{"type":"ping"}` — liveness probe.
    Ping,
    /// `{"type":"shutdown"}` — stop accepting connections and exit.
    Shutdown,
}

impl Request {
    /// Parses one request line.  Errors are human-readable and become
    /// `invalid_request` protocol errors.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value = Json::parse(line).map_err(|e| e.to_string())?;
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| "request needs a string `type` field".to_owned())?;
        let sql_field = |value: &Json| -> Result<String, String> {
            value
                .get("sql")
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("`{kind}` needs a string `sql` field"))
        };
        let name_field = |value: &Json| -> Result<String, String> {
            value
                .get("name")
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("`{kind}` needs a string `name` field"))
        };
        match kind {
            "query" => Ok(Request::Query { sql: sql_field(&value)? }),
            "explain" => Ok(Request::Explain { sql: sql_field(&value)? }),
            "prepare" => {
                Ok(Request::Prepare { name: name_field(&value)?, sql: sql_field(&value)? })
            }
            "execute" => {
                let name = name_field(&value)?;
                let params = match value.get("params") {
                    None => Vec::new(),
                    Some(Json::Arr(items)) => {
                        items.iter().map(param_value).collect::<Result<Vec<_>, _>>()?
                    }
                    Some(_) => return Err("`execute` needs an array `params` field".to_owned()),
                };
                Ok(Request::Execute { name, params })
            }
            "deallocate" => Ok(Request::Deallocate { name: name_field(&value)? }),
            "set" => {
                let option = value
                    .get("option")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "`set` needs a string `option` field".to_owned())?
                    .to_owned();
                let value = match value.get("value") {
                    Some(Json::Str(s)) => s.clone(),
                    Some(Json::Num(n)) => Json::Num(*n).to_string(),
                    Some(Json::Bool(b)) => b.to_string(),
                    _ => return Err("`set` needs a string, number or bool `value`".to_owned()),
                };
                Ok(Request::Set { option, value })
            }
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "history" => {
                let top = match value.get("top") {
                    None => None,
                    Some(Json::Num(n)) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
                    Some(_) => {
                        return Err("`history` needs a non-negative integer `top`".to_owned())
                    }
                };
                Ok(Request::History { top })
            }
            "trace_export" => Ok(Request::TraceExport),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type `{other}`")),
        }
    }

    /// Serialises the request as one protocol line (without the newline).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Query { sql } => {
                Json::obj(vec![("type", Json::str("query")), ("sql", Json::str(sql.clone()))])
            }
            Request::Explain { sql } => {
                Json::obj(vec![("type", Json::str("explain")), ("sql", Json::str(sql.clone()))])
            }
            Request::Prepare { name, sql } => Json::obj(vec![
                ("type", Json::str("prepare")),
                ("name", Json::str(name.clone())),
                ("sql", Json::str(sql.clone())),
            ]),
            Request::Execute { name, params } => Json::obj(vec![
                ("type", Json::str("execute")),
                ("name", Json::str(name.clone())),
                (
                    "params",
                    Json::Arr(
                        params
                            .iter()
                            .map(|p| match p {
                                ParamValue::Int(v) => Json::Num(*v as f64),
                                ParamValue::Str(s) => Json::str(s.clone()),
                                ParamValue::Null => Json::Null,
                            })
                            .collect(),
                    ),
                ),
            ]),
            Request::Deallocate { name } => Json::obj(vec![
                ("type", Json::str("deallocate")),
                ("name", Json::str(name.clone())),
            ]),
            Request::Set { option, value } => Json::obj(vec![
                ("type", Json::str("set")),
                ("option", Json::str(option.clone())),
                ("value", Json::str(value.clone())),
            ]),
            Request::Stats => Json::obj(vec![("type", Json::str("stats"))]),
            Request::Metrics => Json::obj(vec![("type", Json::str("metrics"))]),
            Request::History { top } => {
                let mut pairs = vec![("type", Json::str("history"))];
                if let Some(top) = top {
                    pairs.push(("top", Json::Num(*top as f64)));
                }
                Json::obj(pairs)
            }
            Request::TraceExport => Json::obj(vec![("type", Json::str("trace_export"))]),
            Request::Ping => Json::obj(vec![("type", Json::str("ping"))]),
            Request::Shutdown => Json::obj(vec![("type", Json::str("shutdown"))]),
        }
    }
}

/// The largest integer magnitude a JSON number (an IEEE-754 double)
/// represents exactly.  Integer parameters beyond it would have been
/// silently rounded somewhere in transit, so they are rejected rather
/// than bound as a corrupted literal.
const MAX_EXACT_JSON_INT: f64 = 9_007_199_254_740_992.0; // 2^53

/// Parses one `execute` parameter value (integer, string or null).
fn param_value(value: &Json) -> Result<ParamValue, String> {
    match value {
        Json::Null => Ok(ParamValue::Null),
        Json::Str(s) => Ok(ParamValue::Str(s.clone())),
        Json::Num(n) if n.fract() == 0.0 && n.abs() <= MAX_EXACT_JSON_INT => {
            Ok(ParamValue::Int(*n as i64))
        }
        Json::Num(n) if n.fract() == 0.0 => Err(format!(
            "integer parameter {n} exceeds ±2^53 and cannot travel exactly as a JSON number"
        )),
        other => Err(format!("parameter values must be integers, strings or null, got `{other}`")),
    }
}

/// Builds the error response shape shared by every failure:
/// `{"ok":false,"error":{"code":...,"message":...}}`.
pub fn error_response(code: &str, message: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::obj(vec![("code", Json::str(code)), ("message", Json::str(message))])),
    ])
}

/// Maps a [`SessionError`] to its protocol error response.
pub fn session_error_response(error: &SessionError) -> Json {
    error_response(error.code(), &error.to_string())
}

fn duration_us(d: Duration) -> Json {
    Json::Num(d.as_micros() as f64)
}

/// Renders one per-statement result object inside a `result` response.
pub fn report_to_json(report: &QueryReport) -> Json {
    let mut pairs = vec![
        ("query", Json::str(report.name.clone())),
        ("relations", Json::Num(report.relations as f64)),
        ("join_predicates", Json::Num(report.join_predicates as f64)),
        ("selections", Json::Num(report.selections as f64)),
        ("estimator", Json::str(report.estimator.clone())),
        ("cost", Json::Num(report.cost)),
        ("threads", Json::Num(report.threads as f64)),
        ("plan", Json::str(report.plan.clone())),
    ];
    if let Some(status) = report.plan_cache {
        pairs.push(("plan_cache", Json::str(status.label())));
    }
    if let Some(trace) = &report.trace {
        pairs.push((
            "trace",
            Json::obj(vec![
                ("parse_us", Json::Num(trace.parse_us as f64)),
                ("bind_us", Json::Num(trace.bind_us as f64)),
                ("optimize_us", Json::Num(trace.optimize_us as f64)),
                ("queue_us", Json::Num(trace.queue_us as f64)),
                ("execute_us", Json::Num(trace.execute_us as f64)),
            ]),
        ));
    }
    if let Some(exec) = &report.execution {
        pairs.push(("rows", Json::Num(exec.rows as f64)));
        pairs.push(("elapsed_us", duration_us(exec.elapsed)));
        pairs.push(("worst_q_error", Json::Num(exec.worst_q_error)));
        let operators = exec
            .operators
            .iter()
            .map(|op| {
                let mut fields = vec![
                    ("relations", Json::str(op.relations.clone())),
                    ("estimated", Json::Num(op.estimated)),
                    ("true", Json::Num(op.true_rows as f64)),
                    ("q_error", Json::Num(op.q_error)),
                ];
                if let Some(time_us) = op.time_us {
                    fields.push(("time_us", Json::Num(time_us as f64)));
                }
                if let Some(morsels) = op.morsels {
                    fields.push(("morsels", Json::Num(morsels as f64)));
                }
                Json::obj(fields)
            })
            .collect();
        pairs.push(("operators", Json::Arr(operators)));
        pairs.push(("replan_count", Json::Num(exec.replans.len() as f64)));
        if !exec.replans.is_empty() {
            let replans = exec
                .replans
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("after", Json::str(r.after.clone())),
                        ("estimated", Json::Num(r.estimated)),
                        ("observed", Json::Num(r.observed as f64)),
                        ("factor", Json::Num(r.factor)),
                        ("changed", Json::Bool(r.changed)),
                        ("resumed_plan", Json::str(r.resumed_plan.clone())),
                    ])
                })
                .collect();
            pairs.push(("replans", Json::Arr(replans)));
        }
    }
    Json::obj(pairs)
}

/// Builds the `result` response for a list of per-statement reports.
pub fn result_response(reports: &[QueryReport]) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("type", Json::str("result")),
        ("results", Json::Arr(reports.iter().map(report_to_json).collect())),
    ])
}

/// Renders one script outcome inside a `result` response: a full report
/// object for queries, a small acknowledgement object for
/// `PREPARE`/`DEALLOCATE`.
pub fn outcome_to_json(outcome: &ScriptOutcome) -> Json {
    match outcome {
        ScriptOutcome::Query(report) => report_to_json(report),
        ScriptOutcome::Prepared { name, params } => Json::obj(vec![
            ("prepared", Json::str(name.clone())),
            ("params", Json::Num(*params as f64)),
        ]),
        ScriptOutcome::Deallocated { name } => {
            Json::obj(vec![("deallocated", Json::str(name.clone()))])
        }
    }
}

/// Builds the `result` response for a script's outcomes.
pub fn outcomes_response(outcomes: &[ScriptOutcome]) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("type", Json::str("result")),
        ("results", Json::Arr(outcomes.iter().map(outcome_to_json).collect())),
    ])
}

/// Builds the acknowledgement for a successful `prepare`.
pub fn prepared_response(name: &str, params: usize) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("type", Json::str("prepared")),
        ("name", Json::str(name)),
        ("params", Json::Num(params as f64)),
    ])
}

/// Builds the acknowledgement for a successful `deallocate`.
pub fn deallocated_response(name: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("type", Json::str("deallocated")),
        ("name", Json::str(name)),
    ])
}

/// Builds the acknowledgement for a successful `set`.
pub fn set_response(option: &str, value: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("type", Json::str("set")),
        ("option", Json::str(option)),
        ("value", Json::str(value)),
    ])
}

/// Builds the `pong` liveness response.
pub fn pong_response() -> Json {
    Json::obj(vec![("ok", Json::Bool(true)), ("type", Json::str("pong"))])
}

/// Builds the `shutdown` acknowledgement.
pub fn shutdown_response() -> Json {
    Json::obj(vec![("ok", Json::Bool(true)), ("type", Json::str("shutdown"))])
}

/// Builds the `stats` response from the shared context plus server-level
/// gauges the connection layer tracks.
pub fn stats_response(
    server: &ServerContext,
    active_connections: usize,
    uptime: Duration,
    snapshot_loaded: bool,
) -> Json {
    let ctx = server.context();
    let cache = server.plan_cache_counters();
    let sizes = ctx.storage_sizes();
    let encoded: usize = sizes.iter().map(|t| t.encoded_bytes).sum();
    let plain: usize = sizes.iter().map(|t| t.plain_bytes).sum();
    let ratio = if encoded == 0 { 1.0 } else { plain as f64 / encoded as f64 };
    let storage_tables = Json::Arr(
        sizes
            .iter()
            .map(|t| {
                Json::obj(vec![
                    ("table", Json::str(&t.table)),
                    ("encoded_bytes", Json::Num(t.encoded_bytes as f64)),
                    ("plain_bytes", Json::Num(t.plain_bytes as f64)),
                    ("compression_ratio", Json::Num(t.compression_ratio())),
                    (
                        "columns",
                        Json::Arr(
                            t.columns
                                .iter()
                                .map(|c| {
                                    Json::obj(vec![
                                        ("column", Json::str(&c.column)),
                                        ("encoded_bytes", Json::Num(c.encoded_bytes as f64)),
                                        ("plain_bytes", Json::Num(c.plain_bytes as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("type", Json::str("stats")),
        ("tables", Json::Num(ctx.db().table_count() as f64)),
        ("total_rows", Json::Num(ctx.db().total_rows() as f64)),
        ("storage_encoded_bytes", Json::Num(encoded as f64)),
        ("storage_plain_bytes", Json::Num(plain as f64)),
        ("storage_compression_ratio", Json::Num(ratio)),
        ("storage_tables", storage_tables),
        ("indexes", Json::Num(ctx.db().index_count() as f64)),
        ("workload_queries", Json::Num(ctx.queries().len() as f64)),
        ("queries_served", Json::Num(server.queries_served() as f64)),
        ("replans_total", Json::Num(server.replans_total() as f64)),
        ("truth_cached", Json::Num(ctx.truth_cache_len() as f64)),
        ("plan_cache_hits", Json::Num(cache.hits as f64)),
        ("plan_cache_misses", Json::Num(cache.misses as f64)),
        ("plan_cache_fence_rejections", Json::Num(cache.fence_rejections as f64)),
        ("plan_cache_evictions", Json::Num(cache.evictions as f64)),
        ("plan_cache_installs", Json::Num(cache.installs as f64)),
        ("plan_cache_size", Json::Num(server.plan_cache_len() as f64)),
        ("plan_cache_capacity", Json::Num(server.plan_cache_capacity() as f64)),
        ("active_connections", Json::Num(active_connections as f64)),
        ("uptime_ms", Json::Num(uptime.as_millis() as f64)),
        ("snapshot_loaded", Json::Bool(snapshot_loaded)),
        ("datagen_runs", Json::Num(qob_datagen::generation_count() as f64)),
        ("admitted", Json::Num(server.metrics().admitted_total.get() as f64)),
        ("rejected", Json::Num(server.metrics().rejected_total.get() as f64)),
        ("pool_workers", Json::Num(server.pool_gauges().0 as f64)),
        ("pool_busy", Json::Num(server.pool_gauges().1 as f64)),
        ("pool_queue_depth", Json::Num(server.pool_gauges().2 as f64)),
        ("admission_executing", Json::Num(server.admission_gauges().0 as f64)),
        ("admission_queued", Json::Num(server.admission_gauges().1 as f64)),
        ("workers", worker_timelines_json(server)),
    ])
}

/// Renders the shared pool's per-worker busy/idle/steal accumulators (an
/// empty array when the server runs per-query pools).
fn worker_timelines_json(server: &ServerContext) -> Json {
    Json::Arr(
        server
            .worker_timelines()
            .iter()
            .enumerate()
            .map(|(i, t)| {
                Json::obj(vec![
                    ("worker", Json::Num(i as f64)),
                    ("busy_nanos", Json::Num(t.busy_nanos as f64)),
                    ("idle_nanos", Json::Num(t.idle_nanos as f64)),
                    ("steals", Json::Num(t.steals as f64)),
                    ("utilization", Json::Num(t.utilization())),
                ])
            })
            .collect(),
    )
}

/// Builds the `history` response: lifetime per-fingerprint aggregates
/// (hottest by count first, capped at `top` when given) and the most
/// recent regressions.  Fingerprints travel as hex strings — they are
/// 64-bit hashes and a JSON number would round them past 2^53.
pub fn history_response(server: &ServerContext, top: Option<u64>) -> Json {
    let snapshot = server.history().snapshot();
    let cap = top.map(|t| t as usize).unwrap_or(usize::MAX);
    let fingerprints = snapshot
        .fingerprints
        .iter()
        .take(cap)
        .map(|f| {
            Json::obj(vec![
                ("fingerprint", Json::str(format!("{:016x}", f.fingerprint))),
                ("query", Json::str(f.name.clone())),
                ("count", Json::Num(f.count as f64)),
                ("total_us", Json::Num(f.total_us as f64)),
                ("p50_us", Json::Num(f.p50_us)),
                ("p99_us", Json::Num(f.p99_us)),
                ("max_q_error", Json::Num(f.max_q_error)),
                ("replans", Json::Num(f.replans as f64)),
                ("regressions", Json::Num(f.regressions as f64)),
                ("last_rows", Json::Num(f.last_rows as f64)),
                ("last_seq", Json::Num(f.last_seq as f64)),
            ])
        })
        .collect();
    let regressions = snapshot
        .regressions
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("query", Json::str(r.name.clone())),
                ("fingerprint", Json::str(format!("{:016x}", r.fingerprint))),
                ("seq", Json::Num(r.seq as f64)),
                ("baseline_us", Json::Num(r.baseline_us)),
                ("recent_us", Json::Num(r.recent_us)),
                ("factor", Json::Num(r.factor)),
                ("ratio", Json::Num(r.ratio)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("type", Json::str("history")),
        ("recorded", Json::Num(server.history().recorded() as f64)),
        ("fingerprints", Json::Arr(fingerprints)),
        ("regressions", Json::Arr(regressions)),
    ])
}

/// Builds the `trace` response: the shared pool's retained pipeline spans
/// as a Chrome trace-event array (the `events` field is directly loadable
/// in `about://tracing` once written to a file).  Every event — including
/// the `thread_name` metadata — carries `name`/`ph`/`ts`/`pid`/`tid`, the
/// shape CI validates structurally.
pub fn trace_export_response(server: &ServerContext) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let event = |name: &str, ph: &str, ts: f64, tid: u32, args: Vec<(&str, Json)>| {
        Json::obj(vec![
            ("name", Json::str(name)),
            ("ph", Json::str(ph)),
            ("ts", Json::Num(ts)),
            ("pid", Json::Num(1.0)),
            ("tid", Json::Num(tid as f64)),
            ("args", Json::obj(args)),
        ])
    };
    let timelines = server.worker_timelines();
    for (i, t) in timelines.iter().enumerate() {
        let tid = i as u32 + 1;
        events.push(event(
            "thread_name",
            "M",
            0.0,
            tid,
            vec![("name", Json::str(format!("qob-worker-{i}")))],
        ));
        events.push(event(
            "worker_totals",
            "C",
            0.0,
            tid,
            vec![
                ("busy_nanos", Json::Num(t.busy_nanos as f64)),
                ("idle_nanos", Json::Num(t.idle_nanos as f64)),
                ("steals", Json::Num(t.steals as f64)),
            ],
        ));
    }
    let spans = server.pipeline_spans();
    let mut submitters: Vec<u32> =
        spans.iter().map(|s| s.tid).filter(|&tid| tid as usize > timelines.len()).collect();
    submitters.sort_unstable();
    submitters.dedup();
    for tid in submitters {
        events.push(event(
            "thread_name",
            "M",
            0.0,
            tid,
            vec![("name", Json::str(format!("submitter-{tid}")))],
        ));
    }
    for span in &spans {
        events.push(Json::obj(vec![
            ("name", Json::str(span.name.clone())),
            ("ph", Json::str("X")),
            ("ts", Json::Num(span.start_us as f64)),
            ("dur", Json::Num(span.dur_us as f64)),
            ("pid", Json::Num(1.0)),
            ("tid", Json::Num(span.tid as f64)),
            ("args", Json::obj(vec![])),
        ]));
    }
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("type", Json::str("trace")),
        ("span_count", Json::Num(spans.len() as f64)),
        ("events", Json::Arr(events)),
    ])
}

/// Builds the `metrics` response: the full Prometheus text exposition in
/// `body`, plus a JSON `summary` for programmatic consumers (the CLI's
/// bench-file output) — latency percentiles estimated from the histogram
/// buckets and the headline counters.
pub fn metrics_response(server: &ServerContext) -> Json {
    let m = server.metrics();
    let q = m.query_latency.snapshot();
    let w = m.queue_wait_latency.snapshot();
    let cache = server.plan_cache_counters();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("type", Json::str("metrics")),
        ("body", Json::str(server.metrics_exposition())),
        (
            "summary",
            Json::obj(vec![
                ("queries_total", Json::Num(m.queries_total.get() as f64)),
                ("query_errors_total", Json::Num(m.query_errors_total.get() as f64)),
                ("replans_total", Json::Num(m.replans_total.get() as f64)),
                ("slow_queries_total", Json::Num(m.slow_queries_total.get() as f64)),
                ("worker_panics_total", Json::Num(m.worker_panics_total.get() as f64)),
                ("regressions_total", Json::Num(m.regressions_total.get() as f64)),
                ("query_p50_us", Json::Num(q.quantile(0.5))),
                ("query_p95_us", Json::Num(q.quantile(0.95))),
                ("query_p99_us", Json::Num(q.quantile(0.99))),
                ("admitted_total", Json::Num(m.admitted_total.get() as f64)),
                ("rejected_total", Json::Num(m.rejected_total.get() as f64)),
                ("queue_wait_p50_us", Json::Num(w.quantile(0.5))),
                ("queue_wait_p99_us", Json::Num(w.quantile(0.99))),
                ("plan_cache_hits", Json::Num(cache.hits as f64)),
                ("plan_cache_misses", Json::Num(cache.misses as f64)),
                ("plan_cache_fence_rejections", Json::Num(cache.fence_rejections as f64)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_json() {
        let requests = vec![
            Request::Query { sql: "SELECT COUNT(*) FROM title t".into() },
            Request::Explain { sql: "SELECT 1".into() },
            Request::Set { option: "threads".into(), value: "4".into() },
            Request::Prepare { name: "q".into(), sql: "SELECT ... ?".into() },
            Request::Execute {
                name: "q".into(),
                params: vec![
                    ParamValue::Int(2000),
                    ParamValue::Str("x".into()),
                    ParamValue::Null,
                    ParamValue::Int(-7),
                ],
            },
            Request::Execute { name: "noargs".into(), params: vec![] },
            Request::Deallocate { name: "q".into() },
            Request::Stats,
            Request::Metrics,
            Request::History { top: None },
            Request::History { top: Some(5) },
            Request::TraceExport,
            Request::Ping,
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.to_json().to_string();
            assert_eq!(Request::parse(&line).unwrap(), request, "line: {line}");
        }
        // `params` may be omitted entirely.
        let r = Request::parse(r#"{"type":"execute","name":"q"}"#).unwrap();
        assert_eq!(r, Request::Execute { name: "q".into(), params: vec![] });
    }

    #[test]
    fn execute_params_reject_bad_values() {
        for line in [
            r#"{"type":"execute","name":"q","params":[1.5]}"#,
            r#"{"type":"execute","name":"q","params":[true]}"#,
            r#"{"type":"execute","name":"q","params":[[1]]}"#,
            r#"{"type":"execute","name":"q","params":"x"}"#,
            // Beyond 2^53 a JSON number has already lost exactness.
            r#"{"type":"execute","name":"q","params":[9007199254740994]}"#,
        ] {
            assert!(Request::parse(line).is_err(), "accepted: {line}");
        }
        assert!(Request::parse(r#"{"type":"prepare","sql":"x"}"#).unwrap_err().contains("name"));
        assert!(Request::parse(r#"{"type":"prepare","name":"x"}"#).unwrap_err().contains("sql"));
        assert!(Request::parse(r#"{"type":"deallocate"}"#).unwrap_err().contains("name"));
    }

    #[test]
    fn ack_responses_have_the_documented_shape() {
        let p = prepared_response("q", 2);
        assert_eq!(p.get("type").unwrap().as_str(), Some("prepared"));
        assert_eq!(p.get("params").unwrap().as_u64(), Some(2));
        let d = deallocated_response("q");
        assert_eq!(d.get("type").unwrap().as_str(), Some("deallocated"));
        assert_eq!(d.get("name").unwrap().as_str(), Some("q"));

        let outcomes = vec![
            ScriptOutcome::Prepared { name: "q".into(), params: 1 },
            ScriptOutcome::Deallocated { name: "q".into() },
        ];
        let response = outcomes_response(&outcomes);
        let results = response.get("results").unwrap().as_array().unwrap();
        assert_eq!(results[0].get("prepared").unwrap().as_str(), Some("q"));
        assert_eq!(results[1].get("deallocated").unwrap().as_str(), Some("q"));
    }

    #[test]
    fn set_accepts_number_and_bool_values() {
        let r = Request::parse(r#"{"type":"set","option":"threads","value":4}"#).unwrap();
        assert_eq!(r, Request::Set { option: "threads".into(), value: "4".into() });
        let r = Request::parse(r#"{"type":"set","option":"execute","value":false}"#).unwrap();
        assert_eq!(r, Request::Set { option: "execute".into(), value: "false".into() });
    }

    #[test]
    fn malformed_requests_are_descriptive() {
        assert!(Request::parse("not json").unwrap_err().contains("invalid JSON"));
        assert!(Request::parse("{}").unwrap_err().contains("`type`"));
        assert!(Request::parse(r#"{"type":"fly"}"#).unwrap_err().contains("fly"));
        assert!(Request::parse(r#"{"type":"query"}"#).unwrap_err().contains("sql"));
        assert!(Request::parse(r#"{"type":"set","option":"x"}"#).unwrap_err().contains("value"));
        for line in [
            r#"{"type":"history","top":-1}"#,
            r#"{"type":"history","top":1.5}"#,
            r#"{"type":"history","top":"many"}"#,
        ] {
            assert!(Request::parse(line).unwrap_err().contains("top"), "accepted: {line}");
        }
    }

    #[test]
    fn error_responses_have_the_documented_shape() {
        let e = error_response("sql_error", "boom");
        assert_eq!(e.get("ok").unwrap().as_bool(), Some(false));
        let inner = e.get("error").unwrap();
        assert_eq!(inner.get("code").unwrap().as_str(), Some("sql_error"));
        assert_eq!(inner.get("message").unwrap().as_str(), Some("boom"));
    }
}
