//! A minimal JSON value: parse, build, serialise.
//!
//! The wire protocol is newline-delimited JSON, and the build is offline —
//! no serde — so this module implements exactly the JSON subset the
//! protocol needs: the six value kinds, string escapes (including `\uXXXX`
//! with surrogate pairs), and number round-tripping that prints integers
//! without a fractional part.  Objects preserve insertion order so
//! responses serialise deterministically.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs (later duplicates win on
    /// [`Json::get`], but the protocol never emits duplicates).
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on objects (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Infinity/NaN; degrade to null like JS.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Recursion guard: the protocol nests two or three levels, so anything
/// deeper than this is garbage (and would otherwise risk stack overflow).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { at: self.pos, message: message.into() }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte {b:#04x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // The scanned range is ASCII by construction, but a parse error
        // must stay a protocol error — never an unwind a client can
        // trigger with crafted bytes.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError { at: start, message: "invalid UTF-8 in number".to_owned() })?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { at: start, message: format!("bad number `{text}`") })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // A high surrogate must pair with \uDC00-\uDFFF.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code).unwrap_or('\u{fffd}')
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(hi).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.  The input normally arrives as
                    // a &str, but malformed client bytes must surface as a
                    // parse error, not a panic.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = match rest.chars().next() {
                        Some(c) => c,
                        None => return Err(self.err("unterminated string")),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.bytes.len() - self.pos < 4 {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        let text = r#"{"type":"query","sql":"SELECT 1","n":42,"x":1.5,"ok":true,"nil":null,"arr":[1,2,3]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("query"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("nil"), Some(&Json::Null));
        assert_eq!(v.get("arr").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(v.to_string(), text, "printing preserves order and integer shape");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Json::str("line1\nline2\t\"quoted\" \\ slash \u{08}\u{0c}\u{1f} héllo 🚀");
        let printed = original.to_string();
        assert_eq!(Json::parse(&printed).unwrap(), original);
        // Escaped input parses to the raw characters.
        let v = Json::parse(r#""a\u0041\n\u00e9\ud83d\ude80""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\né🚀"));
    }

    #[test]
    fn numbers_print_like_json() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(-17.0).to_string(), "-17");
        assert_eq!(Json::Num(1.25).to_string(), "1.25");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("-2.5e-1").unwrap(), Json::Num(-0.25));
    }

    #[test]
    fn malformed_documents_are_rejected_with_positions() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "01x",
            "{}{}",
            "\"bad\\q\"",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "[1 2]",
            "nul",
            // Number scans that consume no digits must come back as parse
            // errors, never a panic (the decoder faces raw client bytes).
            "-",
            "-.",
            "-e5",
            "[1,-]",
            "{\"n\":-}",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad} should fail");
        }
        assert!(Json::parse("\u{1}".to_string().as_str()).is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn get_prefers_the_last_duplicate() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));
        assert_eq!(Json::Null.get("a"), None);
    }
}
