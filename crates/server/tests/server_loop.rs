//! End-to-end tests of the TCP server loop: one warm context, real
//! sockets, the full request catalogue, and cooperative shutdown.

use std::time::Duration;

use qob_core::{BenchmarkContext, ServerContext};
use qob_datagen::Scale;
use qob_server::{serve, Client, Request, ServerConfig};
use qob_storage::IndexConfig;

const THREE_WAY: &str = "SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn \
                         WHERE mc.movie_id = t.id AND mc.company_id = cn.id \
                           AND cn.country_code = '[us]'";

fn start_server() -> (qob_server::ServerHandle, String) {
    let ctx = BenchmarkContext::new(Scale::tiny(), IndexConfig::PrimaryKeyOnly).unwrap();
    let handle = serve(
        ServerContext::new(ctx),
        ServerConfig { addr: "127.0.0.1:0".into(), snapshot_loaded: false },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();
    (handle, addr)
}

#[test]
fn full_request_catalogue_over_one_connection() {
    let (handle, addr) = start_server();
    let mut client = Client::connect_with_retry(&addr, Duration::from_secs(5)).unwrap();

    // ping
    let pong = client.request(&Request::Ping).unwrap();
    assert_eq!(pong.get("type").unwrap().as_str(), Some("pong"));

    // query
    let result = client.query(THREE_WAY).unwrap();
    assert_eq!(result.get("ok").unwrap().as_bool(), Some(true), "{result}");
    let results = result.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 1);
    let first = &results[0];
    assert!(first.get("rows").unwrap().as_u64().is_some());
    assert!(first.get("plan").unwrap().as_str().unwrap().contains("Scan"));
    assert!(!first.get("operators").unwrap().as_array().unwrap().is_empty());

    // explain: plans but never executes
    let explain = client.request(&Request::Explain { sql: THREE_WAY.into() }).unwrap();
    let explained = &explain.get("results").unwrap().as_array().unwrap()[0];
    assert!(explained.get("rows").is_none(), "explain must not execute");
    assert!(explained.get("cost").unwrap().as_f64().unwrap() > 0.0);

    // set: accepted and rejected options
    let ack = client
        .request(&Request::Set { option: "estimator".into(), value: "hyper".into() })
        .unwrap();
    assert_eq!(ack.get("ok").unwrap().as_bool(), Some(true));
    let after = client.query(THREE_WAY).unwrap();
    let estimator = after.get("results").unwrap().as_array().unwrap()[0]
        .get("estimator")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    assert_eq!(estimator, "HyPer", "session option must stick");
    let rejected =
        client.request(&Request::Set { option: "threads".into(), value: "lots".into() }).unwrap();
    assert_eq!(rejected.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(
        rejected.get("error").unwrap().get("code").unwrap().as_str(),
        Some("invalid_option")
    );

    // errors: SQL and protocol
    let sql_err = client.query("SELECT * FROM nowhere").unwrap();
    assert_eq!(sql_err.get("error").unwrap().get("code").unwrap().as_str(), Some("sql_error"));
    let proto_err = client.request_raw("{\"no\":\"type\"}").unwrap();
    assert_eq!(
        proto_err.get("error").unwrap().get("code").unwrap().as_str(),
        Some("invalid_request")
    );
    let not_json = client.request_raw("hello").unwrap();
    assert_eq!(not_json.get("ok").unwrap().as_bool(), Some(false));

    // stats
    let stats = client.request(&Request::Stats).unwrap();
    assert_eq!(stats.get("tables").unwrap().as_u64(), Some(21));
    assert_eq!(stats.get("workload_queries").unwrap().as_u64(), Some(113));
    assert!(stats.get("queries_served").unwrap().as_u64().unwrap() >= 3);
    assert_eq!(stats.get("snapshot_loaded").unwrap().as_bool(), Some(false));
    assert_eq!(stats.get("active_connections").unwrap().as_u64(), Some(1));
    // Compression gauges: auto encoding beats the plain layout.
    let encoded = stats.get("storage_encoded_bytes").unwrap().as_u64().unwrap();
    let plain = stats.get("storage_plain_bytes").unwrap().as_u64().unwrap();
    assert!(encoded > 0 && encoded < plain, "encoded {encoded} vs plain {plain}");
    assert!(stats.get("storage_compression_ratio").unwrap().as_f64().unwrap() > 1.0);
    let tables = stats.get("storage_tables").unwrap().as_array().unwrap();
    assert_eq!(tables.len(), 21);
    let title = tables
        .iter()
        .find(|t| t.get("table").and_then(|n| n.as_str()) == Some("title"))
        .expect("title table in storage stats");
    let columns = title.get("columns").unwrap().as_array().unwrap();
    assert_eq!(columns.len(), 7, "per-column breakdown present");

    // shutdown: acknowledged, then the server exits
    let bye = client.request(&Request::Shutdown).unwrap();
    assert_eq!(bye.get("type").unwrap().as_str(), Some("shutdown"));
    handle.join();
}

#[test]
fn prepared_statements_and_plan_cache_over_the_wire() {
    let (handle, addr) = start_server();
    let mut client = Client::connect_with_retry(&addr, Duration::from_secs(5)).unwrap();

    // Enable the plan cache for this session.
    let ack = client
        .request(&Request::Set { option: "plan_cache".into(), value: "true".into() })
        .unwrap();
    assert_eq!(ack.get("ok").unwrap().as_bool(), Some(true));

    // prepare → acknowledged with the parameter count.
    let prepared = client
        .request(&Request::Prepare {
            name: "by_country".into(),
            sql: THREE_WAY.replace("'[us]'", "?"),
        })
        .unwrap();
    assert_eq!(prepared.get("type").unwrap().as_str(), Some("prepared"), "{prepared}");
    assert_eq!(prepared.get("params").unwrap().as_u64(), Some(1));

    // execute: a first run misses, an identical repeat hits — and both
    // answer exactly like the inline statement.
    let run = |client: &mut Client, country: &str| {
        let response = client
            .request(&Request::Execute {
                name: "by_country".into(),
                params: vec![qob_sql::ParamValue::Str(country.into())],
            })
            .unwrap();
        assert_eq!(response.get("ok").unwrap().as_bool(), Some(true), "{response}");
        let result = response.get("results").unwrap().as_array().unwrap()[0].clone();
        (
            result.get("rows").unwrap().as_u64().unwrap(),
            result.get("plan_cache").unwrap().as_str().unwrap().to_owned(),
        )
    };
    let (rows_first, status_first) = run(&mut client, "[us]");
    let (rows_again, status_again) = run(&mut client, "[us]");
    assert_eq!(status_first, "miss");
    assert_eq!(status_again, "hit");
    assert_eq!(rows_first, rows_again);
    let inline = client.query(THREE_WAY).unwrap();
    let inline_rows =
        inline.get("results").unwrap().as_array().unwrap()[0].get("rows").unwrap().as_u64();
    assert_eq!(inline_rows, Some(rows_first));

    // stats expose the cache counters this session just produced (the
    // inline query was the same fingerprint with identical estimates, so
    // it hit as well).
    let stats = client.request(&Request::Stats).unwrap();
    assert_eq!(stats.get("plan_cache_misses").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("plan_cache_hits").unwrap().as_u64(), Some(2));
    assert_eq!(stats.get("plan_cache_installs").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("plan_cache_size").unwrap().as_u64(), Some(1));
    assert!(stats.get("plan_cache_capacity").unwrap().as_u64().unwrap() >= 1);

    // Scripts can drive the same machinery through `query`.
    let script = "PREPARE by_year AS SELECT COUNT(*) FROM title t, movie_companies mc \
                  WHERE mc.movie_id = t.id AND t.production_year > $1; \
                  EXECUTE by_year(2000); DEALLOCATE by_year";
    let scripted = client.query(script).unwrap();
    let results = scripted.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 3, "{scripted}");
    assert_eq!(results[0].get("prepared").unwrap().as_str(), Some("by_year"));
    assert!(results[1].get("rows").unwrap().as_u64().is_some());
    assert_eq!(results[2].get("deallocated").unwrap().as_str(), Some("by_year"));

    // deallocate; unknown names and re-executes fail with sql_error.
    let gone = client.request(&Request::Deallocate { name: "by_country".into() }).unwrap();
    assert_eq!(gone.get("type").unwrap().as_str(), Some("deallocated"));
    let err =
        client.request(&Request::Execute { name: "by_country".into(), params: vec![] }).unwrap();
    assert_eq!(err.get("error").unwrap().get("code").unwrap().as_str(), Some("sql_error"));
    let err = client.request(&Request::Deallocate { name: "by_country".into() }).unwrap();
    assert_eq!(err.get("ok").unwrap().as_bool(), Some(false));

    // Prepared statements are per-session: a second connection sees none.
    let mut other = Client::connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
    let err = other
        .request(&Request::Execute {
            name: "by_country".into(),
            params: vec![qob_sql::ParamValue::Str("[us]".into())],
        })
        .unwrap();
    assert_eq!(err.get("ok").unwrap().as_bool(), Some(false));

    client.request(&Request::Shutdown).unwrap();
    handle.join();
}

#[test]
fn wire_sessions_can_match_every_cli_execution_option() {
    // The year filter makes DBMS C's magic constants misestimate `t`, so
    // the adaptive divergence check reliably fires at a 1.5x threshold.
    const FILTERED: &str = "SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn \
                            WHERE mc.movie_id = t.id AND mc.company_id = cn.id \
                              AND cn.country_code = '[us]' AND t.production_year > 2000";
    let (handle, addr) = start_server();
    let mut client = Client::connect_with_retry(&addr, Duration::from_secs(5)).unwrap();

    // Every execution option the CLI exposes is settable over the wire,
    // including morsel_size (historically missing) and adaptivity.
    for (option, value) in [
        ("threads", "1"),
        ("morsel_size", "64"),
        ("adaptive", "true"),
        ("adaptive_threshold", "1.5"),
        ("max_replans", "2"),
        ("estimator", "dbms-c"),
    ] {
        let ack =
            client.request(&Request::Set { option: option.into(), value: value.into() }).unwrap();
        assert_eq!(ack.get("ok").unwrap().as_bool(), Some(true), "set {option}={value}");
    }
    let rejected = client
        .request(&Request::Set { option: "morsel_size".into(), value: "tiny".into() })
        .unwrap();
    assert_eq!(rejected.get("ok").unwrap().as_bool(), Some(false));

    // An adaptive query reports its re-plan rounds; the stats gauge counts
    // them server-wide.
    let response = client.query(FILTERED).unwrap();
    assert_eq!(response.get("ok").unwrap().as_bool(), Some(true), "{response}");
    let result = &response.get("results").unwrap().as_array().unwrap()[0];
    let replan_count = result.get("replan_count").unwrap().as_u64().unwrap();
    assert!(replan_count >= 1, "dbms-c at a 1.5x threshold must diverge");
    let replans = result.get("replans").unwrap().as_array().unwrap();
    assert_eq!(replans.len() as u64, replan_count);
    assert!(replans[0].get("factor").unwrap().as_f64().unwrap() > 1.5);
    assert!(replans[0].get("after").unwrap().as_str().unwrap().starts_with('{'));

    let stats = client.request(&Request::Stats).unwrap();
    assert_eq!(stats.get("replans_total").unwrap().as_u64(), Some(replan_count));

    // A non-adaptive session answers with the same rows and no rounds.
    let mut plain = Client::connect(&addr).unwrap();
    plain.request(&Request::Set { option: "threads".into(), value: "1".into() }).unwrap();
    let plain_response = plain.query(FILTERED).unwrap();
    let plain_result = &plain_response.get("results").unwrap().as_array().unwrap()[0];
    assert_eq!(plain_result.get("replan_count").unwrap().as_u64(), Some(0));
    assert!(plain_result.get("replans").is_none());
    assert_eq!(
        plain_result.get("rows").unwrap().as_u64(),
        result.get("rows").unwrap().as_u64(),
        "adaptivity must not change wire answers"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn metrics_scrape_and_traces_over_the_wire() {
    let (handle, addr) = start_server();
    let mut client = Client::connect_with_retry(&addr, Duration::from_secs(5)).unwrap();

    // Default sessions carry no trace: the wire format is unchanged.
    let plain = client.query(THREE_WAY).unwrap();
    let plain_result = &plain.get("results").unwrap().as_array().unwrap()[0];
    assert!(plain_result.get("trace").is_none());
    let ops = plain_result.get("operators").unwrap().as_array().unwrap();
    assert!(ops.iter().all(|op| op.get("time_us").is_none()));

    // With tracing on, phase spans and per-operator times appear.
    client.request(&Request::Set { option: "tracing".into(), value: "true".into() }).unwrap();
    let traced = client.query(THREE_WAY).unwrap();
    let traced_result = &traced.get("results").unwrap().as_array().unwrap()[0];
    assert_eq!(
        traced_result.get("rows").unwrap().as_u64(),
        plain_result.get("rows").unwrap().as_u64(),
        "tracing must not change answers"
    );
    let trace = traced_result.get("trace").unwrap();
    for phase in ["parse_us", "bind_us", "optimize_us", "queue_us", "execute_us"] {
        assert!(trace.get(phase).unwrap().as_u64().is_some(), "missing {phase}");
    }
    let ops = traced_result.get("operators").unwrap().as_array().unwrap();
    assert!(ops.iter().all(|op| op.get("time_us").unwrap().as_u64().is_some()));
    assert!(ops.iter().all(|op| op.get("morsels").unwrap().as_u64().is_some()));

    // EXPLAIN ANALYZE annotates the plan tree even with tracing off again.
    client.request(&Request::Set { option: "tracing".into(), value: "false".into() }).unwrap();
    let analyzed = client.query(&format!("EXPLAIN ANALYZE {THREE_WAY}")).unwrap();
    let analyzed_result = &analyzed.get("results").unwrap().as_array().unwrap()[0];
    assert!(analyzed_result.get("rows").unwrap().as_u64().is_some(), "analyze executes");
    let plan = analyzed_result.get("plan").unwrap().as_str().unwrap();
    for needle in ["est=", "true=", "q=", "time=", "morsels="] {
        assert!(plan.contains(needle), "annotated plan missing {needle}: {plan}");
    }

    // The metrics scrape exposes a valid Prometheus body whose counters
    // agree with the queries this test just ran.
    let metrics = client.request(&Request::Metrics).unwrap();
    assert_eq!(metrics.get("type").unwrap().as_str(), Some("metrics"));
    let body = metrics.get("body").unwrap().as_str().unwrap();
    let series = qob_obs::validate_exposition(body).expect("exposition must parse");
    assert!(series > 10, "expected a full catalogue, got {series} series");
    assert!(body.contains("qob_queries_total 3"), "three queries ran:\n{body}");
    assert!(body.contains("qob_query_errors_total 0"));
    assert!(body.contains("qob_execute_seconds_count 3"));
    let summary = metrics.get("summary").unwrap();
    assert_eq!(summary.get("queries_total").unwrap().as_u64(), Some(3));
    assert!(summary.get("query_p50_us").unwrap().as_u64().unwrap() > 0);

    handle.shutdown();
    handle.join();
}

#[test]
fn sessions_are_isolated_across_connections() {
    let (handle, addr) = start_server();
    let mut a = Client::connect(&addr).unwrap();
    let mut b = Client::connect(&addr).unwrap();
    a.request(&Request::Set { option: "estimator".into(), value: "dbms-c".into() }).unwrap();

    let report_b = b.query(THREE_WAY).unwrap();
    let estimator_b = report_b.get("results").unwrap().as_array().unwrap()[0]
        .get("estimator")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    assert_eq!(estimator_b, "PostgreSQL", "b must not see a's session options");

    handle.shutdown();
    handle.join();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    use std::io::{BufRead, BufReader, Write};
    let (handle, addr) = start_server();
    // Wait for the listener, then talk raw TCP: the Client type is
    // strictly sequential, and this test is about batched writes.
    drop(qob_server::Client::connect_with_retry(&addr, Duration::from_secs(5)).unwrap());
    let stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // One write carries four requests; four responses must come back, in
    // request order, without any further input from us.
    let query_line = Request::Query { sql: THREE_WAY.into() }.to_json().to_string();
    let batch =
        format!("{{\"type\":\"ping\"}}\n{query_line}\n{{\"type\":\"stats\"}}\n{query_line}\n");
    writer.write_all(batch.as_bytes()).unwrap();
    writer.flush().unwrap();

    let mut read_response = || {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        qob_server::Json::parse(&line).unwrap()
    };
    let first = read_response();
    assert_eq!(first.get("type").unwrap().as_str(), Some("pong"), "{first}");
    let second = read_response();
    assert_eq!(second.get("type").unwrap().as_str(), Some("result"), "{second}");
    let rows = second.get("results").unwrap().as_array().unwrap()[0].get("rows").unwrap().as_u64();
    assert!(rows.is_some());
    let third = read_response();
    assert_eq!(third.get("type").unwrap().as_str(), Some("stats"), "{third}");
    let fourth = read_response();
    assert_eq!(fourth.get("type").unwrap().as_str(), Some("result"), "{fourth}");
    let rows_again =
        fourth.get("results").unwrap().as_array().unwrap()[0].get("rows").unwrap().as_u64();
    assert_eq!(rows_again, rows, "pipelined repeats answer identically");

    // The connection is still healthy for sequential use afterwards.
    writer.write_all(b"{\"type\":\"ping\"}\n").unwrap();
    assert_eq!(read_response().get("type").unwrap().as_str(), Some("pong"));

    handle.shutdown();
    handle.join();
}

#[test]
fn scheduled_server_exposes_pool_and_admission_over_the_wire() {
    let ctx = BenchmarkContext::new(Scale::tiny(), IndexConfig::PrimaryKeyOnly).unwrap();
    let handle = serve(
        ServerContext::with_scheduler(
            ctx,
            qob_core::SessionOptions::default(),
            qob_core::SchedulerConfig { workers: 2, max_concurrent: 2, max_queued: 4 },
        ),
        ServerConfig { addr: "127.0.0.1:0".into(), snapshot_loaded: false },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect_with_retry(&addr, Duration::from_secs(5)).unwrap();

    client.request(&Request::Set { option: "tracing".into(), value: "true".into() }).unwrap();
    let response = client.query(THREE_WAY).unwrap();
    let result = &response.get("results").unwrap().as_array().unwrap()[0];
    assert!(result.get("rows").unwrap().as_u64().is_some());
    assert!(result.get("trace").unwrap().get("queue_us").unwrap().as_u64().is_some());

    let stats = client.request(&Request::Stats).unwrap();
    assert_eq!(stats.get("pool_workers").unwrap().as_u64(), Some(2));
    assert_eq!(stats.get("admitted").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("rejected").unwrap().as_u64(), Some(0));
    assert_eq!(stats.get("admission_executing").unwrap().as_u64(), Some(0));

    let metrics = client.request(&Request::Metrics).unwrap();
    let body = metrics.get("body").unwrap().as_str().unwrap();
    qob_obs::validate_exposition(body).expect("exposition must parse");
    assert!(body.contains("qob_pool_workers 2"), "{body}");
    assert!(body.contains("qob_queue_wait_seconds_count 1"), "{body}");
    let summary = metrics.get("summary").unwrap();
    assert_eq!(summary.get("admitted_total").unwrap().as_u64(), Some(1));
    assert_eq!(summary.get("rejected_total").unwrap().as_u64(), Some(0));

    handle.shutdown();
    handle.join();
}

#[test]
fn history_and_trace_export_over_the_wire() {
    const TWO_WAY: &str =
        "SELECT COUNT(*) FROM title t, movie_companies mc WHERE mc.movie_id = t.id";
    let ctx = BenchmarkContext::new(Scale::tiny(), IndexConfig::PrimaryKeyOnly).unwrap();
    let handle = serve(
        ServerContext::with_scheduler(
            ctx,
            qob_core::SessionOptions::default(),
            qob_core::SchedulerConfig { workers: 2, max_concurrent: 2, max_queued: 4 },
        ),
        ServerConfig { addr: "127.0.0.1:0".into(), snapshot_loaded: false },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect_with_retry(&addr, Duration::from_secs(5)).unwrap();

    // Small morsels force multi-participant pipelines on the shared pool so
    // worker spans (not just submitter spans) land in the trace ring.
    for (option, value) in [("morsel_size", "32"), ("threads", "2")] {
        let ack =
            client.request(&Request::Set { option: option.into(), value: value.into() }).unwrap();
        assert_eq!(ack.get("ok").unwrap().as_bool(), Some(true));
    }

    // A statement mix: the three-way join three times, the two-way once.
    for sql in [THREE_WAY, THREE_WAY, THREE_WAY, TWO_WAY] {
        let response = client.query(sql).unwrap();
        assert_eq!(response.get("ok").unwrap().as_bool(), Some(true), "{response}");
    }

    // history: per-fingerprint counts mirror the statement mix.
    let history = client.request(&Request::History { top: None }).unwrap();
    assert_eq!(history.get("type").unwrap().as_str(), Some("history"), "{history}");
    assert_eq!(history.get("recorded").unwrap().as_u64(), Some(4));
    let fingerprints = history.get("fingerprints").unwrap().as_array().unwrap();
    assert_eq!(fingerprints.len(), 2, "two distinct structures ran");
    let counts: Vec<u64> =
        fingerprints.iter().map(|f| f.get("count").unwrap().as_u64().unwrap()).collect();
    assert_eq!(counts, vec![3, 1], "hottest first, counts match the mix");
    for entry in fingerprints {
        let hex = entry.get("fingerprint").unwrap().as_str().unwrap();
        assert_eq!(hex.len(), 16, "fingerprints travel as 16-hex-digit strings: {hex}");
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert!(entry.get("p50_us").unwrap().as_u64().unwrap() > 0);
        assert!(entry.get("p99_us").unwrap().as_u64().is_some());
        assert!(entry.get("last_rows").unwrap().as_u64().is_some());
    }
    assert!(history.get("regressions").unwrap().as_array().unwrap().is_empty());

    // top caps the fingerprint list without touching the totals.
    let capped = client.request(&Request::History { top: Some(1) }).unwrap();
    assert_eq!(capped.get("fingerprints").unwrap().as_array().unwrap().len(), 1);
    assert_eq!(capped.get("recorded").unwrap().as_u64(), Some(4));

    // stats: the per-worker timeline array rides along.
    let stats = client.request(&Request::Stats).unwrap();
    let workers = stats.get("workers").unwrap().as_array().unwrap();
    assert_eq!(workers.len(), 2);
    for worker in workers {
        assert!(worker.get("busy_nanos").unwrap().as_u64().is_some());
        assert!(worker.get("idle_nanos").unwrap().as_u64().is_some());
        assert!(worker.get("steals").unwrap().as_u64().is_some());
        let utilization = worker.get("utilization").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&utilization));
    }

    // trace_export: Chrome trace events, every one structurally complete.
    let trace = client.request(&Request::TraceExport).unwrap();
    assert_eq!(trace.get("type").unwrap().as_str(), Some("trace"), "{trace}");
    let events = trace.get("events").unwrap().as_array().unwrap();
    assert!(!events.is_empty());
    for event in events {
        for field in ["name", "ph", "ts", "pid", "tid"] {
            assert!(event.get(field).is_some(), "event missing {field}: {event}");
        }
    }
    let names: Vec<&str> =
        events.iter().map(|e| e.get("name").unwrap().as_str().unwrap()).collect();
    assert!(names.contains(&"thread_name"), "worker metadata present");
    let spans: Vec<_> =
        events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("X")).collect();
    assert!(!spans.is_empty(), "pipeline spans exported");
    assert_eq!(trace.get("span_count").unwrap().as_u64(), Some(spans.len() as u64));
    for span in &spans {
        assert!(span.get("dur").unwrap().as_u64().is_some());
        assert!(span.get("args").is_some());
    }

    // Exporting drains nothing: a second export answers at least as much.
    let again = client.request(&Request::TraceExport).unwrap();
    assert!(
        again.get("span_count").unwrap().as_u64().unwrap() >= spans.len() as u64,
        "trace export must be idempotent"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn concurrent_clients_get_identical_answers() {
    let (handle, addr) = start_server();
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let response = client.query(THREE_WAY).unwrap();
                let results = response.get("results").unwrap().as_array().unwrap();
                (
                    results[0].get("rows").unwrap().as_u64().unwrap(),
                    results[0].get("worst_q_error").unwrap().as_f64().unwrap(),
                )
            })
        })
        .collect();
    let answers: Vec<(u64, f64)> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    for pair in &answers[1..] {
        assert_eq!(pair, &answers[0], "all clients must agree");
    }
    handle.shutdown();
    handle.join();
}
