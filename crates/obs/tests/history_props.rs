//! Property tests for the query history: the per-fingerprint ring
//! buffer, its aggregation and the top-K orderings are checked against a
//! naive model that simply keeps every sample in a `Vec`.

use std::collections::HashMap;

use proptest::prelude::*;
use qob_obs::{HistorySample, QueryHistory};

/// The naive model: every sample ever recorded, per fingerprint, in
/// arrival order.
#[derive(Default)]
struct NaiveHistory {
    samples: HashMap<u64, Vec<u64>>,
    order: Vec<u64>,
}

impl NaiveHistory {
    fn record(&mut self, fingerprint: u64, total_us: u64) {
        if !self.samples.contains_key(&fingerprint) {
            self.order.push(fingerprint);
        }
        self.samples.entry(fingerprint).or_default().push(total_us);
    }

    /// Nearest-rank percentile over the last `capacity` samples — the
    /// model's definition of what the ring should retain.
    fn percentile(&self, fingerprint: u64, capacity: usize, q: f64) -> f64 {
        let all = &self.samples[&fingerprint];
        let window_start = all.len().saturating_sub(capacity);
        let mut window: Vec<u64> = all[window_start..].to_vec();
        window.sort_unstable();
        if window.is_empty() {
            return 0.0;
        }
        let rank = (q * window.len() as f64).ceil().max(1.0) as usize;
        window[rank.min(window.len()) - 1] as f64
    }
}

fn sample(total_us: u64) -> HistorySample {
    HistorySample { total_us, execute_us: total_us, ..HistorySample::zeroed() }
}

proptest! {
    /// Lifetime aggregates and ring-window percentiles match the naive
    /// model for every fingerprint, whatever the interleaving.
    #[test]
    fn aggregation_matches_the_naive_model(
        capacity in 1usize..12,
        ops in prop::collection::vec((0u64..5, 1u64..10_000), 1..300),
    ) {
        let history = QueryHistory::with_capacity(capacity);
        let mut model = NaiveHistory::default();
        for &(fingerprint, total_us) in &ops {
            history.record(fingerprint, "q", sample(total_us), 0.0);
            model.record(fingerprint, total_us);
        }
        prop_assert_eq!(history.recorded(), ops.len() as u64);
        let snap = history.snapshot();
        prop_assert_eq!(snap.fingerprints.len(), model.samples.len());
        for stats in &snap.fingerprints {
            let all = &model.samples[&stats.fingerprint];
            prop_assert_eq!(stats.count, all.len() as u64);
            prop_assert_eq!(stats.total_us, all.iter().sum::<u64>());
            prop_assert_eq!(stats.last_rows, 0);
            // The percentile window is exactly the last `capacity`
            // samples (the capacity bound).
            let p50 = model.percentile(stats.fingerprint, capacity, 0.5);
            let p99 = model.percentile(stats.fingerprint, capacity, 0.99);
            prop_assert_eq!(stats.p50_us, p50);
            prop_assert_eq!(stats.p99_us, p99);
            prop_assert!(stats.p50_us <= stats.p99_us);
        }
    }

    /// The top-K views are correctly ordered and are prefixes of the
    /// full ordering by their respective sort keys.
    #[test]
    fn top_k_orderings_are_correct(
        ops in prop::collection::vec((0u64..8, 1u64..10_000), 1..200),
        k in 1usize..10,
    ) {
        let history = QueryHistory::new();
        for &(fingerprint, total_us) in &ops {
            history.record(fingerprint, "q", sample(total_us), 0.0);
        }
        let snap = history.snapshot();
        prop_assert!(
            snap.fingerprints.windows(2).all(|w| (w[0].count, w[0].total_us)
                >= (w[1].count, w[1].total_us)),
            "snapshot sorts hottest-by-count first"
        );
        let by_count = history.hottest_by_count(k);
        prop_assert_eq!(by_count.len(), k.min(snap.fingerprints.len()));
        prop_assert!(by_count.windows(2).all(|w| w[0].count >= w[1].count));
        if let Some(last) = by_count.last() {
            // Nothing outside the top-K beats the K-th entry.
            for other in &snap.fingerprints[by_count.len()..] {
                prop_assert!(other.count <= last.count);
            }
        }
        let by_time = history.hottest_by_total_time(k);
        prop_assert!(by_time.windows(2).all(|w| w[0].total_us >= w[1].total_us));
        if let Some(last) = by_time.last() {
            let floor = last.total_us;
            let mut all_by_time: Vec<u64> =
                snap.fingerprints.iter().map(|s| s.total_us).collect();
            all_by_time.sort_unstable_by(|a, b| b.cmp(a));
            for &outside in &all_by_time[by_time.len()..] {
                prop_assert!(outside <= floor);
            }
        }
    }
}
