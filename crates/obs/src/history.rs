//! Per-fingerprint query history and latency-regression detection.
//!
//! [`QueryHistory`] gives the warm server a memory: every executed
//! statement records one [`HistorySample`] under its plan-cache
//! fingerprint, into a bounded per-fingerprint ring.  Aggregation
//! (hit counts, total time, ring-window p50/p99) answers the
//! `{"type":"history"}` wire message; the **regression detector**
//! compares the median of the most recent window against the median of
//! the baseline window behind it and fires when the ratio crosses a
//! configurable threshold — the trigger signal a background
//! superoptimizer would consume.
//!
//! Recording is lock-cheap by construction: one atomic `fetch_add` for
//! the sequence number plus one short mutex hold to push the sample and
//! run the (windowed, allocation-free) detector.  Nothing here touches
//! the execution path itself, so history-on and history-off runs stay
//! tuple-identical (pinned in `crates/core/tests/observability.rs`).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Samples kept per fingerprint (the ring capacity).  Old samples fall
/// off; the lifetime aggregates (`count`, `total_us`, `max_q_error`)
/// keep counting across the whole history.
pub const HISTORY_RING_CAPACITY: usize = 64;

/// Baseline window of the regression detector: the samples *before* the
/// recent window whose median is the "how it used to run" reference.
pub const BASELINE_WINDOW: usize = 8;

/// Recent window of the regression detector: the latest samples whose
/// median is compared against the baseline.
pub const RECENT_WINDOW: usize = 4;

/// Recent regressions retained for the `history` reply and `qob top`.
const REGRESSION_RING_CAPACITY: usize = 64;

/// How one execution went through the plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The session ran with the plan cache disabled.
    Off,
    /// A cached plan was reused.
    Hit,
    /// The fingerprint was optimized cold and installed.
    Miss,
    /// Every cached variant diverged past the fence; re-optimized.
    FenceRejected,
}

impl CacheOutcome {
    /// The label used on the wire and in renderings.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Off => "off",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::FenceRejected => "fence-reject",
        }
    }
}

/// One recorded execution of a fingerprint.
///
/// `seq` is assigned by [`QueryHistory::record`] from a process-monotonic
/// counter; the phase latencies mirror the statement's trace spans
/// (parse/bind are script-level and excluded — `total_us` covers
/// optimize + queue + execute).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistorySample {
    /// Process-monotonic sequence number (assigned on record).
    pub seq: u64,
    /// End-to-end statement latency in microseconds.
    pub total_us: u64,
    /// Optimize-phase latency (includes the plan-cache lookup).
    pub optimize_us: u64,
    /// Admission-queue wait before execution.
    pub queue_us: u64,
    /// Execute-phase latency.
    pub execute_us: u64,
    /// Result tuples produced.
    pub rows: u64,
    /// Worst per-operator q-error of the execution.
    pub max_q_error: f64,
    /// Adaptive re-plan rounds fired.
    pub replans: u64,
    /// Plan-cache outcome of this execution.
    pub cache: CacheOutcome,
}

impl HistorySample {
    /// A sample with every field zero and the plan cache off — the
    /// starting point callers fill in.
    pub fn zeroed() -> HistorySample {
        HistorySample {
            seq: 0,
            total_us: 0,
            optimize_us: 0,
            queue_us: 0,
            execute_us: 0,
            rows: 0,
            max_q_error: 1.0,
            replans: 0,
            cache: CacheOutcome::Off,
        }
    }
}

/// A fired latency regression: the recent-window median exceeded
/// `ratio` × the baseline-window median for one fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The regressed fingerprint.
    pub fingerprint: u64,
    /// Statement name last seen under the fingerprint.
    pub name: String,
    /// Sequence number of the sample that tipped the detector.
    pub seq: u64,
    /// Baseline-window median latency, microseconds.
    pub baseline_us: f64,
    /// Recent-window median latency, microseconds.
    pub recent_us: f64,
    /// `recent_us / baseline_us` — how bad it got.
    pub factor: f64,
    /// The configured threshold that was crossed.
    pub ratio: f64,
}

/// Aggregated view of one fingerprint's history.
#[derive(Debug, Clone, PartialEq)]
pub struct FingerprintStats {
    /// The plan-cache fingerprint.
    pub fingerprint: u64,
    /// Statement name last seen under the fingerprint.
    pub name: String,
    /// Lifetime execution count.
    pub count: u64,
    /// Lifetime total latency, microseconds.
    pub total_us: u64,
    /// p50 latency over the retained ring window, microseconds.
    pub p50_us: f64,
    /// p99 latency over the retained ring window, microseconds.
    pub p99_us: f64,
    /// Worst q-error ever observed for the fingerprint.
    pub max_q_error: f64,
    /// Lifetime adaptive re-plan rounds.
    pub replans: u64,
    /// Regressions fired for this fingerprint.
    pub regressions: u64,
    /// Rows produced by the most recent execution.
    pub last_rows: u64,
    /// Sequence number of the most recent execution.
    pub last_seq: u64,
}

/// A point-in-time copy of the whole history.
#[derive(Debug, Clone, Default)]
pub struct HistorySnapshot {
    /// Per-fingerprint aggregates, hottest (by count, then total time)
    /// first.
    pub fingerprints: Vec<FingerprintStats>,
    /// Recent fired regressions, oldest first.
    pub regressions: Vec<Regression>,
}

struct FingerprintEntry {
    name: String,
    count: u64,
    total_us: u64,
    max_q_error: f64,
    replans: u64,
    regressions: u64,
    in_regression: bool,
    samples: VecDeque<HistorySample>,
}

struct HistoryInner {
    entries: HashMap<u64, FingerprintEntry>,
    regressions: VecDeque<Regression>,
}

/// The server-wide query history: per-fingerprint sample rings plus the
/// regression detector (see the module docs).
pub struct QueryHistory {
    seq: AtomicU64,
    capacity: usize,
    inner: Mutex<HistoryInner>,
}

impl std::fmt::Debug for QueryHistory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("QueryHistory")
            .field("fingerprints", &inner.entries.len())
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for QueryHistory {
    fn default() -> QueryHistory {
        QueryHistory::new()
    }
}

impl QueryHistory {
    /// Creates an empty history with the default ring capacity.
    pub fn new() -> QueryHistory {
        QueryHistory::with_capacity(HISTORY_RING_CAPACITY)
    }

    /// Creates an empty history keeping `capacity` samples per
    /// fingerprint (clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> QueryHistory {
        QueryHistory {
            seq: AtomicU64::new(0),
            capacity: capacity.max(1),
            inner: Mutex::new(HistoryInner {
                entries: HashMap::new(),
                regressions: VecDeque::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HistoryInner> {
        // The lock only ever guards plain pushes and reads — a poisoned
        // ring is still a valid ring, so observability never panics the
        // server.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one execution under `fingerprint`, assigning the sample's
    /// sequence number, and runs the regression detector with the given
    /// `ratio` threshold.  Returns the fired [`Regression`], if any —
    /// the caller owns counting and event emission.  A `ratio ≤ 0`
    /// disables detection.
    pub fn record(
        &self,
        fingerprint: u64,
        name: &str,
        mut sample: HistorySample,
        ratio: f64,
    ) -> Option<Regression> {
        sample.seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut inner = self.lock();
        let entry = inner.entries.entry(fingerprint).or_insert_with(|| FingerprintEntry {
            name: String::new(),
            count: 0,
            total_us: 0,
            max_q_error: 1.0,
            replans: 0,
            regressions: 0,
            in_regression: false,
            samples: VecDeque::with_capacity(self.capacity.min(16)),
        });
        if entry.name != name {
            entry.name = name.to_owned();
        }
        entry.count += 1;
        entry.total_us = entry.total_us.saturating_add(sample.total_us);
        if sample.max_q_error.is_finite() && sample.max_q_error > entry.max_q_error {
            entry.max_q_error = sample.max_q_error;
        }
        entry.replans += sample.replans;
        if entry.samples.len() == self.capacity {
            entry.samples.pop_front();
        }
        entry.samples.push_back(sample);

        // The windowed detector, latched: it fires on the crossing, not
        // on every sample while the fingerprint stays slow.
        let series: Vec<u64> = entry.samples.iter().map(|s| s.total_us).collect();
        let fired = match regression_medians(&series, BASELINE_WINDOW, RECENT_WINDOW) {
            Some((baseline_us, recent_us)) if ratio > 0.0 && recent_us > ratio * baseline_us => {
                if entry.in_regression {
                    None
                } else {
                    entry.in_regression = true;
                    entry.regressions += 1;
                    Some(Regression {
                        fingerprint,
                        name: entry.name.clone(),
                        seq: sample.seq,
                        baseline_us,
                        recent_us,
                        factor: if baseline_us > 0.0 { recent_us / baseline_us } else { f64::MAX },
                        ratio,
                    })
                }
            }
            Some(_) => {
                entry.in_regression = false;
                None
            }
            None => None,
        };
        if let Some(regression) = &fired {
            if inner.regressions.len() == REGRESSION_RING_CAPACITY {
                inner.regressions.pop_front();
            }
            inner.regressions.push_back(regression.clone());
        }
        fired
    }

    /// Total samples recorded so far (the latest assigned sequence
    /// number).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Aggregates per fingerprint into a [`HistorySnapshot`], hottest
    /// (by lifetime count, ties by total time) first.
    pub fn snapshot(&self) -> HistorySnapshot {
        let inner = self.lock();
        let mut fingerprints: Vec<FingerprintStats> = inner
            .entries
            .iter()
            .map(|(&fingerprint, entry)| {
                let mut window: Vec<u64> = entry.samples.iter().map(|s| s.total_us).collect();
                window.sort_unstable();
                let last = entry.samples.back();
                FingerprintStats {
                    fingerprint,
                    name: entry.name.clone(),
                    count: entry.count,
                    total_us: entry.total_us,
                    p50_us: nearest_rank(&window, 0.5),
                    p99_us: nearest_rank(&window, 0.99),
                    max_q_error: entry.max_q_error,
                    replans: entry.replans,
                    regressions: entry.regressions,
                    last_rows: last.map_or(0, |s| s.rows),
                    last_seq: last.map_or(0, |s| s.seq),
                }
            })
            .collect();
        fingerprints.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(b.total_us.cmp(&a.total_us))
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        HistorySnapshot { fingerprints, regressions: inner.regressions.iter().cloned().collect() }
    }

    /// The `k` hottest fingerprints by lifetime execution count.
    pub fn hottest_by_count(&self, k: usize) -> Vec<FingerprintStats> {
        let mut stats = self.snapshot().fingerprints;
        stats.truncate(k);
        stats
    }

    /// The `k` hottest fingerprints by lifetime total latency.
    pub fn hottest_by_total_time(&self, k: usize) -> Vec<FingerprintStats> {
        let mut stats = self.snapshot().fingerprints;
        stats.sort_by(|a, b| {
            b.total_us
                .cmp(&a.total_us)
                .then(b.count.cmp(&a.count))
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        stats.truncate(k);
        stats
    }
}

/// The regression detector's windows over a latency series, oldest
/// sample first: the median of the last `recent` samples and the median
/// of the `baseline` samples immediately before them.  Returns `None`
/// until the series holds `baseline + recent` samples.
pub fn regression_medians(series: &[u64], baseline: usize, recent: usize) -> Option<(f64, f64)> {
    if baseline == 0 || recent == 0 || series.len() < baseline + recent {
        return None;
    }
    let recent_start = series.len() - recent;
    let baseline_start = recent_start - baseline;
    Some((median(&series[baseline_start..recent_start]), median(&series[recent_start..])))
}

fn median(window: &[u64]) -> f64 {
    let mut sorted = window.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2] as f64
    } else {
        (sorted[n / 2 - 1] as f64 + sorted[n / 2] as f64) / 2.0
    }
}

/// Nearest-rank percentile over an already-sorted window; 0.0 when the
/// window is empty (mirrors [`crate::HistogramSnapshot::quantile`]).
fn nearest_rank(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1] as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(total_us: u64) -> HistorySample {
        HistorySample { total_us, execute_us: total_us, ..HistorySample::zeroed() }
    }

    /// Fill the detector windows with `flat` µs, then step to `stepped`.
    fn step_series(flat: u64, stepped: u64) -> Vec<u64> {
        let mut s = vec![flat; BASELINE_WINDOW + RECENT_WINDOW];
        let at = s.len() - RECENT_WINDOW;
        for v in &mut s[at..] {
            *v = stepped;
        }
        s
    }

    #[test]
    fn detector_fires_on_a_step() {
        let series = step_series(100, 1000);
        let (baseline, recent) =
            regression_medians(&series, BASELINE_WINDOW, RECENT_WINDOW).unwrap();
        assert_eq!(baseline, 100.0);
        assert_eq!(recent, 1000.0);
        assert!(recent > 2.0 * baseline, "a 10x step crosses the default-ish ratio");
    }

    #[test]
    fn detector_is_silent_on_noise() {
        // ±20% jitter around 100µs: the medians stay within a factor well
        // below any sane ratio.
        let series: Vec<u64> =
            (0..32).map(|i| 100 + [0u64, 18, 7, 20, 3, 11, 15, 9][i % 8]).collect();
        let (baseline, recent) =
            regression_medians(&series, BASELINE_WINDOW, RECENT_WINDOW).unwrap();
        assert!(
            recent <= 1.5 * baseline,
            "noise must not look like a regression: baseline {baseline} recent {recent}"
        );
    }

    #[test]
    fn detector_catches_a_slow_drift_eventually() {
        // 5% growth per sample: medians separate once the windows are a
        // factor apart.
        let series: Vec<u64> = (0..64).map(|i| (100.0 * 1.05f64.powi(i)) as u64).collect();
        let (baseline, recent) =
            regression_medians(&series, BASELINE_WINDOW, RECENT_WINDOW).unwrap();
        assert!(recent > 1.2 * baseline, "drift separates the windows: {baseline} vs {recent}");
    }

    #[test]
    fn detector_needs_full_windows() {
        let series = vec![100u64; BASELINE_WINDOW + RECENT_WINDOW - 1];
        assert_eq!(regression_medians(&series, BASELINE_WINDOW, RECENT_WINDOW), None);
        assert_eq!(regression_medians(&[], BASELINE_WINDOW, RECENT_WINDOW), None);
        assert_eq!(regression_medians(&[1, 2, 3], 0, 2), None);
        assert_eq!(regression_medians(&[1, 2, 3], 2, 0), None);
    }

    #[test]
    fn record_assigns_monotonic_seqs_and_aggregates() {
        let history = QueryHistory::new();
        for i in 0..10u64 {
            let fired = history.record(7, "q1", sample(100 + i), 2.0);
            assert!(fired.is_none(), "flat latency never regresses");
        }
        history.record(9, "q2", sample(50), 2.0);
        assert_eq!(history.recorded(), 11);
        let snap = history.snapshot();
        assert_eq!(snap.fingerprints.len(), 2);
        let hot = &snap.fingerprints[0];
        assert_eq!(hot.fingerprint, 7);
        assert_eq!(hot.name, "q1");
        assert_eq!(hot.count, 10);
        assert_eq!(hot.total_us, (100..110).sum::<u64>());
        assert_eq!(hot.last_seq, 10);
        assert!(hot.p50_us >= 100.0 && hot.p99_us <= 109.0, "{hot:?}");
        assert!(hot.p50_us <= hot.p99_us);
        assert!(snap.regressions.is_empty());
    }

    #[test]
    fn record_fires_once_per_crossing_and_latches() {
        let history = QueryHistory::new();
        for v in step_series(100, 10_000) {
            history.record(1, "q", sample(v), 2.0);
        }
        let snap = history.snapshot();
        assert_eq!(snap.regressions.len(), 1, "one crossing, one event");
        let r = &snap.regressions[0];
        assert_eq!(r.fingerprint, 1);
        assert_eq!(r.baseline_us, 100.0);
        assert_eq!(r.recent_us, 10_000.0);
        assert!((r.factor - 100.0).abs() < 1e-9);
        assert_eq!(r.ratio, 2.0);
        // Staying slow does not re-fire…
        assert!(history.record(1, "q", sample(10_000), 2.0).is_none());
        // …recovering resets the latch, and a second step fires again.
        for _ in 0..(BASELINE_WINDOW + RECENT_WINDOW) {
            assert!(history.record(1, "q", sample(100), 2.0).is_none());
        }
        let mut refired = false;
        for _ in 0..RECENT_WINDOW {
            refired |= history.record(1, "q", sample(10_000), 2.0).is_some();
        }
        assert!(refired, "a second crossing fires a second regression");
        assert_eq!(history.snapshot().fingerprints[0].regressions, 2);
    }

    #[test]
    fn ratio_zero_disables_detection() {
        let history = QueryHistory::new();
        for v in step_series(100, 100_000) {
            assert!(history.record(1, "q", sample(v), 0.0).is_none());
        }
        // A tiny ratio forces a fire on a flat series — the smoke's
        // forced-regression path.
        let forced = QueryHistory::new();
        let mut fired = false;
        for _ in 0..(BASELINE_WINDOW + RECENT_WINDOW) {
            fired |= forced.record(1, "q", sample(100), 0.01).is_some();
        }
        assert!(fired, "ratio 0.01 fires on any flat series");
    }

    #[test]
    fn ring_capacity_bounds_the_window() {
        let history = QueryHistory::with_capacity(4);
        for i in 0..100u64 {
            history.record(1, "q", sample(i), 0.0);
        }
        let snap = history.snapshot();
        let stats = &snap.fingerprints[0];
        assert_eq!(stats.count, 100, "lifetime count ignores the ring bound");
        assert_eq!(stats.total_us, (0..100).sum::<u64>());
        // The percentile window is the last 4 samples: 96..=99.
        assert!(stats.p50_us >= 96.0 && stats.p99_us == 99.0, "{stats:?}");
    }

    #[test]
    fn top_k_orders_by_count_and_by_total_time() {
        let history = QueryHistory::new();
        for _ in 0..5 {
            history.record(1, "cheap-hot", sample(10), 0.0);
        }
        for _ in 0..2 {
            history.record(2, "dear-cold", sample(10_000), 0.0);
        }
        let by_count = history.hottest_by_count(1);
        assert_eq!(by_count[0].fingerprint, 1);
        let by_time = history.hottest_by_total_time(1);
        assert_eq!(by_time[0].fingerprint, 2);
        assert_eq!(history.hottest_by_count(10).len(), 2, "k past the end is the whole set");
    }

    #[test]
    fn cache_outcome_labels() {
        assert_eq!(CacheOutcome::Off.label(), "off");
        assert_eq!(CacheOutcome::Hit.label(), "hit");
        assert_eq!(CacheOutcome::Miss.label(), "miss");
        assert_eq!(CacheOutcome::FenceRejected.label(), "fence-reject");
    }

    #[test]
    fn concurrent_recording_keeps_seqs_unique() {
        let history = std::sync::Arc::new(QueryHistory::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let history = std::sync::Arc::clone(&history);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    history.record(t, "q", sample(i), 0.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(history.recorded(), 1000);
        let snap = history.snapshot();
        let mut seqs: Vec<u64> = snap.fingerprints.iter().map(|s| s.last_seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 4, "every fingerprint saw a distinct latest seq");
        let total: u64 = snap.fingerprints.iter().map(|s| s.count).sum();
        assert_eq!(total, 1000);
    }
}
