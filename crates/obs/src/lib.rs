//! # qob-obs
//!
//! Runtime observability for the warm server: a lock-free metrics registry
//! (atomic counters and log-bucketed latency histograms), Prometheus text
//! exposition, and a structured JSON-lines event log.
//!
//! The crate is a leaf — no dependencies on the rest of the workspace — so
//! every layer (session, cache, adaptive, executor, server) can feed it.
//! All hot-path instruments are plain atomics: recording a sample is a
//! handful of `fetch_add`s, never a lock, so instrumented and
//! uninstrumented runs stay tuple-identical (see `docs/OBSERVABILITY.md`).
//!
//! * [`Counter`] / [`Gauge`] — monotonic and set-point `u64` cells.
//! * [`Histogram`] — power-of-two-bucketed latency histogram over
//!   microseconds; p50/p95/p99 come from bucket counts alone, no sample
//!   retention.
//! * [`MetricsRegistry`] — the fixed set of instruments the server owns.
//! * [`Exposition`] — renders instruments in the Prometheus text format
//!   (version 0.0.4); [`validate_exposition`] re-parses a rendered body.
//! * [`EventLog`] — JSON-lines events (replans, fence rejects, evictions,
//!   worker panics, slow queries, regressions) behind the
//!   `slow_query_ms` option, each line carrying a process-monotonic
//!   `seq` so concurrent sessions' lines totally order.
//! * [`QueryHistory`] — per-fingerprint latency history with top-K
//!   aggregation and windowed regression detection (see [`history`]).

#![warn(missing_docs)]

use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

pub mod history;

pub use history::{
    regression_medians, CacheOutcome, FingerprintStats, HistorySample, HistorySnapshot,
    QueryHistory, Regression, BASELINE_WINDOW, HISTORY_RING_CAPACITY, RECENT_WINDOW,
};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets.  Bucket `k` (for `k ≥ 1`) counts samples
/// in `[2^(k-1), 2^k)` microseconds; bucket `0` counts zero-microsecond
/// samples.  `2^(BUCKETS-2)` µs ≈ 6.4 days, so the top bucket is an
/// effective `+Inf` catch-all.
pub const BUCKETS: usize = 40;

/// A log-bucketed latency histogram over microseconds.
///
/// Recording is three relaxed `fetch_add`s; percentiles are estimated from
/// the bucket counts by linear interpolation inside the covering bucket, so
/// no samples are retained.  The relative error is bounded by the bucket
/// width (a factor of two).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn index(micros: u64) -> usize {
        ((u64::BITS - micros.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one sample, in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[Self::index(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one sample from a [`Duration`].
    pub fn record(&self, elapsed: Duration) {
        self.record_micros(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Takes a consistent-enough snapshot of the bucket counts.
    ///
    /// Concurrent recording may skew `sum`/`count` against the buckets by a
    /// few in-flight samples; percentile estimates are unaffected in
    /// practice.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`BUCKETS`] for the bucket scheme).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded samples, in microseconds.
    pub sum_micros: u64,
    /// Number of recorded samples.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) in microseconds, by
    /// linear interpolation within the covering bucket.
    ///
    /// On an **empty histogram the result is exactly `0.0` — never NaN**,
    /// for any `q` (including non-finite `q`, which clamps).  Live
    /// renderers (`qob top`) read quantiles continuously from their first
    /// refresh, before any query has run, so this edge is pinned by a
    /// regression test.
    pub fn quantile(&self, q: f64) -> f64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if (seen + n) as f64 >= rank {
                let (lo, hi) = bucket_bounds(k);
                let into = (rank - seen as f64) / n as f64;
                return lo as f64 + into * (hi - lo) as f64;
            }
            seen += n;
        }
        let (_, hi) = bucket_bounds(BUCKETS - 1);
        hi as f64
    }
}

/// The `[lo, hi)` microsecond range bucket `k` covers.
fn bucket_bounds(k: usize) -> (u64, u64) {
    match k {
        0 => (0, 1),
        _ => (1u64 << (k - 1), 1u64 << k),
    }
}

/// The fixed instrument set the server owns: one registry per
/// `ServerContext`, shared by every session.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Statements answered (queries and prepared executes), all sessions.
    pub queries_total: Counter,
    /// Statements that failed (parse, bind, optimize or execute errors).
    pub query_errors_total: Counter,
    /// Adaptive re-optimization rounds fired.
    pub replans_total: Counter,
    /// Statements slower than the session's `slow_query_ms` threshold.
    pub slow_queries_total: Counter,
    /// Per-fingerprint latency regressions detected by the query
    /// history's windowed detector.
    pub regressions_total: Counter,
    /// Executor worker panics observed.
    pub worker_panics_total: Counter,
    /// Statements admitted to execution by the admission controller.
    pub admitted_total: Counter,
    /// Statements rejected because the admission queue was full.
    pub rejected_total: Counter,
    /// End-to-end statement latency (parse through execute).
    pub query_latency: Histogram,
    /// Parse-phase latency.
    pub parse_latency: Histogram,
    /// Bind-phase latency.
    pub bind_latency: Histogram,
    /// Optimize-phase latency (includes the plan-cache lookup).
    pub optimize_latency: Histogram,
    /// Execute-phase latency.
    pub execute_latency: Histogram,
    /// Time statements waited in the admission queue before executing.
    pub queue_wait_latency: Histogram,
}

impl MetricsRegistry {
    /// Creates a registry with all instruments at zero.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Renders every instrument into `ex` under the `qob_` prefix.
    pub fn render(&self, ex: &mut Exposition) {
        ex.counter(
            "qob_queries_total",
            "Statements answered across all sessions",
            self.queries_total.get(),
        );
        ex.counter(
            "qob_query_errors_total",
            "Statements that failed",
            self.query_errors_total.get(),
        );
        ex.counter(
            "qob_replans_total",
            "Adaptive re-optimization rounds",
            self.replans_total.get(),
        );
        ex.counter(
            "qob_slow_queries_total",
            "Statements over the slow_query_ms threshold",
            self.slow_queries_total.get(),
        );
        ex.counter(
            "qob_regressions_total",
            "Per-fingerprint latency regressions detected",
            self.regressions_total.get(),
        );
        ex.counter(
            "qob_worker_panics_total",
            "Executor worker panics",
            self.worker_panics_total.get(),
        );
        ex.histogram(
            "qob_query_seconds",
            "End-to-end statement latency",
            &self.query_latency.snapshot(),
        );
        ex.histogram("qob_parse_seconds", "Parse-phase latency", &self.parse_latency.snapshot());
        ex.histogram("qob_bind_seconds", "Bind-phase latency", &self.bind_latency.snapshot());
        ex.histogram(
            "qob_optimize_seconds",
            "Optimize-phase latency (incl. plan-cache lookup)",
            &self.optimize_latency.snapshot(),
        );
        ex.histogram(
            "qob_execute_seconds",
            "Execute-phase latency",
            &self.execute_latency.snapshot(),
        );
        ex.counter(
            "qob_admitted_total",
            "Statements admitted to execution",
            self.admitted_total.get(),
        );
        ex.counter(
            "qob_rejected_total",
            "Statements rejected by admission control",
            self.rejected_total.get(),
        );
        ex.histogram(
            "qob_queue_wait_seconds",
            "Admission queue wait before execution",
            &self.queue_wait_latency.snapshot(),
        );
    }
}

/// A Prometheus text-format (version 0.0.4) builder.
///
/// Families are rendered in call order; each family gets `# HELP` and
/// `# TYPE` comments followed by its samples.  Labelled samples of one
/// family may be added across several [`Exposition::counter_with`] /
/// [`Exposition::gauge_with`] calls — the family header is emitted only
/// once (the format forbids repeating it).
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
    headered: HashSet<String>,
}

impl Exposition {
    /// Creates an empty exposition.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        if !self.headered.insert(name.to_owned()) {
            return;
        }
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Renders `labels` as a `{name="value",…}` fragment (empty for no
    /// labels), escaping `\`, `"` and newlines in values per the text
    /// format.
    fn push_labels(&mut self, labels: &[(&str, &str)]) {
        if labels.is_empty() {
            return;
        }
        self.out.push('{');
        for (i, (key, value)) in labels.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            debug_assert!(
                key.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                    && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad label name `{key}`"
            );
            self.out.push_str(key);
            self.out.push_str("=\"");
            for c in value.chars() {
                match c {
                    '\\' => self.out.push_str("\\\\"),
                    '"' => self.out.push_str("\\\""),
                    '\n' => self.out.push_str("\\n"),
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
        }
        self.out.push('}');
    }

    /// Renders one counter family.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.counter_with(name, help, &[], value);
    }

    /// Renders one counter sample carrying `labels`.  Repeat calls with
    /// the same `name` extend the family (one sample per label set);
    /// the header renders once.
    pub fn counter_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "counter");
        self.out.push_str(name);
        self.push_labels(labels);
        let _ = writeln!(self.out, " {value}");
    }

    /// Renders one gauge family.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.gauge_with(name, help, &[], value);
    }

    /// Renders one gauge sample carrying `labels` — the labelled twin of
    /// [`Exposition::gauge`], same family-extension rule as
    /// [`Exposition::counter_with`].
    pub fn gauge_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "gauge");
        self.out.push_str(name);
        self.push_labels(labels);
        let _ = writeln!(self.out, " {value}");
    }

    /// Renders one histogram family: cumulative `_bucket{le="…"}` samples
    /// (bucket bounds converted from microseconds to seconds), `_sum` and
    /// `_count`.  Empty trailing buckets collapse into `+Inf`.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &HistogramSnapshot) {
        self.header(name, help, "histogram");
        let last = snap.buckets.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
        let mut cumulative = 0u64;
        for (k, &n) in snap.buckets.iter().enumerate().take(last) {
            cumulative += n;
            let (_, hi) = bucket_bounds(k);
            let le = hi as f64 / 1e6;
            let _ = writeln!(self.out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let total: u64 = snap.buckets.iter().sum();
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {total}");
        let _ = writeln!(self.out, "{name}_sum {}", snap.sum_micros as f64 / 1e6);
        let _ = writeln!(self.out, "{name}_count {total}");
    }

    /// Finishes the build and returns the exposition body.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Checks that `body` is well-formed Prometheus text format: every line is
/// a `# HELP`/`# TYPE` comment or a `name[{labels}] value` sample with a
/// parsable float value.  The label fragment is parsed for real — label
/// names must be `[a-zA-Z_][a-zA-Z0-9_]*`, values must be double-quoted
/// with only `\\`, `\"` and `\n` escapes, pairs separated by commas.
/// Returns the number of sample lines, or a description of the first
/// malformed line.
pub fn validate_exposition(body: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (i, line) in body.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let rest = comment.trim_start();
            if !(rest.starts_with("HELP ") || rest.starts_with("TYPE ")) {
                return Err(format!("line {}: unknown comment `{line}`", i + 1));
            }
            continue;
        }
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => return Err(format!("line {}: no value in `{line}`", i + 1)),
        };
        let name = name_part.split('{').next().unwrap_or("");
        let name_ok = !name.is_empty()
            && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
        if !name_ok {
            return Err(format!("line {}: bad metric name in `{line}`", i + 1));
        }
        if let Some(labels) = name_part.strip_prefix(name) {
            if let Err(what) = validate_labels(labels) {
                return Err(format!("line {}: {what} in `{line}`", i + 1));
            }
        }
        if value_part != "+Inf" && value_part != "-Inf" && value_part.parse::<f64>().is_err() {
            return Err(format!("line {}: bad value `{value_part}`", i + 1));
        }
        samples += 1;
    }
    Ok(samples)
}

/// Parses a sample line's label fragment: empty, or
/// `{name="value",name="value"}` with the text format's escape rules.
fn validate_labels(labels: &str) -> Result<(), &'static str> {
    if labels.is_empty() {
        return Ok(());
    }
    let inner = labels
        .strip_prefix('{')
        .and_then(|rest| rest.strip_suffix('}'))
        .ok_or("unbalanced label braces")?;
    let mut chars = inner.chars().peekable();
    loop {
        // Label name.
        let mut name_len = 0usize;
        while let Some(&c) = chars.peek() {
            let ok = if name_len == 0 {
                c.is_ascii_alphabetic() || c == '_'
            } else {
                c.is_ascii_alphanumeric() || c == '_'
            };
            if !ok {
                break;
            }
            chars.next();
            name_len += 1;
        }
        if name_len == 0 {
            return Err("bad label name");
        }
        if chars.next() != Some('=') {
            return Err("label without `=`");
        }
        if chars.next() != Some('"') {
            return Err("unquoted label value");
        }
        // Quoted value with escapes.
        loop {
            match chars.next() {
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('\\') | Some('"') | Some('n') => {}
                    _ => return Err("bad escape in label value"),
                },
                Some(_) => {}
                None => return Err("unterminated label value"),
            }
        }
        match chars.next() {
            None => return Ok(()),
            Some(',') => {
                // A trailing comma before `}` is tolerated, as Prometheus
                // itself tolerates it.
                if chars.peek().is_none() {
                    return Ok(());
                }
            }
            Some(_) => return Err("junk after label value"),
        }
    }
}

/// One structured event, built field-by-field and serialised as a single
/// JSON line.  Field order is preserved; the `event` kind always leads.
/// [`EventLog::emit`] appends a process-monotonic `seq` field as the
/// last pair, so interleaved stderr lines from concurrent sessions can
/// be totally ordered after the fact.
#[derive(Debug)]
pub struct Event {
    line: String,
}

impl Event {
    /// Starts an event of the given kind.
    pub fn new(kind: &str) -> Event {
        let mut line = String::from("{\"event\":");
        push_json_str(&mut line, kind);
        Event { line }
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Event {
        self.key(key);
        push_json_str(&mut self.line, value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn num(mut self, key: &str, value: u64) -> Event {
        self.key(key);
        let _ = write!(self.line, "{value}");
        self
    }

    /// Adds a float field (rendered with two decimals; non-finite → null).
    pub fn float(mut self, key: &str, value: f64) -> Event {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.line, "{value:.2}");
        } else {
            self.line.push_str("null");
        }
        self
    }

    fn key(&mut self, key: &str) {
        self.line.push(',');
        push_json_str(&mut self.line, key);
        self.line.push(':');
    }

    /// Finishes the event and returns the JSON line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.line.push('}');
        self.line
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where an [`EventLog`] writes its lines.
enum EventSink {
    /// Process standard error (the default: `qob serve` logs are stderr).
    Stderr,
    /// An in-memory buffer, for tests.
    Buffer(Vec<String>),
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventSink::Stderr => f.write_str("Stderr"),
            EventSink::Buffer(lines) => write!(f, "Buffer({} lines)", lines.len()),
        }
    }
}

/// A JSON-lines event log.
///
/// Disabled by default; enabling it (the `slow_query_ms` session option /
/// `--slow-query-ms` flag) turns on *all* event kinds — replans, fence
/// rejects, evictions, worker panics, slow queries and regressions.  The
/// enabled check is one relaxed atomic load, so a disabled log costs
/// nothing on the hot path; the sink lock is only taken when a line is
/// actually written.  Each written line gets a `seq` field assigned
/// under that lock, so `seq` order **is** write order — strictly
/// monotonic even under concurrent emitters.
#[derive(Debug)]
pub struct EventLog {
    enabled: AtomicBool,
    seq: AtomicU64,
    sink: Mutex<EventSink>,
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog::new()
    }
}

impl EventLog {
    /// Creates a disabled log writing to stderr.
    pub fn new() -> EventLog {
        EventLog {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            sink: Mutex::new(EventSink::Stderr),
        }
    }

    /// Turns the log on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether events are currently written.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Redirects events into an in-memory buffer (for tests); returns any
    /// lines already buffered.
    pub fn capture(&self) -> Vec<String> {
        let mut sink = self.sink.lock().expect("event sink");
        match std::mem::replace(&mut *sink, EventSink::Buffer(Vec::new())) {
            EventSink::Buffer(lines) => lines,
            EventSink::Stderr => Vec::new(),
        }
    }

    /// Drains the buffered lines (empty when the sink is stderr).
    pub fn drain(&self) -> Vec<String> {
        let mut sink = self.sink.lock().expect("event sink");
        match &mut *sink {
            EventSink::Buffer(lines) => std::mem::take(lines),
            EventSink::Stderr => Vec::new(),
        }
    }

    /// Writes one event if the log is enabled, appending its `seq`
    /// field.  The sequence number is taken under the sink lock, so the
    /// written log is strictly `seq`-ordered.
    pub fn emit(&self, event: Event) {
        if !self.is_enabled() {
            return;
        }
        let mut sink = self.sink.lock().expect("event sink");
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let line = event.num("seq", seq).finish();
        match &mut *sink {
            EventSink::Stderr => eprintln!("{line}"),
            EventSink::Buffer(lines) => lines.push(line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_hold_values() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(17);
        assert_eq!(g.get(), 17);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Histogram::index(0), 0);
        assert_eq!(Histogram::index(1), 1);
        assert_eq!(Histogram::index(2), 2);
        assert_eq!(Histogram::index(3), 2);
        assert_eq!(Histogram::index(4), 3);
        assert_eq!(Histogram::index(1023), 10);
        assert_eq!(Histogram::index(1024), 11);
        assert_eq!(Histogram::index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), 0.0, "empty histogram");
        for micros in [100u64, 100, 100, 100, 100, 100, 100, 100, 100, 100_000] {
            h.record_micros(micros);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.sum_micros, 100_900);
        let p50 = snap.quantile(0.5);
        assert!((64.0..128.0).contains(&p50), "p50 inside the [64,128) bucket, got {p50}");
        let p99 = snap.quantile(0.99);
        assert!((65_536.0..131_072.0).contains(&p99), "p99 inside the top bucket, got {p99}");
        assert!(snap.quantile(0.0) <= snap.quantile(1.0));
    }

    #[test]
    fn quantile_of_uniform_samples_is_monotone() {
        let h = Histogram::new();
        for micros in 1..=1000u64 {
            h.record_micros(micros);
        }
        let snap = h.snapshot();
        let (p50, p95, p99) = (snap.quantile(0.5), snap.quantile(0.95), snap.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} ≤ {p95} ≤ {p99}");
        // Log-bucketed estimates are within a factor of two of the truth.
        assert!((250.0..1000.0).contains(&p50), "p50 ≈ 500 within 2×, got {p50}");
    }

    #[test]
    fn exposition_renders_and_validates() {
        let registry = MetricsRegistry::new();
        registry.queries_total.add(3);
        registry.query_latency.record(Duration::from_micros(250));
        registry.query_latency.record(Duration::from_millis(8));
        let mut ex = Exposition::new();
        registry.render(&mut ex);
        ex.gauge("qob_up", "Always one", 1);
        let body = ex.finish();
        assert!(body.contains("# TYPE qob_queries_total counter"), "{body}");
        assert!(body.contains("qob_queries_total 3"), "{body}");
        assert!(body.contains("qob_query_seconds_count 2"), "{body}");
        assert!(body.contains("qob_query_seconds_bucket{le=\"+Inf\"} 2"), "{body}");
        let samples = validate_exposition(&body).expect("rendered exposition validates");
        assert!(samples > 10, "{samples} samples");
    }

    #[test]
    fn validate_rejects_malformed_bodies() {
        assert!(validate_exposition("no_value_here").is_err());
        assert!(validate_exposition("name not-a-number").is_err());
        assert!(validate_exposition("# COMMENT nope").is_err());
        assert!(validate_exposition("9starts_with_digit 1").is_err());
        assert!(validate_exposition("bad{labels 1").is_err());
        assert_eq!(validate_exposition("ok 1\nok{a=\"b\"} 2\n# HELP ok fine"), Ok(2));
    }

    #[test]
    fn events_serialise_as_json_lines() {
        let log = EventLog::new();
        log.capture();
        log.emit(Event::new("dropped").str("q", "x")); // disabled → dropped
        log.set_enabled(true);
        assert!(log.is_enabled());
        log.emit(
            Event::new("slow_query")
                .str("query", "q\"1\"")
                .num("elapsed_ms", 250)
                .float("q_error", 12.5)
                .float("bad", f64::NAN),
        );
        let lines = log.drain();
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0],
            "{\"event\":\"slow_query\",\"query\":\"q\\\"1\\\"\",\"elapsed_ms\":250,\
             \"q_error\":12.50,\"bad\":null,\"seq\":1}"
        );
        log.set_enabled(false);
        log.emit(Event::new("again").num("n", 1));
        assert!(log.drain().is_empty());
        // Dropped events do not consume sequence numbers: the next
        // written line continues at 2.
        log.set_enabled(true);
        log.emit(Event::new("next"));
        assert_eq!(log.drain(), vec!["{\"event\":\"next\",\"seq\":2}".to_owned()]);
    }

    fn seq_of(line: &str) -> u64 {
        let at = line.rfind("\"seq\":").expect("line carries a seq field");
        line[at + 6..].trim_end_matches('}').parse().expect("numeric seq")
    }

    #[test]
    fn event_seqs_are_strictly_monotonic_under_concurrent_emitters() {
        let log = std::sync::Arc::new(EventLog::new());
        log.capture();
        log.set_enabled(true);
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    log.emit(Event::new("tick").num("thread", t).num("i", i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let lines = log.drain();
        assert_eq!(lines.len(), 800);
        let seqs: Vec<u64> = lines.iter().map(|l| seq_of(l)).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seq order must equal write order, strictly");
        assert_eq!(*seqs.first().unwrap(), 1);
        assert_eq!(*seqs.last().unwrap(), 800);
    }

    #[test]
    fn empty_histogram_quantile_is_zero_never_nan() {
        let snap = Histogram::new().snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0, -3.0, 7.0, f64::NAN, f64::INFINITY] {
            let v = snap.quantile(q);
            assert_eq!(v, 0.0, "empty histogram quantile({q}) must be exactly 0.0");
            assert!(!v.is_nan());
        }
    }

    #[test]
    fn labelled_samples_render_and_validate() {
        let mut ex = Exposition::new();
        ex.gauge_with("qob_storage_encoded_bytes", "Encoded bytes", &[("table", "title")], 42);
        ex.gauge_with("qob_storage_encoded_bytes", "Encoded bytes", &[("table", "movie_info")], 7);
        ex.counter_with("qob_oddities_total", "Escapes", &[("kind", "a\"b\\c\nd")], 1);
        let body = ex.finish();
        assert_eq!(
            body.matches("# TYPE qob_storage_encoded_bytes gauge").count(),
            1,
            "one header per family, however many label sets: {body}"
        );
        assert!(body.contains("qob_storage_encoded_bytes{table=\"title\"} 42"), "{body}");
        assert!(body.contains("qob_storage_encoded_bytes{table=\"movie_info\"} 7"), "{body}");
        assert!(body.contains("{kind=\"a\\\"b\\\\c\\nd\"} 1"), "{body}");
        assert_eq!(validate_exposition(&body), Ok(3));
    }

    #[test]
    fn validate_checks_label_syntax_strictly() {
        // Well-formed labelled samples pass.
        assert_eq!(validate_exposition("m{a=\"b\"} 1"), Ok(1));
        assert_eq!(validate_exposition("m{a=\"b\",c_9=\"d e f\"} 1"), Ok(1));
        assert_eq!(validate_exposition("m{a=\"b\",} 1"), Ok(1), "trailing comma tolerated");
        assert_eq!(validate_exposition("m{le=\"+Inf\"} 1"), Ok(1));
        assert_eq!(validate_exposition("m{a=\"x\\\\y\\\"z\\n\"} 1"), Ok(1), "escapes");
        // Malformed fragments are rejected with the reason.
        for bad in [
            "m{a=\"b\" 1",         // unbalanced braces
            "m{=\"b\"} 1",         // missing label name
            "m{9a=\"b\"} 1",       // label name starts with a digit
            "m{a=b} 1",            // unquoted value
            "m{a=\"b} 1",          // unterminated value
            "m{a=\"b\"c=\"d\"} 1", // missing comma
            "m{a=\"\\x\"} 1",      // unknown escape
            "m{a} 1",              // no `=`
        ] {
            assert!(validate_exposition(bad).is_err(), "accepted: {bad}");
        }
    }
}
