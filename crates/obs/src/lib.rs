//! # qob-obs
//!
//! Runtime observability for the warm server: a lock-free metrics registry
//! (atomic counters and log-bucketed latency histograms), Prometheus text
//! exposition, and a structured JSON-lines event log.
//!
//! The crate is a leaf — no dependencies on the rest of the workspace — so
//! every layer (session, cache, adaptive, executor, server) can feed it.
//! All hot-path instruments are plain atomics: recording a sample is a
//! handful of `fetch_add`s, never a lock, so instrumented and
//! uninstrumented runs stay tuple-identical (see `docs/OBSERVABILITY.md`).
//!
//! * [`Counter`] / [`Gauge`] — monotonic and set-point `u64` cells.
//! * [`Histogram`] — power-of-two-bucketed latency histogram over
//!   microseconds; p50/p95/p99 come from bucket counts alone, no sample
//!   retention.
//! * [`MetricsRegistry`] — the fixed set of instruments the server owns.
//! * [`Exposition`] — renders instruments in the Prometheus text format
//!   (version 0.0.4); [`validate_exposition`] re-parses a rendered body.
//! * [`EventLog`] — JSON-lines events (replans, fence rejects, evictions,
//!   worker panics, slow queries) behind the `slow_query_ms` option.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets.  Bucket `k` (for `k ≥ 1`) counts samples
/// in `[2^(k-1), 2^k)` microseconds; bucket `0` counts zero-microsecond
/// samples.  `2^(BUCKETS-2)` µs ≈ 6.4 days, so the top bucket is an
/// effective `+Inf` catch-all.
pub const BUCKETS: usize = 40;

/// A log-bucketed latency histogram over microseconds.
///
/// Recording is three relaxed `fetch_add`s; percentiles are estimated from
/// the bucket counts by linear interpolation inside the covering bucket, so
/// no samples are retained.  The relative error is bounded by the bucket
/// width (a factor of two).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn index(micros: u64) -> usize {
        ((u64::BITS - micros.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one sample, in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[Self::index(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one sample from a [`Duration`].
    pub fn record(&self, elapsed: Duration) {
        self.record_micros(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Takes a consistent-enough snapshot of the bucket counts.
    ///
    /// Concurrent recording may skew `sum`/`count` against the buckets by a
    /// few in-flight samples; percentile estimates are unaffected in
    /// practice.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`BUCKETS`] for the bucket scheme).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded samples, in microseconds.
    pub sum_micros: u64,
    /// Number of recorded samples.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) in microseconds, by
    /// linear interpolation within the covering bucket.  Returns 0.0 when
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if (seen + n) as f64 >= rank {
                let (lo, hi) = bucket_bounds(k);
                let into = (rank - seen as f64) / n as f64;
                return lo as f64 + into * (hi - lo) as f64;
            }
            seen += n;
        }
        let (_, hi) = bucket_bounds(BUCKETS - 1);
        hi as f64
    }
}

/// The `[lo, hi)` microsecond range bucket `k` covers.
fn bucket_bounds(k: usize) -> (u64, u64) {
    match k {
        0 => (0, 1),
        _ => (1u64 << (k - 1), 1u64 << k),
    }
}

/// The fixed instrument set the server owns: one registry per
/// `ServerContext`, shared by every session.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Statements answered (queries and prepared executes), all sessions.
    pub queries_total: Counter,
    /// Statements that failed (parse, bind, optimize or execute errors).
    pub query_errors_total: Counter,
    /// Adaptive re-optimization rounds fired.
    pub replans_total: Counter,
    /// Statements slower than the session's `slow_query_ms` threshold.
    pub slow_queries_total: Counter,
    /// Executor worker panics observed.
    pub worker_panics_total: Counter,
    /// Statements admitted to execution by the admission controller.
    pub admitted_total: Counter,
    /// Statements rejected because the admission queue was full.
    pub rejected_total: Counter,
    /// End-to-end statement latency (parse through execute).
    pub query_latency: Histogram,
    /// Parse-phase latency.
    pub parse_latency: Histogram,
    /// Bind-phase latency.
    pub bind_latency: Histogram,
    /// Optimize-phase latency (includes the plan-cache lookup).
    pub optimize_latency: Histogram,
    /// Execute-phase latency.
    pub execute_latency: Histogram,
    /// Time statements waited in the admission queue before executing.
    pub queue_wait_latency: Histogram,
}

impl MetricsRegistry {
    /// Creates a registry with all instruments at zero.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Renders every instrument into `ex` under the `qob_` prefix.
    pub fn render(&self, ex: &mut Exposition) {
        ex.counter(
            "qob_queries_total",
            "Statements answered across all sessions",
            self.queries_total.get(),
        );
        ex.counter(
            "qob_query_errors_total",
            "Statements that failed",
            self.query_errors_total.get(),
        );
        ex.counter(
            "qob_replans_total",
            "Adaptive re-optimization rounds",
            self.replans_total.get(),
        );
        ex.counter(
            "qob_slow_queries_total",
            "Statements over the slow_query_ms threshold",
            self.slow_queries_total.get(),
        );
        ex.counter(
            "qob_worker_panics_total",
            "Executor worker panics",
            self.worker_panics_total.get(),
        );
        ex.histogram(
            "qob_query_seconds",
            "End-to-end statement latency",
            &self.query_latency.snapshot(),
        );
        ex.histogram("qob_parse_seconds", "Parse-phase latency", &self.parse_latency.snapshot());
        ex.histogram("qob_bind_seconds", "Bind-phase latency", &self.bind_latency.snapshot());
        ex.histogram(
            "qob_optimize_seconds",
            "Optimize-phase latency (incl. plan-cache lookup)",
            &self.optimize_latency.snapshot(),
        );
        ex.histogram(
            "qob_execute_seconds",
            "Execute-phase latency",
            &self.execute_latency.snapshot(),
        );
        ex.counter(
            "qob_admitted_total",
            "Statements admitted to execution",
            self.admitted_total.get(),
        );
        ex.counter(
            "qob_rejected_total",
            "Statements rejected by admission control",
            self.rejected_total.get(),
        );
        ex.histogram(
            "qob_queue_wait_seconds",
            "Admission queue wait before execution",
            &self.queue_wait_latency.snapshot(),
        );
    }
}

/// A Prometheus text-format (version 0.0.4) builder.
///
/// Families are rendered in call order; each family gets `# HELP` and
/// `# TYPE` comments followed by its samples.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// Creates an empty exposition.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Renders one counter family.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Renders one gauge family.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Renders one histogram family: cumulative `_bucket{le="…"}` samples
    /// (bucket bounds converted from microseconds to seconds), `_sum` and
    /// `_count`.  Empty trailing buckets collapse into `+Inf`.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &HistogramSnapshot) {
        self.header(name, help, "histogram");
        let last = snap.buckets.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
        let mut cumulative = 0u64;
        for (k, &n) in snap.buckets.iter().enumerate().take(last) {
            cumulative += n;
            let (_, hi) = bucket_bounds(k);
            let le = hi as f64 / 1e6;
            let _ = writeln!(self.out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let total: u64 = snap.buckets.iter().sum();
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {total}");
        let _ = writeln!(self.out, "{name}_sum {}", snap.sum_micros as f64 / 1e6);
        let _ = writeln!(self.out, "{name}_count {total}");
    }

    /// Finishes the build and returns the exposition body.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Checks that `body` is well-formed Prometheus text format: every line is
/// a `# HELP`/`# TYPE` comment or a `name[{labels}] value` sample with a
/// parsable float value.  Returns the number of sample lines, or a
/// description of the first malformed line.
pub fn validate_exposition(body: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (i, line) in body.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let rest = comment.trim_start();
            if !(rest.starts_with("HELP ") || rest.starts_with("TYPE ")) {
                return Err(format!("line {}: unknown comment `{line}`", i + 1));
            }
            continue;
        }
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => return Err(format!("line {}: no value in `{line}`", i + 1)),
        };
        let name = name_part.split('{').next().unwrap_or("");
        let name_ok = !name.is_empty()
            && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
        if !name_ok {
            return Err(format!("line {}: bad metric name in `{line}`", i + 1));
        }
        if let Some(labels) = name_part.strip_prefix(name) {
            let ok = labels.is_empty()
                || (labels.starts_with('{') && labels.ends_with('}') && labels.contains('='));
            if !ok {
                return Err(format!("line {}: bad labels in `{line}`", i + 1));
            }
        }
        if value_part != "+Inf" && value_part != "-Inf" && value_part.parse::<f64>().is_err() {
            return Err(format!("line {}: bad value `{value_part}`", i + 1));
        }
        samples += 1;
    }
    Ok(samples)
}

/// One structured event, built field-by-field and serialised as a single
/// JSON line.  Field order is preserved; the `event` kind always leads.
#[derive(Debug)]
pub struct Event {
    line: String,
}

impl Event {
    /// Starts an event of the given kind.
    pub fn new(kind: &str) -> Event {
        let mut line = String::from("{\"event\":");
        push_json_str(&mut line, kind);
        Event { line }
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Event {
        self.key(key);
        push_json_str(&mut self.line, value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn num(mut self, key: &str, value: u64) -> Event {
        self.key(key);
        let _ = write!(self.line, "{value}");
        self
    }

    /// Adds a float field (rendered with two decimals; non-finite → null).
    pub fn float(mut self, key: &str, value: f64) -> Event {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.line, "{value:.2}");
        } else {
            self.line.push_str("null");
        }
        self
    }

    fn key(&mut self, key: &str) {
        self.line.push(',');
        push_json_str(&mut self.line, key);
        self.line.push(':');
    }

    /// Finishes the event and returns the JSON line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.line.push('}');
        self.line
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where an [`EventLog`] writes its lines.
enum EventSink {
    /// Process standard error (the default: `qob serve` logs are stderr).
    Stderr,
    /// An in-memory buffer, for tests.
    Buffer(Vec<String>),
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventSink::Stderr => f.write_str("Stderr"),
            EventSink::Buffer(lines) => write!(f, "Buffer({} lines)", lines.len()),
        }
    }
}

/// A JSON-lines event log.
///
/// Disabled by default; enabling it (the `slow_query_ms` session option /
/// `--slow-query-ms` flag) turns on *all* event kinds — replans, fence
/// rejects, evictions, worker panics and slow queries.  The enabled check
/// is one relaxed atomic load, so a disabled log costs nothing on the hot
/// path; the sink lock is only taken when a line is actually written.
#[derive(Debug)]
pub struct EventLog {
    enabled: AtomicBool,
    sink: Mutex<EventSink>,
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog::new()
    }
}

impl EventLog {
    /// Creates a disabled log writing to stderr.
    pub fn new() -> EventLog {
        EventLog { enabled: AtomicBool::new(false), sink: Mutex::new(EventSink::Stderr) }
    }

    /// Turns the log on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether events are currently written.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Redirects events into an in-memory buffer (for tests); returns any
    /// lines already buffered.
    pub fn capture(&self) -> Vec<String> {
        let mut sink = self.sink.lock().expect("event sink");
        match std::mem::replace(&mut *sink, EventSink::Buffer(Vec::new())) {
            EventSink::Buffer(lines) => lines,
            EventSink::Stderr => Vec::new(),
        }
    }

    /// Drains the buffered lines (empty when the sink is stderr).
    pub fn drain(&self) -> Vec<String> {
        let mut sink = self.sink.lock().expect("event sink");
        match &mut *sink {
            EventSink::Buffer(lines) => std::mem::take(lines),
            EventSink::Stderr => Vec::new(),
        }
    }

    /// Writes one event if the log is enabled.
    pub fn emit(&self, event: Event) {
        if !self.is_enabled() {
            return;
        }
        let line = event.finish();
        let mut sink = self.sink.lock().expect("event sink");
        match &mut *sink {
            EventSink::Stderr => eprintln!("{line}"),
            EventSink::Buffer(lines) => lines.push(line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_hold_values() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(17);
        assert_eq!(g.get(), 17);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Histogram::index(0), 0);
        assert_eq!(Histogram::index(1), 1);
        assert_eq!(Histogram::index(2), 2);
        assert_eq!(Histogram::index(3), 2);
        assert_eq!(Histogram::index(4), 3);
        assert_eq!(Histogram::index(1023), 10);
        assert_eq!(Histogram::index(1024), 11);
        assert_eq!(Histogram::index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), 0.0, "empty histogram");
        for micros in [100u64, 100, 100, 100, 100, 100, 100, 100, 100, 100_000] {
            h.record_micros(micros);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.sum_micros, 100_900);
        let p50 = snap.quantile(0.5);
        assert!((64.0..128.0).contains(&p50), "p50 inside the [64,128) bucket, got {p50}");
        let p99 = snap.quantile(0.99);
        assert!((65_536.0..131_072.0).contains(&p99), "p99 inside the top bucket, got {p99}");
        assert!(snap.quantile(0.0) <= snap.quantile(1.0));
    }

    #[test]
    fn quantile_of_uniform_samples_is_monotone() {
        let h = Histogram::new();
        for micros in 1..=1000u64 {
            h.record_micros(micros);
        }
        let snap = h.snapshot();
        let (p50, p95, p99) = (snap.quantile(0.5), snap.quantile(0.95), snap.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} ≤ {p95} ≤ {p99}");
        // Log-bucketed estimates are within a factor of two of the truth.
        assert!((250.0..1000.0).contains(&p50), "p50 ≈ 500 within 2×, got {p50}");
    }

    #[test]
    fn exposition_renders_and_validates() {
        let registry = MetricsRegistry::new();
        registry.queries_total.add(3);
        registry.query_latency.record(Duration::from_micros(250));
        registry.query_latency.record(Duration::from_millis(8));
        let mut ex = Exposition::new();
        registry.render(&mut ex);
        ex.gauge("qob_up", "Always one", 1);
        let body = ex.finish();
        assert!(body.contains("# TYPE qob_queries_total counter"), "{body}");
        assert!(body.contains("qob_queries_total 3"), "{body}");
        assert!(body.contains("qob_query_seconds_count 2"), "{body}");
        assert!(body.contains("qob_query_seconds_bucket{le=\"+Inf\"} 2"), "{body}");
        let samples = validate_exposition(&body).expect("rendered exposition validates");
        assert!(samples > 10, "{samples} samples");
    }

    #[test]
    fn validate_rejects_malformed_bodies() {
        assert!(validate_exposition("no_value_here").is_err());
        assert!(validate_exposition("name not-a-number").is_err());
        assert!(validate_exposition("# COMMENT nope").is_err());
        assert!(validate_exposition("9starts_with_digit 1").is_err());
        assert!(validate_exposition("bad{labels 1").is_err());
        assert_eq!(validate_exposition("ok 1\nok{a=\"b\"} 2\n# HELP ok fine"), Ok(2));
    }

    #[test]
    fn events_serialise_as_json_lines() {
        let log = EventLog::new();
        log.capture();
        log.emit(Event::new("dropped").str("q", "x")); // disabled → dropped
        log.set_enabled(true);
        assert!(log.is_enabled());
        log.emit(
            Event::new("slow_query")
                .str("query", "q\"1\"")
                .num("elapsed_ms", 250)
                .float("q_error", 12.5)
                .float("bad", f64::NAN),
        );
        let lines = log.drain();
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0],
            "{\"event\":\"slow_query\",\"query\":\"q\\\"1\\\"\",\"elapsed_ms\":250,\
             \"q_error\":12.50,\"bad\":null}"
        );
        log.set_enabled(false);
        log.emit(Event::new("again").num("n", 1));
        assert!(log.drain().is_empty());
    }
}
