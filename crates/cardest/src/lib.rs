//! # qob-cardest
//!
//! Cardinality estimation for the JOB reproduction (Section 3 of the paper).
//!
//! The paper extracts cardinality estimates from five systems — PostgreSQL,
//! three anonymous commercial systems ("DBMS A/B/C") and HyPer — and injects
//! them into one execution engine.  The systems are characterised only by
//! their estimation *behaviour*; this crate reproduces those behaviours as
//! five estimator profiles over the statistics of [`qob_stats`]:
//!
//! | Estimator | Models | Behaviour |
//! |---|---|---|
//! | [`PostgresEstimator`] | PostgreSQL | per-attribute histograms + MCVs, independence, `1/max(dom)` join formula, magic constants for LIKE |
//! | [`SamplingEstimator`] | HyPer | per-table 1000-row samples for base predicates, independence for joins |
//! | [`DampedSamplingEstimator`] | "DBMS A" | samples + exponential-backoff damping when combining selectivities |
//! | [`PessimisticEstimator`] | "DBMS B" | coarse statistics and an extra shrink per join — collapses to 1 row for deep joins |
//! | [`MagicConstantEstimator`] | "DBMS C" | ignores statistics for most predicates, guessing fixed selectivities |
//!
//! [`TrueCardinalities`] holds exact cardinalities (computed by executing
//! subexpressions) and [`InjectedCardinalities`] overlays any subset of them
//! over another estimator — the reproduction of the paper's cardinality
//! injection patch (Section 2.4).
//!
//! Estimation quality is measured with the q-error ([`qerror`]).

pub mod estimators;
pub mod feedback;
pub mod model;
pub mod qerror;
pub mod selectivity;
pub mod truth;

pub use estimators::{
    DampedSamplingEstimator, MagicConstantEstimator, PessimisticEstimator, PostgresEstimator,
    SamplingEstimator,
};
pub use feedback::FeedbackEstimator;
pub use model::{CardinalityEstimator, EstimatorContext};
pub use qerror::{nearest_rank_percentile, percentile, q_error, signed_ratio, QErrorSummary};
pub use truth::{InjectedCardinalities, TrueCardinalities};
