//! True cardinalities and cardinality injection.
//!
//! The paper modifies PostgreSQL so that the optimizer can be fed
//! cardinalities for *arbitrary join expressions* — either the true counts
//! (obtained by executing `SELECT COUNT(*)` for every intermediate result) or
//! the estimates of another system (Section 2.4).  [`TrueCardinalities`]
//! stores such a per-query map and [`InjectedCardinalities`] overlays it on a
//! fallback estimator for any subexpression not covered by the injection.

use std::collections::HashMap;

use qob_plan::{QuerySpec, RelSet};

use crate::model::CardinalityEstimator;

/// Exact (or externally supplied) cardinalities for the subexpressions of one
/// query, keyed by [`RelSet`].
#[derive(Debug, Clone, Default)]
pub struct TrueCardinalities {
    map: HashMap<RelSet, f64>,
    name: String,
}

impl TrueCardinalities {
    /// Creates an empty map labelled "true cardinalities".
    pub fn new() -> Self {
        TrueCardinalities { map: HashMap::new(), name: "true cardinalities".to_owned() }
    }

    /// Creates an empty map with a custom label (e.g. when the map carries
    /// another system's injected estimates rather than exact counts).
    pub fn with_name(name: impl Into<String>) -> Self {
        TrueCardinalities { map: HashMap::new(), name: name.into() }
    }

    /// Records the cardinality of one subexpression.
    pub fn insert(&mut self, set: RelSet, cardinality: f64) {
        self.map.insert(set, cardinality);
    }

    /// The recorded cardinality of `set`, if present.
    pub fn get(&self, set: RelSet) -> Option<f64> {
        self.map.get(&set).copied()
    }

    /// Number of recorded subexpressions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no subexpression has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(set, cardinality)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (RelSet, f64)> + '_ {
        self.map.iter().map(|(s, c)| (*s, *c))
    }
}

impl FromIterator<(RelSet, f64)> for TrueCardinalities {
    fn from_iter<T: IntoIterator<Item = (RelSet, f64)>>(iter: T) -> Self {
        let mut t = TrueCardinalities::new();
        for (s, c) in iter {
            t.insert(s, c);
        }
        t
    }
}

impl CardinalityEstimator for TrueCardinalities {
    fn name(&self) -> &str {
        &self.name
    }

    /// Looks up the recorded cardinality; subexpressions that were never
    /// recorded (which cannot happen for connected subexpressions produced by
    /// the extraction pipeline) fall back to 1 row.
    fn estimate(&self, _query: &QuerySpec, set: RelSet) -> f64 {
        self.get(set).unwrap_or(1.0).max(1.0)
    }
}

/// An estimator that answers from an injected per-subexpression map and falls
/// back to another estimator for anything not injected — the reproduction of
/// the paper's cardinality-injection patch.
pub struct InjectedCardinalities<'a> {
    injected: &'a TrueCardinalities,
    fallback: &'a dyn CardinalityEstimator,
    name: String,
}

impl<'a> InjectedCardinalities<'a> {
    /// Creates an injection overlay.
    pub fn new(injected: &'a TrueCardinalities, fallback: &'a dyn CardinalityEstimator) -> Self {
        let name = format!("{} injected into {}", injected.name, fallback.name());
        InjectedCardinalities { injected, fallback, name }
    }

    /// Fraction of requests that would be served from the injected map for
    /// the given collection of subexpressions (diagnostic helper).
    pub fn coverage(&self, sets: &[RelSet]) -> f64 {
        if sets.is_empty() {
            return 1.0;
        }
        let hits = sets.iter().filter(|s| self.injected.get(**s).is_some()).count();
        hits as f64 / sets.len() as f64
    }
}

impl CardinalityEstimator for InjectedCardinalities<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&self, query: &QuerySpec, set: RelSet) -> f64 {
        match self.injected.get(set) {
            Some(card) => card.max(1.0),
            None => self.fallback.estimate(query, set),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qob_plan::BaseRelation;
    use qob_storage::TableId;

    struct ConstEstimator(f64);

    impl CardinalityEstimator for ConstEstimator {
        fn name(&self) -> &str {
            "const"
        }
        fn estimate(&self, _q: &QuerySpec, _s: RelSet) -> f64 {
            self.0
        }
    }

    fn dummy_query() -> QuerySpec {
        QuerySpec::new(
            "q",
            vec![
                BaseRelation::unfiltered(TableId(0), "a"),
                BaseRelation::unfiltered(TableId(1), "b"),
            ],
            vec![],
        )
    }

    #[test]
    fn true_cardinalities_roundtrip() {
        let mut t = TrueCardinalities::new();
        assert!(t.is_empty());
        t.insert(RelSet::single(0), 100.0);
        t.insert(RelSet::from_iter([0, 1]), 42.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(RelSet::single(0)), Some(100.0));
        assert_eq!(t.get(RelSet::single(1)), None);
        let q = dummy_query();
        assert_eq!(t.estimate(&q, RelSet::from_iter([0, 1])), 42.0);
        assert_eq!(t.estimate(&q, RelSet::single(1)), 1.0, "missing sets fall back to 1");
        assert_eq!(t.name(), "true cardinalities");
        let collected: TrueCardinalities = t.iter().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    fn zero_cardinality_is_clamped_to_one() {
        let mut t = TrueCardinalities::new();
        t.insert(RelSet::single(0), 0.0);
        assert_eq!(t.estimate(&dummy_query(), RelSet::single(0)), 1.0);
        assert_eq!(t.get(RelSet::single(0)), Some(0.0), "raw value is preserved");
    }

    #[test]
    fn injection_overlays_fallback() {
        let mut injected = TrueCardinalities::with_name("DBMS X estimates");
        injected.insert(RelSet::single(0), 7.0);
        let fallback = ConstEstimator(99.0);
        let inj = InjectedCardinalities::new(&injected, &fallback);
        let q = dummy_query();
        assert_eq!(inj.estimate(&q, RelSet::single(0)), 7.0);
        assert_eq!(inj.estimate(&q, RelSet::single(1)), 99.0);
        assert!(inj.name().contains("DBMS X"));
        assert!(inj.name().contains("const"));
        let cov = inj.coverage(&[RelSet::single(0), RelSet::single(1)]);
        assert_eq!(cov, 0.5);
        assert_eq!(inj.coverage(&[]), 1.0);
    }
}
