//! The q-error metric and its summaries (Section 3.1 of the paper).

/// The q-error of an estimate: the factor by which it deviates from the true
/// cardinality, `max(est/true, true/est)`.
///
/// Both quantities are clamped to at least 1 row first, following the paper's
/// treatment (estimates below one row are rounded up to 1, and empty true
/// results are treated as 1 so the ratio stays finite).
pub fn q_error(estimate: f64, truth: f64) -> f64 {
    let e = estimate.max(1.0);
    let t = truth.max(1.0);
    (e / t).max(t / e)
}

/// The signed ratio `estimate / truth` (clamped to ≥ 1 row each), used for
/// the over/underestimation axis of Figure 3: values below 1 are
/// underestimates, above 1 overestimates.
pub fn signed_ratio(estimate: f64, truth: f64) -> f64 {
    estimate.max(1.0) / truth.max(1.0)
}

/// The `p`-th percentile (0–100) of a sample, using linear interpolation
/// between closest ranks.  NaN values are ignored (one corrupt estimate must
/// not abort a whole figure run); returns `None` if no finite-or-infinite
/// value remains.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    let sorted = sorted_finite(values)?;
    let p = p.clamp(0.0, 100.0) / 100.0;
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// The nearest-rank `q`-quantile (`q` in 0–1) of a sample: the smallest
/// element with at least `⌈q·n⌉` values at or below it — the convention
/// latency reports use (`p50`, `p95`, `p99`), where the answer is always an
/// observed sample point.  NaN values are ignored like in [`percentile`];
/// returns `None` if nothing remains.
///
/// This is the one shared implementation behind both the q-error summaries
/// here and the latency percentiles of `qob bench-load`.
pub fn nearest_rank_percentile(values: &[f64], q: f64) -> Option<f64> {
    let sorted = sorted_finite(values)?;
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// The NaN-filtered, totally-ordered sample both percentile flavours share.
fn sorted_finite(values: &[f64]) -> Option<Vec<f64>> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    Some(sorted)
}

/// Summary of a q-error distribution in the shape of the paper's Table 1
/// (median / 90th / 95th / max percentiles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QErrorSummary {
    /// 50th percentile.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
    /// Number of samples the percentiles were computed over (NaN excluded).
    pub count: usize,
    /// Number of NaN samples that were dropped before summarising — surfaced
    /// so a run with corrupt estimates is visible rather than silently
    /// cleaned up.
    pub nan_count: usize,
}

impl QErrorSummary {
    /// Summarises a set of q-errors.  NaN values are dropped (and counted in
    /// [`QErrorSummary::nan_count`]); returns `None` if no valid sample
    /// remains.
    pub fn from_errors(errors: &[f64]) -> Option<Self> {
        let valid: Vec<f64> = errors.iter().copied().filter(|v| !v.is_nan()).collect();
        if valid.is_empty() {
            return None;
        }
        Some(QErrorSummary {
            median: percentile(&valid, 50.0)?,
            p90: percentile(&valid, 90.0)?,
            p95: percentile(&valid, 95.0)?,
            max: valid.iter().copied().fold(f64::MIN, f64::max),
            count: valid.len(),
            nan_count: errors.len() - valid.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_is_symmetric_and_at_least_one() {
        assert_eq!(q_error(100.0, 100.0), 1.0);
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(1000.0, 100.0), 10.0);
        assert!(q_error(0.0, 5.0) >= 1.0, "zero estimate clamps to 1");
        assert_eq!(q_error(0.5, 1.0), 1.0);
        assert_eq!(q_error(1.0, 0.0), 1.0, "empty true result treated as 1");
    }

    #[test]
    fn signed_ratio_direction() {
        assert!(signed_ratio(10.0, 100.0) < 1.0, "underestimate");
        assert!(signed_ratio(1000.0, 100.0) > 1.0, "overestimate");
        assert_eq!(signed_ratio(100.0, 100.0), 1.0);
        assert_eq!(signed_ratio(0.0, 0.0), 1.0);
    }

    #[test]
    fn percentile_interpolates() {
        let values = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&values, 0.0), Some(1.0));
        assert_eq!(percentile(&values, 100.0), Some(5.0));
        assert_eq!(percentile(&values, 50.0), Some(3.0));
        assert_eq!(percentile(&values, 25.0), Some(2.0));
        assert_eq!(percentile(&values, 10.0), Some(1.4));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.0], 95.0), Some(7.0));
    }

    #[test]
    fn percentile_handles_unsorted_input() {
        let values = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&values, 50.0), Some(3.0));
    }

    #[test]
    fn percentile_ignores_nans_instead_of_panicking() {
        let values = vec![5.0, f64::NAN, 1.0, 3.0, f64::NAN, 2.0, 4.0];
        assert_eq!(percentile(&values, 50.0), Some(3.0));
        assert_eq!(percentile(&values, 100.0), Some(5.0));
        assert_eq!(percentile(&[f64::NAN, f64::NAN], 50.0), None);
    }

    #[test]
    fn nearest_rank_edge_ranks() {
        // n = 1: every quantile is the single sample.
        assert_eq!(nearest_rank_percentile(&[7.0], 0.0), Some(7.0));
        assert_eq!(nearest_rank_percentile(&[7.0], 0.5), Some(7.0));
        assert_eq!(nearest_rank_percentile(&[7.0], 1.0), Some(7.0));
        // Nearest rank picks an observed sample point, never interpolates.
        let values = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(nearest_rank_percentile(&values, 0.5), Some(2.0));
        assert_eq!(nearest_rank_percentile(&values, 0.51), Some(3.0));
        assert_eq!(nearest_rank_percentile(&values, 0.95), Some(4.0));
        // Ties: the duplicated value owns its whole rank range.
        let ties = vec![1.0, 2.0, 2.0, 2.0, 5.0];
        assert_eq!(nearest_rank_percentile(&ties, 0.4), Some(2.0));
        assert_eq!(nearest_rank_percentile(&ties, 0.8), Some(2.0));
        assert_eq!(nearest_rank_percentile(&ties, 0.99), Some(5.0));
        // NaN-safety: all-NaN yields None, partial NaN is filtered.
        assert_eq!(nearest_rank_percentile(&[f64::NAN, f64::NAN], 0.5), None);
        assert_eq!(nearest_rank_percentile(&[], 0.5), None);
        assert_eq!(nearest_rank_percentile(&[f64::NAN, 3.0], 0.5), Some(3.0));
        // Out-of-range quantiles clamp.
        assert_eq!(nearest_rank_percentile(&values, -1.0), Some(1.0));
        assert_eq!(nearest_rank_percentile(&values, 2.0), Some(4.0));
    }

    #[test]
    fn summary_matches_percentiles() {
        let errors: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = QErrorSummary::from_errors(&errors).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.nan_count, 0);
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.5).abs() < 0.01);
        assert!((s.p90 - 90.1).abs() < 0.01);
        assert!((s.p95 - 95.05).abs() < 0.01);
        assert!(QErrorSummary::from_errors(&[]).is_none());
    }

    #[test]
    fn summary_surfaces_dropped_nans() {
        let mut errors: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        errors.push(f64::NAN);
        errors.push(f64::NAN);
        let s = QErrorSummary::from_errors(&errors).unwrap();
        assert_eq!(s.count, 10);
        assert_eq!(s.nan_count, 2);
        assert_eq!(s.max, 10.0);
        assert!(QErrorSummary::from_errors(&[f64::NAN]).is_none());
    }
}
