//! The five estimator profiles of the paper's Section 3.
//!
//! The commercial systems in the paper are anonymised; each profile below
//! reproduces the *behaviour* the paper reports for one of them (see the
//! crate-level table).  All profiles share the same independence-based join
//! skeleton ([`crate::model::independence_estimate`]) and differ in how they
//! estimate base-table selectivities and how they combine selectivities.

use qob_plan::{QuerySpec, RelSet};

use crate::model::{
    independence_estimate, join_edge_selectivity, CardinalityEstimator, Damping, EstimatorContext,
};
use crate::selectivity::{histogram_base_rows, MagicConstants};

/// PostgreSQL-style estimator: per-attribute histograms and MCVs,
/// independence everywhere, `1/max(dom)` join selectivity, magic constants
/// for LIKE.
pub struct PostgresEstimator<'a> {
    ctx: EstimatorContext<'a>,
    /// Use exact distinct counts instead of the sampled (Duj1) estimates —
    /// the Figure 5 ("true distinct counts") variant.
    pub use_exact_distinct: bool,
    magic: MagicConstants,
    name: &'static str,
}

impl<'a> PostgresEstimator<'a> {
    /// Creates the default-statistics PostgreSQL profile.
    pub fn new(ctx: EstimatorContext<'a>) -> Self {
        PostgresEstimator {
            ctx,
            use_exact_distinct: false,
            magic: MagicConstants::default(),
            name: "PostgreSQL",
        }
    }

    /// The Figure 5 variant that uses exact distinct counts.
    pub fn with_true_distinct_counts(ctx: EstimatorContext<'a>) -> Self {
        PostgresEstimator {
            ctx,
            use_exact_distinct: true,
            magic: MagicConstants::default(),
            name: "PostgreSQL (true distinct)",
        }
    }
}

impl CardinalityEstimator for PostgresEstimator<'_> {
    fn name(&self) -> &str {
        self.name
    }

    fn estimate(&self, query: &QuerySpec, set: RelSet) -> f64 {
        independence_estimate(
            query,
            set,
            |rel| {
                histogram_base_rows(
                    &self.ctx,
                    query,
                    rel,
                    self.use_exact_distinct,
                    &self.magic,
                    Damping::Independence,
                )
            },
            |edge| join_edge_selectivity(&self.ctx, query, edge, self.use_exact_distinct),
            Damping::Independence,
            1.0,
        )
    }
}

/// Sampling estimator in the style of HyPer: evaluates base-table predicates
/// on a ~1000-row sample (excellent even for correlated or LIKE predicates),
/// falls back to a magic constant when no sample row matches, and uses the
/// independence assumption for joins.
pub struct SamplingEstimator<'a> {
    ctx: EstimatorContext<'a>,
    /// Selectivity assumed when the predicate matches no sample row.
    pub zero_match_fallback: f64,
    name: &'static str,
}

impl<'a> SamplingEstimator<'a> {
    /// Creates the HyPer-style profile.
    pub fn new(ctx: EstimatorContext<'a>) -> Self {
        SamplingEstimator { ctx, zero_match_fallback: 0.0005, name: "HyPer" }
    }

    fn sample_base_rows(&self, query: &QuerySpec, rel: usize) -> f64 {
        let relation = &query.relations[rel];
        let table = self.ctx.db.table(relation.table);
        let stats = self.ctx.stats.table(relation.table);
        let rows = stats.row_count as f64;
        if relation.predicates.is_empty() {
            return rows;
        }
        match stats.sample.selectivity(table, &relation.predicates) {
            Some(sel) => rows * sel,
            None => (rows * self.zero_match_fallback).max(1.0),
        }
    }
}

impl CardinalityEstimator for SamplingEstimator<'_> {
    fn name(&self) -> &str {
        self.name
    }

    fn estimate(&self, query: &QuerySpec, set: RelSet) -> f64 {
        independence_estimate(
            query,
            set,
            |rel| self.sample_base_rows(query, rel),
            |edge| join_edge_selectivity(&self.ctx, query, edge, false),
            Damping::Independence,
            1.0,
        )
    }
}

/// "DBMS A" profile: table samples for base predicates (like HyPer) plus an
/// exponential-backoff damping factor when combining join selectivities,
/// which lifts multi-join estimates towards the truth — the best median
/// behaviour in Figure 3 at the cost of occasional overestimates.
pub struct DampedSamplingEstimator<'a> {
    inner: SamplingEstimator<'a>,
    ctx: EstimatorContext<'a>,
}

impl<'a> DampedSamplingEstimator<'a> {
    /// Creates the DBMS A-style profile.
    pub fn new(ctx: EstimatorContext<'a>) -> Self {
        let mut inner = SamplingEstimator::new(ctx);
        inner.zero_match_fallback = 0.002;
        DampedSamplingEstimator { inner, ctx }
    }
}

impl CardinalityEstimator for DampedSamplingEstimator<'_> {
    fn name(&self) -> &str {
        "DBMS A"
    }

    fn estimate(&self, query: &QuerySpec, set: RelSet) -> f64 {
        independence_estimate(
            query,
            set,
            |rel| self.inner.sample_base_rows(query, rel),
            |edge| join_edge_selectivity(&self.ctx, query, edge, false),
            Damping::ExponentialBackoff,
            1.0,
        )
    }
}

/// "DBMS B" profile: histogram statistics with unhelpful magic constants and
/// an additional shrink factor per join, which makes estimates for queries
/// with more than a couple of joins collapse towards a single row — the
/// strong systematic underestimation visible for DBMS B in Figure 3.
pub struct PessimisticEstimator<'a> {
    ctx: EstimatorContext<'a>,
    magic: MagicConstants,
    /// Extra multiplicative shrink applied per join beyond the first.
    pub per_join_shrink: f64,
}

impl<'a> PessimisticEstimator<'a> {
    /// Creates the DBMS B-style profile.
    pub fn new(ctx: EstimatorContext<'a>) -> Self {
        PessimisticEstimator {
            ctx,
            magic: MagicConstants { like: 0.4, unknown_equality: 1e-4, range: 1.0 / 3.0 },
            per_join_shrink: 0.25,
        }
    }
}

impl CardinalityEstimator for PessimisticEstimator<'_> {
    fn name(&self) -> &str {
        "DBMS B"
    }

    fn estimate(&self, query: &QuerySpec, set: RelSet) -> f64 {
        independence_estimate(
            query,
            set,
            |rel| {
                histogram_base_rows(
                    &self.ctx,
                    query,
                    rel,
                    false,
                    &self.magic,
                    Damping::Independence,
                )
            },
            |edge| join_edge_selectivity(&self.ctx, query, edge, false),
            Damping::Independence,
            self.per_join_shrink,
        )
    }
}

/// "DBMS C" profile: base-table estimates that largely ignore the statistics
/// and guess fixed selectivities per predicate type.  This produces the huge
/// base-table errors (both directions) of Table 1 while joins still follow
/// the independence formula.
pub struct MagicConstantEstimator<'a> {
    ctx: EstimatorContext<'a>,
    /// Selectivity guessed for every equality predicate.
    pub equality_guess: f64,
    /// Selectivity guessed for every LIKE predicate.
    pub like_guess: f64,
    /// Selectivity guessed for every range predicate.
    pub range_guess: f64,
}

impl<'a> MagicConstantEstimator<'a> {
    /// Creates the DBMS C-style profile.
    pub fn new(ctx: EstimatorContext<'a>) -> Self {
        MagicConstantEstimator {
            ctx,
            equality_guess: 0.01,
            like_guess: 0.05,
            range_guess: 1.0 / 3.0,
        }
    }

    fn guess(&self, predicate: &qob_storage::Predicate) -> f64 {
        use qob_storage::Predicate as P;
        match predicate {
            P::IntCmp { op: qob_storage::CmpOp::Eq, .. } | P::StrEq { .. } => self.equality_guess,
            P::IntCmp { op: qob_storage::CmpOp::Ne, .. } => 1.0 - self.equality_guess,
            P::IntCmp { .. } | P::IntBetween { .. } => self.range_guess,
            P::StrIn { values, .. } => (self.equality_guess * values.len() as f64).min(1.0),
            P::Like { .. } => self.like_guess,
            P::IsNull { .. } => 0.05,
            P::IsNotNull { .. } => 0.95,
            P::And(ps) => ps.iter().map(|p| self.guess(p)).product(),
            P::Or(ps) => 1.0 - ps.iter().map(|p| 1.0 - self.guess(p)).product::<f64>(),
            P::Not(p) => 1.0 - self.guess(p),
        }
    }

    fn base_rows(&self, query: &QuerySpec, rel: usize) -> f64 {
        let relation = &query.relations[rel];
        let rows = self.ctx.stats.table(relation.table).row_count as f64;
        let sel: f64 = relation.predicates.iter().map(|p| self.guess(p).clamp(0.0, 1.0)).product();
        rows * sel
    }
}

impl CardinalityEstimator for MagicConstantEstimator<'_> {
    fn name(&self) -> &str {
        "DBMS C"
    }

    fn estimate(&self, query: &QuerySpec, set: RelSet) -> f64 {
        independence_estimate(
            query,
            set,
            |rel| self.base_rows(query, rel),
            |edge| join_edge_selectivity(&self.ctx, query, edge, false),
            Damping::Independence,
            1.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qob_plan::{BaseRelation, JoinEdge};
    use qob_stats::{analyze_database, AnalyzeOptions, DatabaseStats};
    use qob_storage::{
        CmpOp, ColumnId, ColumnMeta, DataType, Database, Predicate, TableBuilder, TableId, Value,
    };

    /// A two-table database with a correlated filter + join so that the
    /// independence assumption underestimates.
    fn correlated_db() -> (Database, DatabaseStats) {
        let mut movies = TableBuilder::new(
            "movies",
            vec![
                ColumnMeta::new("id", DataType::Int),
                ColumnMeta::new("kind", DataType::Str),
                ColumnMeta::new("year", DataType::Int),
            ],
        );
        // 2000 movies; 30% are "blockbuster" kind.
        for i in 0..2000i64 {
            let kind = if i % 10 < 3 { "blockbuster" } else { "indie" };
            movies
                .push_row(vec![
                    Value::Int(i + 1),
                    Value::Str(kind.into()),
                    Value::Int(1990 + (i % 25)),
                ])
                .unwrap();
        }
        // info rows: blockbusters have 10 each, indies 1 each (correlated fan-out).
        let mut info = TableBuilder::new(
            "info",
            vec![ColumnMeta::new("id", DataType::Int), ColumnMeta::new("movie_id", DataType::Int)],
        );
        let mut id = 1i64;
        for i in 0..2000i64 {
            let n = if i % 10 < 3 { 10 } else { 1 };
            for _ in 0..n {
                info.push_row(vec![Value::Int(id), Value::Int(i + 1)]).unwrap();
                id += 1;
            }
        }
        let mut db = Database::new();
        let m = db.add_table(movies.finish()).unwrap();
        let inf = db.add_table(info.finish()).unwrap();
        db.declare_primary_key(m, "id").unwrap();
        db.declare_primary_key(inf, "id").unwrap();
        db.declare_foreign_key(inf, "movie_id", m).unwrap();
        let stats = analyze_database(&db, &AnalyzeOptions::default());
        (db, stats)
    }

    fn join_query(db: &Database) -> QuerySpec {
        let movies = db.table_id("movies").unwrap();
        let info = db.table_id("info").unwrap();
        QuerySpec::new(
            "corr",
            vec![
                BaseRelation::filtered(
                    movies,
                    "m",
                    vec![Predicate::StrEq { column: ColumnId(1), value: "blockbuster".into() }],
                ),
                BaseRelation::unfiltered(info, "i"),
            ],
            vec![JoinEdge {
                left: 0,
                left_column: ColumnId(0),
                right: 1,
                right_column: ColumnId(1),
            }],
        )
    }

    #[test]
    fn postgres_estimator_base_tables_are_reasonable() {
        let (db, stats) = correlated_db();
        let ctx = EstimatorContext::new(&db, &stats);
        let est = PostgresEstimator::new(ctx);
        let q = join_query(&db);
        let base = est.estimate_base(&q, 0);
        assert!((base - 600.0).abs() < 120.0, "30% of 2000 ≈ 600, got {base}");
        assert_eq!(est.estimate_base(&q, 1), stats.table(TableId(1)).row_count as f64);
        assert_eq!(est.name(), "PostgreSQL");
    }

    #[test]
    fn independence_underestimates_correlated_join() {
        let (db, stats) = correlated_db();
        let ctx = EstimatorContext::new(&db, &stats);
        let est = PostgresEstimator::new(ctx);
        let q = join_query(&db);
        // True result: 600 blockbusters × 10 info rows = 6000.
        let estimate = est.estimate(&q, q.all_rels());
        assert!(
            estimate < 4000.0,
            "independence + uniform fan-out should underestimate the correlated join, got {estimate}"
        );
        assert!(estimate > 100.0, "but not absurdly so, got {estimate}");
    }

    #[test]
    fn sampling_estimator_handles_like_better_than_postgres() {
        let (db, stats) = correlated_db();
        let ctx = EstimatorContext::new(&db, &stats);
        let pg = PostgresEstimator::new(ctx);
        let hyper = SamplingEstimator::new(ctx);
        let movies = db.table_id("movies").unwrap();
        let q = QuerySpec::new(
            "like",
            vec![BaseRelation::filtered(
                movies,
                "m",
                vec![Predicate::Like { column: ColumnId(1), pattern: "%block%".into() }],
            )],
            vec![],
        );
        let truth = 600.0;
        let pg_err = crate::qerror::q_error(pg.estimate(&q, RelSet::single(0)), truth);
        let hyper_err = crate::qerror::q_error(hyper.estimate(&q, RelSet::single(0)), truth);
        assert!(
            hyper_err < pg_err,
            "sampling sees through LIKE (q-err {hyper_err:.2}) while magic constants do not ({pg_err:.2})"
        );
        assert_eq!(hyper.name(), "HyPer");
    }

    #[test]
    fn sampling_estimator_falls_back_on_zero_matches() {
        let (db, stats) = correlated_db();
        let ctx = EstimatorContext::new(&db, &stats);
        let hyper = SamplingEstimator::new(ctx);
        let movies = db.table_id("movies").unwrap();
        let q = QuerySpec::new(
            "none",
            vec![BaseRelation::filtered(
                movies,
                "m",
                vec![Predicate::StrEq { column: ColumnId(1), value: "does-not-exist".into() }],
            )],
            vec![],
        );
        let est = hyper.estimate(&q, RelSet::single(0));
        assert!((1.0..=10.0).contains(&est), "fallback should be small but non-zero, got {est}");
    }

    #[test]
    fn damped_estimator_is_at_least_the_plain_sampling_estimate() {
        let (db, stats) = correlated_db();
        let ctx = EstimatorContext::new(&db, &stats);
        let plain = SamplingEstimator::new(ctx);
        let damped = DampedSamplingEstimator::new(ctx);
        let q = join_query(&db);
        let all = q.all_rels();
        assert!(damped.estimate(&q, all) >= plain.estimate(&q, all) * 0.999);
        assert_eq!(damped.name(), "DBMS A");
    }

    #[test]
    fn pessimistic_estimator_collapses_deep_joins() {
        let (db, stats) = correlated_db();
        let ctx = EstimatorContext::new(&db, &stats);
        let pg = PostgresEstimator::new(ctx);
        let b = PessimisticEstimator::new(ctx);
        // Chain the info table twice to get 2 joins.
        let movies = db.table_id("movies").unwrap();
        let info = db.table_id("info").unwrap();
        let q = QuerySpec::new(
            "chain",
            vec![
                BaseRelation::filtered(
                    movies,
                    "m",
                    vec![Predicate::StrEq { column: ColumnId(1), value: "blockbuster".into() }],
                ),
                BaseRelation::unfiltered(info, "i1"),
                BaseRelation::unfiltered(info, "i2"),
            ],
            vec![
                JoinEdge { left: 0, left_column: ColumnId(0), right: 1, right_column: ColumnId(1) },
                JoinEdge { left: 0, left_column: ColumnId(0), right: 2, right_column: ColumnId(1) },
            ],
        );
        let all = q.all_rels();
        assert!(
            b.estimate(&q, all) < pg.estimate(&q, all),
            "DBMS B shrinks harder with more joins"
        );
        assert_eq!(b.name(), "DBMS B");
    }

    #[test]
    fn magic_constant_estimator_misestimates_selective_and_common_predicates() {
        let (db, stats) = correlated_db();
        let ctx = EstimatorContext::new(&db, &stats);
        let c = MagicConstantEstimator::new(ctx);
        let movies = db.table_id("movies").unwrap();
        // A common predicate (30% of rows) is underestimated at 1%.
        let q = QuerySpec::new(
            "common",
            vec![BaseRelation::filtered(
                movies,
                "m",
                vec![Predicate::StrEq { column: ColumnId(1), value: "blockbuster".into() }],
            )],
            vec![],
        );
        let est = c.estimate(&q, RelSet::single(0));
        assert!((est - 20.0).abs() < 1.0, "2000 × 0.01 = 20, got {est}");
        let err = crate::qerror::q_error(est, 600.0);
        assert!(err > 10.0, "large error on a common value, got {err}");
        // A range predicate gets the 1/3 guess regardless of bounds.
        let q = QuerySpec::new(
            "range",
            vec![BaseRelation::filtered(
                movies,
                "m",
                vec![Predicate::IntCmp { column: ColumnId(2), op: CmpOp::Ge, value: 2014 }],
            )],
            vec![],
        );
        let est = c.estimate(&q, RelSet::single(0));
        assert!((est - 2000.0 / 3.0).abs() < 1.0, "got {est}");
        assert_eq!(c.name(), "DBMS C");
    }

    #[test]
    fn true_distinct_variant_changes_join_estimates() {
        let (db, _) = correlated_db();
        // Use a small statistics sample so the Duj1 distinct estimate for the
        // skewed info.movie_id column undershoots the exact count.
        let stats =
            analyze_database(&db, &AnalyzeOptions { stats_sample_size: 300, ..Default::default() });
        let ctx = EstimatorContext::new(&db, &stats);
        let default = PostgresEstimator::new(ctx);
        let exact = PostgresEstimator::with_true_distinct_counts(ctx);
        // An n:m self-join of info on movie_id: the join domain is the
        // distinct count of movie_id on both sides, which differs between the
        // sampled and the exact statistic.
        let info = db.table_id("info").unwrap();
        let q = QuerySpec::new(
            "nm",
            vec![BaseRelation::unfiltered(info, "i1"), BaseRelation::unfiltered(info, "i2")],
            vec![JoinEdge {
                left: 0,
                left_column: ColumnId(1),
                right: 1,
                right_column: ColumnId(1),
            }],
        );
        let all = q.all_rels();
        let d = default.estimate(&q, all);
        let e = exact.estimate(&q, all);
        assert!(
            e < d,
            "the larger (exact) domain means a smaller join selectivity: exact {e} vs sampled {d}"
        );
        assert_eq!(exact.name(), "PostgreSQL (true distinct)");
    }

    #[test]
    fn estimators_are_usable_as_trait_objects() {
        let (db, stats) = correlated_db();
        let ctx = EstimatorContext::new(&db, &stats);
        let q = join_query(&db);
        let ests: Vec<Box<dyn CardinalityEstimator + '_>> = vec![
            Box::new(PostgresEstimator::new(ctx)),
            Box::new(SamplingEstimator::new(ctx)),
            Box::new(DampedSamplingEstimator::new(ctx)),
            Box::new(PessimisticEstimator::new(ctx)),
            Box::new(MagicConstantEstimator::new(ctx)),
        ];
        let names: Vec<&str> = ests.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["PostgreSQL", "HyPer", "DBMS A", "DBMS B", "DBMS C"]);
        for e in &ests {
            let est = e.estimate(&q, q.all_rels());
            assert!(est >= 1.0, "{} produced {est}", e.name());
            assert!(est.is_finite());
        }
    }
}
