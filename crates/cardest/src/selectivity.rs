//! PostgreSQL-style base-table selectivity estimation from per-attribute
//! statistics (histograms, most-common values, distinct counts, null
//! fractions) plus the "magic constants" used when statistics do not apply.

use qob_plan::QuerySpec;
use qob_stats::ColumnStats;
use qob_storage::{CmpOp, Predicate, Value};

use crate::model::{combine_selectivities, Damping, EstimatorContext};

/// The magic constants a histogram-based estimator falls back to when its
/// statistics cannot handle a predicate (Section 2.3: "ad hoc methods that
/// are not theoretically grounded").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MagicConstants {
    /// Selectivity assumed for `LIKE` patterns.
    pub like: f64,
    /// Selectivity assumed for an equality with an unknown (non-MCV) value
    /// when no distinct count is usable.
    pub unknown_equality: f64,
    /// Selectivity assumed for a range predicate without a histogram.
    pub range: f64,
}

impl Default for MagicConstants {
    fn default() -> Self {
        // PostgreSQL's DEFAULT_MATCH_SEL = 0.005, DEFAULT_EQ_SEL = 0.005,
        // DEFAULT_INEQ_SEL = 0.3333.
        MagicConstants { like: 0.005, unknown_equality: 0.005, range: 1.0 / 3.0 }
    }
}

/// Estimates the selectivity of one predicate over one base table using
/// histogram/MCV statistics, in the style of PostgreSQL's clause selectivity
/// functions.
pub fn histogram_predicate_selectivity(
    stats: &ColumnStats,
    predicate: &Predicate,
    use_exact_distinct: bool,
    magic: &MagicConstants,
) -> f64 {
    let non_null = (1.0 - stats_null_frac(stats, predicate)).max(0.0);
    let sel = match predicate {
        Predicate::IntCmp { op: CmpOp::Eq, value, .. } => {
            equality_selectivity(stats, &Value::Int(*value), use_exact_distinct, magic)
        }
        Predicate::IntCmp { op: CmpOp::Ne, value, .. } => {
            (1.0 - equality_selectivity(stats, &Value::Int(*value), use_exact_distinct, magic))
                * non_null
        }
        Predicate::IntCmp { op, value, .. } => match &stats.histogram {
            Some(h) => h.selectivity(*op, *value) * non_null,
            None => magic.range,
        },
        Predicate::IntBetween { low, high, .. } => match &stats.histogram {
            Some(h) => h.selectivity_between(*low, *high) * non_null,
            None => magic.range * magic.range,
        },
        Predicate::StrEq { value, .. } => {
            equality_selectivity(stats, &Value::Str(value.clone()), use_exact_distinct, magic)
        }
        Predicate::StrIn { values, .. } => values
            .iter()
            .map(|v| equality_selectivity(stats, &Value::Str(v.clone()), use_exact_distinct, magic))
            .sum::<f64>()
            .min(1.0),
        Predicate::Like { .. } => magic.like,
        Predicate::IsNull { .. } => stats.null_frac,
        Predicate::IsNotNull { .. } => 1.0 - stats.null_frac,
        Predicate::And(ps) => combine_selectivities(
            ps.iter()
                .map(|p| histogram_predicate_selectivity(stats, p, use_exact_distinct, magic))
                .collect(),
            Damping::Independence,
        ),
        Predicate::Or(ps) => {
            let mut not_matching = 1.0;
            for p in ps {
                not_matching *=
                    1.0 - histogram_predicate_selectivity(stats, p, use_exact_distinct, magic);
            }
            1.0 - not_matching
        }
        Predicate::Not(p) => {
            1.0 - histogram_predicate_selectivity(stats, p, use_exact_distinct, magic)
        }
    };
    sel.clamp(0.0, 1.0)
}

fn stats_null_frac(stats: &ColumnStats, predicate: &Predicate) -> f64 {
    match predicate {
        Predicate::IsNull { .. } | Predicate::IsNotNull { .. } => 0.0,
        _ => stats.null_frac,
    }
}

/// Equality selectivity in the PostgreSQL style: use the MCV frequency when
/// the literal is a tracked common value, otherwise distribute the remaining
/// (non-MCV, non-null) mass uniformly over the remaining distinct values.
pub fn equality_selectivity(
    stats: &ColumnStats,
    value: &Value,
    use_exact_distinct: bool,
    magic: &MagicConstants,
) -> f64 {
    if let Some(freq) = stats.mcv_frequency(value) {
        return freq.clamp(0.0, 1.0);
    }
    let distinct = stats.distinct(use_exact_distinct);
    if distinct <= 0.0 {
        return magic.unknown_equality;
    }
    let mcv_count = stats.mcv.len() as f64;
    let remaining_frac = (1.0 - stats.null_frac - stats.mcv_total_frequency()).max(0.0);
    let remaining_distinct = (distinct - mcv_count).max(1.0);
    let sel = remaining_frac / remaining_distinct;
    if sel <= 0.0 {
        magic.unknown_equality
    } else {
        sel.clamp(0.0, 1.0)
    }
}

/// Estimates the output rows of one base relation of a query by combining
/// the relation's predicates under the chosen damping rule (this is the
/// per-relation part of every histogram-based estimator profile).
pub fn histogram_base_rows(
    ctx: &EstimatorContext<'_>,
    query: &QuerySpec,
    rel: usize,
    use_exact_distinct: bool,
    magic: &MagicConstants,
    damping: Damping,
) -> f64 {
    let relation = &query.relations[rel];
    let table_stats = ctx.stats.table(relation.table);
    let rows = table_stats.row_count as f64;
    if relation.predicates.is_empty() {
        return rows;
    }
    let sels: Vec<f64> = relation
        .predicates
        .iter()
        .map(|p| {
            // A predicate references exactly one column of the relation; use
            // that column's statistics (composite AND/OR predicates in JOB
            // always target a single column).
            let col = p.referenced_columns().first().copied();
            match col {
                Some(c) => histogram_predicate_selectivity(
                    &table_stats.columns[c.index()],
                    p,
                    use_exact_distinct,
                    magic,
                ),
                None => 1.0,
            }
        })
        .collect();
    rows * combine_selectivities(sels, damping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qob_stats::{analyze_database, AnalyzeOptions};
    use qob_storage::{ColumnId, ColumnMeta, DataType, Database, TableBuilder, TableId};

    /// 1000 rows: kind is 'movie' for 70%, 'tv' for 20%, ten rare kinds for
    /// the rest; year uniform in 1950..2010 with 10% nulls.
    fn db_and_stats() -> (Database, qob_stats::DatabaseStats) {
        let mut b = TableBuilder::new(
            "title",
            vec![
                ColumnMeta::new("id", DataType::Int),
                ColumnMeta::new("kind", DataType::Str),
                ColumnMeta::new("production_year", DataType::Int),
            ],
        );
        for i in 0..1000i64 {
            let kind = if i % 10 < 7 {
                "movie".to_owned()
            } else if i % 10 < 9 {
                "tv".to_owned()
            } else {
                format!("rare{}", i % 100)
            };
            let year = if i % 10 == 3 { Value::Null } else { Value::Int(1950 + (i % 60)) };
            b.push_row(vec![Value::Int(i), Value::Str(kind), year]).unwrap();
        }
        let mut db = Database::new();
        db.add_table(b.finish()).unwrap();
        let stats = analyze_database(&db, &AnalyzeOptions::default());
        (db, stats)
    }

    fn kind_stats(stats: &qob_stats::DatabaseStats) -> &ColumnStats {
        &stats.table(TableId(0)).columns[1]
    }

    fn year_stats(stats: &qob_stats::DatabaseStats) -> &ColumnStats {
        &stats.table(TableId(0)).columns[2]
    }

    #[test]
    fn mcv_equality_is_accurate() {
        let (_, stats) = db_and_stats();
        let magic = MagicConstants::default();
        let sel =
            equality_selectivity(kind_stats(&stats), &Value::Str("movie".into()), false, &magic);
        assert!((sel - 0.7).abs() < 0.05, "movie ≈ 70%, got {sel}");
        let sel = equality_selectivity(kind_stats(&stats), &Value::Str("tv".into()), false, &magic);
        assert!((sel - 0.2).abs() < 0.05, "tv ≈ 20%, got {sel}");
    }

    #[test]
    fn non_mcv_equality_uses_remaining_mass() {
        let (_, stats) = db_and_stats();
        let magic = MagicConstants::default();
        let sel =
            equality_selectivity(kind_stats(&stats), &Value::Str("rare42".into()), false, &magic);
        assert!(sel < 0.05, "rare kinds get a small selectivity, got {sel}");
        assert!(sel > 0.0);
    }

    #[test]
    fn range_predicates_use_histogram() {
        let (_, stats) = db_and_stats();
        let magic = MagicConstants::default();
        let pred = Predicate::IntCmp { column: ColumnId(2), op: CmpOp::Ge, value: 1980 };
        let sel = histogram_predicate_selectivity(year_stats(&stats), &pred, false, &magic);
        // Half the non-null years are >= 1980; non-null fraction is 0.9.
        assert!((sel - 0.45).abs() < 0.08, "expected ≈ 0.45, got {sel}");
        let between = Predicate::IntBetween { column: ColumnId(2), low: 1950, high: 2010 };
        let sel = histogram_predicate_selectivity(year_stats(&stats), &between, false, &magic);
        assert!(sel > 0.8, "full range covers all non-null rows, got {sel}");
    }

    #[test]
    fn null_predicates_use_null_fraction() {
        let (_, stats) = db_and_stats();
        let magic = MagicConstants::default();
        let p = Predicate::IsNull { column: ColumnId(2) };
        let sel = histogram_predicate_selectivity(year_stats(&stats), &p, false, &magic);
        assert!((sel - 0.1).abs() < 0.03);
        let p = Predicate::IsNotNull { column: ColumnId(2) };
        let sel = histogram_predicate_selectivity(year_stats(&stats), &p, false, &magic);
        assert!((sel - 0.9).abs() < 0.03);
    }

    #[test]
    fn like_uses_magic_constant() {
        let (_, stats) = db_and_stats();
        let magic = MagicConstants::default();
        let p = Predicate::Like { column: ColumnId(1), pattern: "%movie%".into() };
        let sel = histogram_predicate_selectivity(kind_stats(&stats), &p, false, &magic);
        assert_eq!(sel, magic.like, "LIKE ignores the true match fraction");
    }

    #[test]
    fn boolean_composition() {
        let (_, stats) = db_and_stats();
        let magic = MagicConstants::default();
        let movie = Predicate::StrEq { column: ColumnId(1), value: "movie".into() };
        let tv = Predicate::StrEq { column: ColumnId(1), value: "tv".into() };
        let or = Predicate::Or(vec![movie.clone(), tv.clone()]);
        let sel_or = histogram_predicate_selectivity(kind_stats(&stats), &or, false, &magic);
        // OR under independence: 1 − (1−0.7)(1−0.2) = 0.76.
        assert!(sel_or > 0.7 && sel_or <= 1.0, "got {sel_or}");
        let and = Predicate::And(vec![movie.clone(), tv]);
        let sel_and = histogram_predicate_selectivity(kind_stats(&stats), &and, false, &magic);
        let sel_movie = histogram_predicate_selectivity(kind_stats(&stats), &movie, false, &magic);
        assert!(sel_and < sel_movie, "AND is more selective than either conjunct");
        let not = Predicate::Not(Box::new(movie));
        let sel_not = histogram_predicate_selectivity(kind_stats(&stats), &not, false, &magic);
        assert!((sel_not + sel_movie - 1.0).abs() < 1e-9);
    }

    #[test]
    fn base_rows_combines_relation_predicates() {
        let (db, stats) = db_and_stats();
        let ctx = EstimatorContext::new(&db, &stats);
        let magic = MagicConstants::default();
        let query = QuerySpec::new(
            "q",
            vec![qob_plan::BaseRelation::filtered(
                TableId(0),
                "t",
                vec![
                    Predicate::StrEq { column: ColumnId(1), value: "movie".into() },
                    Predicate::IntCmp { column: ColumnId(2), op: CmpOp::Ge, value: 1980 },
                ],
            )],
            vec![],
        );
        let rows = histogram_base_rows(&ctx, &query, 0, false, &magic, Damping::Independence);
        // 1000 * 0.7 * 0.45 ≈ 315 (independence; the true joint count differs).
        assert!(rows > 200.0 && rows < 450.0, "got {rows}");
        let damped =
            histogram_base_rows(&ctx, &query, 0, false, &magic, Damping::ExponentialBackoff);
        assert!(damped >= rows, "backoff never decreases the estimate");

        let unfiltered =
            QuerySpec::new("q2", vec![qob_plan::BaseRelation::unfiltered(TableId(0), "t")], vec![]);
        assert_eq!(
            histogram_base_rows(&ctx, &unfiltered, 0, false, &magic, Damping::Independence),
            1000.0
        );
    }
}
