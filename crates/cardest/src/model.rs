//! The estimator trait and the shared "selectivity × independence" skeleton
//! that all profile estimators build on.

use qob_plan::{JoinEdge, QuerySpec, RelSet};
use qob_stats::DatabaseStats;
use qob_storage::Database;

/// A cardinality estimator: maps a connected subexpression (identified by its
/// [`RelSet`]) of a query to an estimated result cardinality in rows.
pub trait CardinalityEstimator {
    /// Short display name (used as the system label in experiment output).
    fn name(&self) -> &str;

    /// Estimated cardinality of the subexpression joining exactly the
    /// relations in `set`, with all base-table predicates of those relations
    /// applied.
    fn estimate(&self, query: &QuerySpec, set: RelSet) -> f64;

    /// Convenience: the estimate for a single base relation.
    fn estimate_base(&self, query: &QuerySpec, rel: usize) -> f64 {
        self.estimate(query, RelSet::single(rel))
    }
}

impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for &T {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn estimate(&self, query: &QuerySpec, set: RelSet) -> f64 {
        (**self).estimate(query, set)
    }
}

impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn estimate(&self, query: &QuerySpec, set: RelSet) -> f64 {
        (**self).estimate(query, set)
    }
}

/// Shared read-only context: the catalog and its statistics.
#[derive(Clone, Copy)]
pub struct EstimatorContext<'a> {
    /// The database catalog (table row counts, schemas).
    pub db: &'a Database,
    /// The ANALYZE statistics.
    pub stats: &'a DatabaseStats,
}

impl<'a> EstimatorContext<'a> {
    /// Creates a context.
    pub fn new(db: &'a Database, stats: &'a DatabaseStats) -> Self {
        EstimatorContext { db, stats }
    }

    /// Total rows of the table backing relation `rel` of `query`.
    pub fn base_table_rows(&self, query: &QuerySpec, rel: usize) -> f64 {
        self.db.table(query.relations[rel].table).row_count() as f64
    }

    /// The distinct count of a join column (per-attribute statistic), using
    /// either the sampled or the exact count.
    pub fn join_column_distinct(
        &self,
        query: &QuerySpec,
        rel: usize,
        column: qob_storage::ColumnId,
        use_exact: bool,
    ) -> f64 {
        let table = query.relations[rel].table;
        let col_stats = &self.stats.table(table).columns[column.index()];
        col_stats.distinct(use_exact).max(1.0)
    }
}

/// How multiple selectivities (join edges beyond the spanning ones, multiple
/// base predicates) are combined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Damping {
    /// Full independence: multiply all selectivities (PostgreSQL, HyPer).
    Independence,
    /// Exponential backoff: sort selectivities ascending and raise the i-th
    /// to the power `1/2^i` — the "adjust upwards" damping the paper
    /// speculates DBMS A applies (Section 3.2).
    ExponentialBackoff,
}

/// Combines a set of selectivities in `[0, 1]` under the given damping rule.
pub fn combine_selectivities(mut sels: Vec<f64>, damping: Damping) -> f64 {
    match damping {
        Damping::Independence => sels.iter().product(),
        Damping::ExponentialBackoff => {
            sels.sort_by(|a, b| a.partial_cmp(b).expect("selectivities are not NaN"));
            sels.iter().enumerate().map(|(i, s)| s.powf(1.0 / (1u64 << i.min(62)) as f64)).product()
        }
    }
}

/// The textbook join-size formula the paper quotes for PostgreSQL
/// (Section 2.3): the selectivity of an equality join edge is
/// `1 / max(dom(left), dom(right))`, where `dom` is the distinct count of the
/// join attribute (the principle-of-inclusion assumption).
pub fn join_edge_selectivity(
    ctx: &EstimatorContext<'_>,
    query: &QuerySpec,
    edge: &JoinEdge,
    use_exact_distinct: bool,
) -> f64 {
    let dl = ctx.join_column_distinct(query, edge.left, edge.left_column, use_exact_distinct);
    let dr = ctx.join_column_distinct(query, edge.right, edge.right_column, use_exact_distinct);
    1.0 / dl.max(dr).max(1.0)
}

/// The shared estimation skeleton:
///
/// ```text
/// |set| = Π_r base_rows(r)  ×  combine( join selectivities of edges within set )
///         × per_join_shrink^(#edges − 1)
/// ```
///
/// clamped to at least 1 row (as PostgreSQL does, see footnote 6 of the
/// paper).  The estimator profiles differ in `base_rows`, the damping and the
/// extra shrink factor.
pub fn independence_estimate(
    query: &QuerySpec,
    set: RelSet,
    base_rows: impl Fn(usize) -> f64,
    edge_selectivity: impl Fn(&JoinEdge) -> f64,
    damping: Damping,
    per_join_shrink: f64,
) -> f64 {
    let mut card: f64 = 1.0;
    for rel in set.iter() {
        card *= base_rows(rel).max(0.0);
    }
    let edges = query.edges_within(set);
    if !edges.is_empty() {
        let sels: Vec<f64> = edges.iter().map(|e| edge_selectivity(e).clamp(0.0, 1.0)).collect();
        card *= combine_selectivities(sels, damping);
        if per_join_shrink < 1.0 && edges.len() > 1 {
            card *= per_join_shrink.powi(edges.len() as i32 - 1);
        }
    }
    card.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qob_plan::BaseRelation;
    use qob_storage::ColumnId;

    fn two_rel_query() -> QuerySpec {
        QuerySpec::new(
            "q",
            vec![
                BaseRelation::unfiltered(qob_storage::TableId(0), "a"),
                BaseRelation::unfiltered(qob_storage::TableId(1), "b"),
                BaseRelation::unfiltered(qob_storage::TableId(2), "c"),
            ],
            vec![
                JoinEdge { left: 0, left_column: ColumnId(1), right: 1, right_column: ColumnId(0) },
                JoinEdge { left: 1, left_column: ColumnId(1), right: 2, right_column: ColumnId(0) },
            ],
        )
    }

    #[test]
    fn combine_independence_multiplies() {
        let c = combine_selectivities(vec![0.1, 0.5, 0.2], Damping::Independence);
        assert!((c - 0.01).abs() < 1e-12);
        assert_eq!(combine_selectivities(vec![], Damping::Independence), 1.0);
    }

    #[test]
    fn exponential_backoff_is_larger_than_independence() {
        let sels = vec![0.1, 0.5, 0.2];
        let indep = combine_selectivities(sels.clone(), Damping::Independence);
        let damped = combine_selectivities(sels, Damping::ExponentialBackoff);
        assert!(damped > indep, "damping lifts the combined selectivity");
        assert!(damped <= 1.0);
        // The most selective factor keeps its full weight, so the damped
        // combination can never exceed it alone being applied to nothing else.
        assert!(damped <= 0.1 + 1e-12, "most selective factor applies fully, got {damped}");
    }

    #[test]
    fn backoff_single_selectivity_is_unchanged() {
        let s = combine_selectivities(vec![0.3], Damping::ExponentialBackoff);
        assert!((s - 0.3).abs() < 1e-12);
    }

    #[test]
    fn independence_estimate_applies_base_and_edges() {
        let q = two_rel_query();
        // |A|=100, |B|=1000, |C|=10; both edges selectivity 1/100.
        let est = independence_estimate(
            &q,
            q.all_rels(),
            |r| [100.0, 1000.0, 10.0][r],
            |_| 1.0 / 100.0,
            Damping::Independence,
            1.0,
        );
        assert!((est - 100.0).abs() < 1e-6, "100*1000*10 / 100 / 100 = 100, got {est}");
        // A single edge subexpression: 100 * 1000 / 100 = 1000.
        let sub = RelSet::from_iter([0usize, 1usize]);
        let est = independence_estimate(
            &q,
            sub,
            |r| [100.0, 1000.0, 10.0][r],
            |_| 1.0 / 100.0,
            Damping::Independence,
            1.0,
        );
        assert!((est - 1000.0).abs() < 1e-6, "got {est}");
    }

    #[test]
    fn estimate_is_clamped_to_one() {
        let q = two_rel_query();
        let est =
            independence_estimate(&q, q.all_rels(), |_| 2.0, |_| 1e-9, Damping::Independence, 1.0);
        assert_eq!(est, 1.0);
    }

    #[test]
    fn per_join_shrink_reduces_deep_joins_only() {
        let q = two_rel_query();
        let base = |r: usize| [100.0, 100.0, 100.0][r];
        let without =
            independence_estimate(&q, q.all_rels(), base, |_| 0.01, Damping::Independence, 1.0);
        let with =
            independence_estimate(&q, q.all_rels(), base, |_| 0.01, Damping::Independence, 0.5);
        assert!(with < without);
        // Single-edge subexpression is unaffected by the shrink.
        let sub = RelSet::from_iter([0usize, 1usize]);
        let a = independence_estimate(&q, sub, base, |_| 0.01, Damping::Independence, 1.0);
        let b = independence_estimate(&q, sub, base, |_| 0.01, Damping::Independence, 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn singleton_set_uses_base_rows_only() {
        let q = two_rel_query();
        let est = independence_estimate(
            &q,
            RelSet::single(1),
            |r| [5.0, 42.0, 7.0][r],
            |_| 0.001,
            Damping::Independence,
            1.0,
        );
        assert_eq!(est, 42.0);
    }
}
