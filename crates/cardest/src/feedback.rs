//! Runtime truth feedback: the estimator overlay of adaptive re-optimization.
//!
//! During adaptive execution the engine learns the *true* cardinality of
//! every intermediate it materialises.  [`FeedbackEstimator`] feeds those
//! observations back into estimation:
//!
//! * a subexpression that was observed answers with its exact count;
//! * a subexpression *containing* observed sets answers with the fallback
//!   estimate corrected by the observed/estimated ratio of a greedy disjoint
//!   cover of its observed subsets — the independence-preserving way to
//!   propagate "the build side was 40× bigger than we thought" upwards into
//!   the not-yet-executed remainder of the plan.
//!
//! This differs from [`crate::InjectedCardinalities`], which only overlays
//! exact matches: re-planning mid-query must also steer the estimates of
//! supersets that join an observed intermediate with fresh relations.

use qob_plan::{QuerySpec, RelSet};

use crate::model::CardinalityEstimator;
use crate::truth::TrueCardinalities;

/// An estimator overlay that answers observed subexpressions exactly and
/// corrects fallback estimates of their supersets by the observed divergence.
pub struct FeedbackEstimator<'a> {
    observed: &'a TrueCardinalities,
    /// The observations sorted for the greedy cover — largest sets first
    /// (they carry the most joins' worth of signal), bit order breaking
    /// ties deterministically.  Re-planning calls `estimate` once per
    /// enumerated csg-cmp candidate, so this is sorted once at
    /// construction instead of per call.
    cover_order: Vec<(RelSet, f64)>,
    fallback: &'a dyn CardinalityEstimator,
    name: String,
}

impl<'a> FeedbackEstimator<'a> {
    /// Creates the overlay of `observed` runtime truths over `fallback`.
    pub fn new(observed: &'a TrueCardinalities, fallback: &'a dyn CardinalityEstimator) -> Self {
        let name = format!("runtime feedback over {}", fallback.name());
        let mut cover_order: Vec<(RelSet, f64)> =
            observed.iter().filter(|(s, _)| !s.is_empty()).collect();
        cover_order.sort_by_key(|(s, _)| (std::cmp::Reverse(s.len()), s.bits()));
        FeedbackEstimator { observed, cover_order, fallback, name }
    }

    /// The greedy disjoint cover of `set` by observed sets, largest first.
    /// Returns `(covered relations, product of truth/estimate corrections)`.
    fn correction(&self, query: &QuerySpec, set: RelSet) -> (RelSet, f64) {
        let mut covered = RelSet::empty();
        let mut factor = 1.0;
        for &(sub, truth) in &self.cover_order {
            if !sub.is_subset_of(set) || !sub.is_disjoint(covered) {
                continue;
            }
            covered = covered.union(sub);
            let believed = self.fallback.estimate(query, sub).max(1.0);
            factor *= truth.max(1.0) / believed;
        }
        (covered, factor)
    }
}

impl CardinalityEstimator for FeedbackEstimator<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&self, query: &QuerySpec, set: RelSet) -> f64 {
        if let Some(truth) = self.observed.get(set) {
            return truth.max(1.0);
        }
        let base = self.fallback.estimate(query, set);
        let (covered, factor) = self.correction(query, set);
        if covered.is_empty() {
            return base.max(1.0);
        }
        (base * factor).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qob_plan::BaseRelation;
    use qob_storage::TableId;

    struct ConstEstimator(f64);

    impl CardinalityEstimator for ConstEstimator {
        fn name(&self) -> &str {
            "const"
        }
        fn estimate(&self, _q: &QuerySpec, _s: RelSet) -> f64 {
            self.0
        }
    }

    fn query3() -> QuerySpec {
        QuerySpec::new(
            "q",
            (0..3).map(|i| BaseRelation::unfiltered(TableId(i as u32), format!("r{i}"))).collect(),
            vec![],
        )
    }

    #[test]
    fn observed_sets_answer_exactly() {
        let mut observed = TrueCardinalities::with_name("observed");
        observed.insert(RelSet::from_iter([0, 1]), 400.0);
        let fallback = ConstEstimator(10.0);
        let fb = FeedbackEstimator::new(&observed, &fallback);
        let q = query3();
        assert_eq!(fb.estimate(&q, RelSet::from_iter([0, 1])), 400.0);
        assert!(fb.name().contains("const"));
    }

    #[test]
    fn supersets_are_corrected_by_the_observed_ratio() {
        let mut observed = TrueCardinalities::with_name("observed");
        // The fallback believes every set has 10 rows; {0,1} was observed at
        // 400 — a 40× underestimate that must propagate into {0,1,2}.
        observed.insert(RelSet::from_iter([0, 1]), 400.0);
        let fallback = ConstEstimator(10.0);
        let fb = FeedbackEstimator::new(&observed, &fallback);
        let q = query3();
        let sup = fb.estimate(&q, RelSet::from_iter([0, 1, 2]));
        assert!((sup - 400.0).abs() < 1e-9, "10 × (400/10) = 400, got {sup}");
        // Unrelated sets stay at the fallback.
        assert_eq!(fb.estimate(&q, RelSet::single(2)), 10.0);
    }

    #[test]
    fn greedy_cover_prefers_larger_observed_sets() {
        let mut observed = TrueCardinalities::with_name("observed");
        observed.insert(RelSet::single(0), 20.0); // 2× off
        observed.insert(RelSet::from_iter([0, 1]), 1000.0); // 100× off
        let fallback = ConstEstimator(10.0);
        let fb = FeedbackEstimator::new(&observed, &fallback);
        let q = query3();
        // {0,1} subsumes {0}: only the larger set's ratio applies.
        let sup = fb.estimate(&q, RelSet::from_iter([0, 1, 2]));
        assert!((sup - 1000.0).abs() < 1e-9, "10 × (1000/10), got {sup}");
    }

    #[test]
    fn disjoint_observations_compose_multiplicatively() {
        let mut observed = TrueCardinalities::with_name("observed");
        observed.insert(RelSet::single(0), 30.0); // 3×
        observed.insert(RelSet::single(1), 50.0); // 5×
        let fallback = ConstEstimator(10.0);
        let fb = FeedbackEstimator::new(&observed, &fallback);
        let q = query3();
        let sup = fb.estimate(&q, RelSet::from_iter([0, 1]));
        // Not directly observed: corrected by both singleton ratios.
        assert!((sup - 150.0).abs() < 1e-9, "10 × 3 × 5, got {sup}");
    }

    #[test]
    fn estimates_never_drop_below_one_row() {
        let mut observed = TrueCardinalities::with_name("observed");
        observed.insert(RelSet::single(0), 0.0);
        let fallback = ConstEstimator(0.5);
        let fb = FeedbackEstimator::new(&observed, &fallback);
        let q = query3();
        assert_eq!(fb.estimate(&q, RelSet::single(0)), 1.0);
        assert_eq!(fb.estimate(&q, RelSet::from_iter([0, 1])), 1.0);
    }
}
