//! Property tests for the structural fingerprint: fuzzing literal values
//! never changes a fingerprint (literal invariance), while any structural
//! difference — join graph, predicate forms, columns, operators — always
//! does (structure sensitivity).

use proptest::prelude::*;
use qob_cache::fingerprint_query;
use qob_plan::{BaseRelation, JoinEdge, QuerySpec};
use qob_storage::{CmpOp, ColumnId, Predicate, TableId};

/// Pools of literal payloads a generated query draws from.  Two queries
/// built from the same `shape` but different pools are "the same statement
/// with different parameters".
struct Literals {
    ints: Vec<i64>,
    strs: Vec<String>,
}

impl Literals {
    fn int(&self, i: usize) -> i64 {
        self.ints[i % self.ints.len()]
    }
    fn str(&self, i: usize) -> String {
        self.strs[i % self.strs.len()].clone()
    }
}

/// Deterministically builds a connected query whose *structure* is a pure
/// function of `shape` and whose literal payloads come from `lits`.
fn build_query(shape: &[u8], lits: &Literals) -> QuerySpec {
    let rel_count = (shape[0] as usize % 4) + 1;
    let mut lit_cursor = 0usize;
    let mut relations = Vec::with_capacity(rel_count);
    for rel in 0..rel_count {
        let table = TableId((shape[rel % shape.len()] % 6) as u32);
        let pred_count = shape[(rel + 1) % shape.len()] as usize % 3;
        let mut predicates = Vec::with_capacity(pred_count);
        for p in 0..pred_count {
            let form = shape[(rel + p + 2) % shape.len()] % 7;
            let column = ColumnId(u32::from(shape[(rel + p + 3) % shape.len()] % 4));
            let predicate = match form {
                0 => {
                    let op = match shape[(rel + p + 4) % shape.len()] % 6 {
                        0 => CmpOp::Eq,
                        1 => CmpOp::Ne,
                        2 => CmpOp::Lt,
                        3 => CmpOp::Le,
                        4 => CmpOp::Gt,
                        _ => CmpOp::Ge,
                    };
                    Predicate::IntCmp { column, op, value: lits.int(lit_cursor) }
                }
                1 => Predicate::IntBetween {
                    column,
                    low: lits.int(lit_cursor),
                    high: lits.int(lit_cursor + 1),
                },
                2 => Predicate::StrEq { column, value: lits.str(lit_cursor) },
                3 => {
                    let arity = (shape[(rel + p + 4) % shape.len()] as usize % 3) + 1;
                    Predicate::StrIn {
                        column,
                        values: (0..arity).map(|k| lits.str(lit_cursor + k)).collect(),
                    }
                }
                4 => Predicate::Like { column, pattern: lits.str(lit_cursor) },
                5 => Predicate::Not(Box::new(Predicate::StrEq {
                    column,
                    value: lits.str(lit_cursor),
                })),
                _ => Predicate::Or(vec![
                    Predicate::IntCmp { column, op: CmpOp::Eq, value: lits.int(lit_cursor) },
                    Predicate::IsNull { column },
                ]),
            };
            // Advance by the largest number of literals any form consumes so
            // the cursor stays a function of structure alone.
            lit_cursor += 3;
            predicates.push(predicate);
        }
        relations.push(BaseRelation::filtered(table, format!("r{rel}"), predicates));
    }
    // A connecting chain keeps the graph connected; extra edges come from
    // the shape bytes.
    let mut joins = Vec::new();
    for rel in 1..rel_count {
        joins.push(JoinEdge {
            left: rel - 1,
            left_column: ColumnId(u32::from(shape[rel % shape.len()] % 3)),
            right: rel,
            right_column: ColumnId(u32::from(shape[(rel + 5) % shape.len()] % 3)),
        });
    }
    if rel_count > 2 && shape[shape.len() - 1].is_multiple_of(2) {
        joins.push(JoinEdge {
            left: 0,
            left_column: ColumnId(0),
            right: rel_count - 1,
            right_column: ColumnId(1),
        });
    }
    QuerySpec::new("prop", relations, joins)
}

proptest! {
    /// Literal invariance: the same structure under two completely
    /// different sets of literal payloads fingerprints identically.
    #[test]
    fn fuzzing_literal_values_never_changes_the_fingerprint(
        shape in prop::collection::vec(any::<u8>(), 1..24),
        ints_a in prop::collection::vec(any::<i64>(), 4..8),
        ints_b in prop::collection::vec(any::<i64>(), 4..8),
        strs_a in prop::collection::vec("[a-z%_]{0,10}", 4..8),
        strs_b in prop::collection::vec("[a-z%_]{0,10}", 4..8),
    ) {
        let a = build_query(&shape, &Literals { ints: ints_a.clone(), strs: strs_a.clone() });
        let b = build_query(&shape, &Literals { ints: ints_b.clone(), strs: strs_b.clone() });
        prop_assert_eq!(fingerprint_query(&a), fingerprint_query(&b));
    }

    /// Structure sensitivity: two shapes that build *different* specs under
    /// identical literals must fingerprint differently.  (Spec equality
    /// under fixed literals is exactly structural equality, because the
    /// builder consumes literals as a function of structure.)
    #[test]
    fn different_structures_always_fingerprint_differently(
        shape_a in prop::collection::vec(any::<u8>(), 1..24),
        shape_b in prop::collection::vec(any::<u8>(), 1..24),
    ) {
        let fixed = Literals {
            ints: vec![1, 2, 3, 4],
            strs: vec!["w".into(), "x".into(), "y".into(), "z".into()],
        };
        let a = build_query(&shape_a, &fixed);
        let b = build_query(&shape_b, &fixed);
        if a == b {
            prop_assert_eq!(fingerprint_query(&a), fingerprint_query(&b));
        } else {
            prop_assert_ne!(fingerprint_query(&a), fingerprint_query(&b));
        }
    }

    /// Targeted mutation sensitivity: flipping one structural detail of a
    /// generated query (an operator, a column, an edge endpoint column, a
    /// dropped predicate) changes the fingerprint.
    #[test]
    fn structural_mutations_change_the_fingerprint(
        shape in prop::collection::vec(any::<u8>(), 4..24),
        which in any::<u8>(),
    ) {
        let fixed = Literals {
            ints: vec![10, 20, 30, 40],
            strs: vec!["a".into(), "b".into(), "c".into(), "d".into()],
        };
        let base = build_query(&shape, &fixed);
        let mut mutated = base.clone();
        match which % 4 {
            0 => {
                // Append a predicate to some relation.
                let rel = which as usize % mutated.relations.len();
                mutated.relations[rel]
                    .predicates
                    .push(Predicate::IsNotNull { column: ColumnId(9) });
            }
            1 => {
                // Retarget a relation's table.
                let rel = which as usize % mutated.relations.len();
                mutated.relations[rel].table = TableId(99);
            }
            2 => {
                // Add a relation (and an edge keeping the graph connected).
                let last = mutated.relations.len();
                mutated.relations.push(BaseRelation::unfiltered(TableId(3), "extra"));
                mutated.joins.push(JoinEdge {
                    left: last - 1,
                    left_column: ColumnId(0),
                    right: last,
                    right_column: ColumnId(0),
                });
            }
            _ => {
                // Move a join edge's column, or add an edge when there is none.
                if let Some(edge) = mutated.joins.first_mut() {
                    edge.left_column = ColumnId(7);
                } else {
                    mutated.relations.push(BaseRelation::unfiltered(TableId(1), "extra"));
                    mutated.joins.push(JoinEdge {
                        left: 0,
                        left_column: ColumnId(0),
                        right: 1,
                        right_column: ColumnId(0),
                    });
                }
            }
        }
        prop_assert_ne!(fingerprint_query(&base), fingerprint_query(&mutated));
    }
}
