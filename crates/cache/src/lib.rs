//! # qob-cache
//!
//! Prepared statements' runtime half: a **cardinality-fenced plan cache**
//! for the serve path.
//!
//! The paper's central result is that plan quality is dominated by
//! cardinality estimates — which makes naive plan reuse across parameter
//! values dangerous: a cached plan is a bet that the estimates it was built
//! under still hold.  This crate turns that observation into a reuse policy:
//!
//! 1. [`fingerprint_query`] computes a structural [`Fingerprint`] of a bound
//!    `QuerySpec` that is invariant to literal values (automatic literal
//!    parameterization) but sensitive to everything else — tables, aliases,
//!    join edges, predicate forms.
//! 2. [`PlanCache`] maps fingerprints to small variant sets of optimized
//!    plans, each [`CachedVariant`] carrying the per-subplan cardinality
//!    estimates it was optimized under.
//! 3. On each execution with new parameters the cache re-estimates the
//!    cached plan's subplan cardinalities with the session's estimator and
//!    reuses only if every estimate stays within a configurable q-error band
//!    of the cached ones — otherwise the caller re-optimizes and installs
//!    the new variant.
//!
//! ```text
//!   bound QuerySpec ──fingerprint──▶ cache probe
//!                                        │
//!                              ┌─────────┼──────────┐
//!                            miss   fence reject   hit (q-error ≤ fence)
//!                              │         │          │
//!                          optimize  re-optimize  reuse plan
//!                              │         │          │
//!                          install    install      execute
//! ```
//!
//! The cache is consumed by `qob-core`'s `Session` (transparent caching in
//! `run_query`, `prepare`/`execute_prepared`) and surfaces its
//! [`CacheCounters`] through the server's `stats` message.

#![warn(missing_docs)]

pub mod cache;
pub mod fingerprint;

pub use cache::{CacheCounters, CachedVariant, Lookup, PlanCache};
pub use fingerprint::{fingerprint_query, Fingerprint};
