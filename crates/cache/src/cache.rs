//! The cardinality-fenced plan cache.
//!
//! The cache maps a structural [`Fingerprint`] to a small **variant set** of
//! optimized physical plans.  Each [`CachedVariant`] stores, next to the plan
//! itself, the per-subplan cardinality estimates it was optimized under —
//! because a cached plan is only a good plan *for the estimates that chose
//! it* (the paper's central result: plan quality is dominated by cardinality
//! estimates).
//!
//! On lookup the caller supplies the estimates the current parameters imply
//! (via a closure over the session's estimator), and the cache applies the
//! **reuse fence**: a variant is reused only if *every* stored estimate is
//! within a q-error band of the fresh one.  A parameter shift that moves any
//! subplan's estimate past the fence forces a re-optimization, whose result
//! is installed as a new variant of the same fingerprint — so a statement
//! whose best join order genuinely depends on its parameters ends up with one
//! plan per parameter regime instead of one stale plan for all of them.
//!
//! Entries are evicted LRU by fingerprint; variants within an entry are
//! kept most-recently-used-first and capped at
//! [`PlanCache::MAX_VARIANTS`].

use std::collections::HashMap;

use qob_cardest::q_error;
use qob_plan::{PhysicalPlan, RelSet};

use crate::fingerprint::Fingerprint;

/// One cached plan plus the estimates that justified it.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedVariant {
    /// The optimized physical plan.
    pub plan: PhysicalPlan,
    /// The optimizer's cost for the plan at optimize time.
    pub cost: f64,
    /// The cardinality estimate of every subplan (each operator's output
    /// set, scans included) at optimize time — the fence's baseline.
    pub estimates: Vec<(RelSet, f64)>,
}

impl CachedVariant {
    /// Captures a variant from an optimized plan: records `estimate(set)`
    /// for every subplan set the plan produces.
    pub fn capture(plan: &PhysicalPlan, cost: f64, estimate: &dyn Fn(RelSet) -> f64) -> Self {
        let mut estimates = Vec::with_capacity(2 * plan.leaf_count());
        plan.visit(&mut |node| {
            let set = node.rels();
            estimates.push((set, estimate(set)));
        });
        CachedVariant { plan: plan.clone(), cost, estimates }
    }

    /// The worst q-error between the stored estimates and the fresh ones a
    /// new parameter binding implies — the fence's decision value.
    pub fn divergence(&self, estimate: &dyn Fn(RelSet) -> f64) -> f64 {
        let mut worst: f64 = 1.0;
        for &(set, cached) in &self.estimates {
            worst = worst.max(q_error(cached, estimate(set)));
        }
        worst
    }
}

/// What a cache probe concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// A cached variant passed the fence and can be executed as-is.
    Hit {
        /// The reusable variant (cloned out of the cache).
        variant: CachedVariant,
        /// Its worst estimate divergence (≤ the fence).
        divergence: f64,
    },
    /// The fingerprint is cached but every variant diverged past the fence:
    /// the caller must re-optimize and [`PlanCache::install`] the result.
    FenceRejected {
        /// The smallest divergence over the rejected variants (how close
        /// the best one came).
        divergence: f64,
    },
    /// The fingerprint has never been cached (or was evicted).
    Miss,
}

/// Monotonic event counters, readable at any time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that returned a reusable plan.
    pub hits: u64,
    /// Lookups for a fingerprint the cache did not hold.
    pub misses: u64,
    /// Lookups where every cached variant diverged past the fence.
    pub fence_rejections: u64,
    /// Fingerprint entries evicted by the LRU policy.
    pub evictions: u64,
    /// Variants installed (fresh optimizations added to the cache).
    pub installs: u64,
}

struct Entry {
    /// Most-recently-used first.
    variants: Vec<CachedVariant>,
    /// Intrusive recency links: the neighbouring fingerprints toward the
    /// MRU head and the LRU tail.  Touch and eviction are O(1) pointer
    /// surgery instead of an O(n) stamp scan.
    newer: Option<Fingerprint>,
    older: Option<Fingerprint>,
}

/// An LRU plan cache with a q-error reuse fence.
///
/// The cache itself is single-threaded (`&mut self`); hosts that share it
/// across sessions wrap it in a mutex (see `qob-core`).
pub struct PlanCache {
    entries: HashMap<Fingerprint, Entry>,
    capacity: usize,
    /// Most recently used fingerprint (the intrusive list's head).
    head: Option<Fingerprint>,
    /// Least recently used fingerprint (the eviction victim).
    tail: Option<Fingerprint>,
    counters: CacheCounters,
}

impl PlanCache {
    /// Variants retained per fingerprint: enough for a parameter-sensitive
    /// statement's few genuine plan regimes, small enough that probing every
    /// variant stays trivial.
    pub const MAX_VARIANTS: usize = 4;

    /// The default entry capacity of a server's shared cache.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Creates a cache holding at most `capacity` fingerprints (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            head: None,
            tail: None,
            counters: CacheCounters::default(),
        }
    }

    /// The configured fingerprint capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resizes the cache, evicting least-recently-used entries if it
    /// shrinks below the current population.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        self.evict_to_capacity();
    }

    /// Number of cached fingerprints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The event counters so far.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Drops every entry (counters are preserved — they are lifetime
    /// totals, not a population gauge).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.head = None;
        self.tail = None;
    }

    /// Detaches `key` from the recency list (its entry must exist).
    fn unlink(&mut self, key: Fingerprint) {
        let entry = self.entries.get_mut(&key).expect("unlink of resident entry");
        let (newer, older) = (entry.newer.take(), entry.older.take());
        match newer {
            Some(n) => self.entries.get_mut(&n).expect("linked neighbour").older = older,
            None => self.head = older,
        }
        match older {
            Some(o) => self.entries.get_mut(&o).expect("linked neighbour").newer = newer,
            None => self.tail = newer,
        }
    }

    /// Makes `key` the MRU head (its entry must exist and be detached).
    fn push_front(&mut self, key: Fingerprint) {
        let old_head = self.head;
        {
            let entry = self.entries.get_mut(&key).expect("push of resident entry");
            entry.newer = None;
            entry.older = old_head;
        }
        if let Some(h) = old_head {
            self.entries.get_mut(&h).expect("linked head").newer = Some(key);
        }
        self.head = Some(key);
        if self.tail.is_none() {
            self.tail = Some(key);
        }
    }

    /// O(1) recency refresh: detach and re-attach at the MRU head.
    fn touch(&mut self, key: Fingerprint) {
        if self.head == Some(key) {
            return;
        }
        self.unlink(key);
        self.push_front(key);
    }

    /// Probes the cache for `key` under the given `fence` (a q-error
    /// factor ≥ 1): re-estimates each cached variant's subplan
    /// cardinalities through `estimate` and returns the first variant
    /// whose worst divergence stays within the fence.
    pub fn lookup(
        &mut self,
        key: Fingerprint,
        fence: f64,
        estimate: &dyn Fn(RelSet) -> f64,
    ) -> Lookup {
        let Some(entry) = self.entries.get_mut(&key) else {
            self.counters.misses += 1;
            return Lookup::Miss;
        };
        let mut best = f64::INFINITY;
        let mut winner = None;
        for i in 0..entry.variants.len() {
            let divergence = entry.variants[i].divergence(estimate);
            if divergence <= fence {
                winner = Some((i, divergence));
                break;
            }
            best = best.min(divergence);
        }
        let Some((i, divergence)) = winner else {
            // A fence rejection deliberately does *not* refresh recency:
            // the entry was probed but not useful under these parameters.
            self.counters.fence_rejections += 1;
            return Lookup::FenceRejected { divergence: best };
        };
        // Move the winning variant to the front: parameter regimes cluster
        // in time, so the next lookup probes it first.
        let variant = entry.variants.remove(i);
        entry.variants.insert(0, variant);
        let variant = entry.variants[0].clone();
        self.counters.hits += 1;
        self.touch(key);
        Lookup::Hit { variant, divergence }
    }

    /// Installs a freshly optimized variant for `key`.
    ///
    /// If an identical plan is already cached under the key, its estimates
    /// and cost are refreshed in place (the new parameters' estimates
    /// become the fence baseline); otherwise the variant is added at the
    /// front of the set, dropping the least-recently-used variant past
    /// [`PlanCache::MAX_VARIANTS`].
    pub fn install(&mut self, key: Fingerprint, variant: CachedVariant) {
        self.counters.installs += 1;
        let is_new = !self.entries.contains_key(&key);
        let entry = self.entries.entry(key).or_insert_with(|| Entry {
            variants: Vec::new(),
            newer: None,
            older: None,
        });
        if let Some(i) = entry.variants.iter().position(|v| v.plan == variant.plan) {
            entry.variants.remove(i);
        }
        entry.variants.insert(0, variant);
        entry.variants.truncate(Self::MAX_VARIANTS);
        if is_new {
            self.push_front(key);
        } else {
            self.touch(key);
        }
        self.evict_to_capacity();
    }

    fn evict_to_capacity(&mut self) {
        // O(1) per eviction: the victim is always the recency list's tail.
        while self.entries.len() > self.capacity {
            let Some(victim) = self.tail else { return };
            self.unlink(victim);
            self.entries.remove(&victim);
            self.counters.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qob_plan::{JoinAlgorithm, JoinKey};
    use qob_storage::ColumnId;

    fn key(n: u64) -> Fingerprint {
        Fingerprint(n, n.wrapping_mul(31))
    }

    fn plan(order: &[usize]) -> PhysicalPlan {
        let mut iter = order.iter();
        let mut p = PhysicalPlan::scan(*iter.next().expect("non-empty"));
        for &rel in iter {
            let prev = p.rels().iter().next().expect("non-empty");
            p = PhysicalPlan::join(
                JoinAlgorithm::Hash,
                p,
                PhysicalPlan::scan(rel),
                vec![JoinKey {
                    left_rel: prev,
                    left_column: ColumnId(0),
                    right_rel: rel,
                    right_column: ColumnId(0),
                }],
            );
        }
        p
    }

    /// An estimate function assigning `base * 10^|set|` rows.
    fn flat(base: f64) -> impl Fn(RelSet) -> f64 {
        move |set: RelSet| base * 10f64.powi(set.len() as i32)
    }

    #[test]
    fn capture_records_every_subplan() {
        let p = plan(&[0, 1, 2]);
        let v = CachedVariant::capture(&p, 42.0, &flat(1.0));
        // 3 scans + 2 joins.
        assert_eq!(v.estimates.len(), 5);
        assert!(v.estimates.iter().any(|(s, e)| s.len() == 3 && *e == 1000.0));
        assert_eq!(v.divergence(&flat(1.0)), 1.0, "same estimates → no divergence");
        assert_eq!(v.divergence(&flat(3.0)), 3.0, "uniform 3x shift → q-error 3");
    }

    #[test]
    fn miss_then_install_then_hit() {
        let mut cache = PlanCache::new(8);
        let est = flat(1.0);
        assert_eq!(cache.lookup(key(1), 2.0, &est), Lookup::Miss);
        let v = CachedVariant::capture(&plan(&[0, 1]), 10.0, &est);
        cache.install(key(1), v.clone());
        match cache.lookup(key(1), 2.0, &est) {
            Lookup::Hit { variant, divergence } => {
                assert_eq!(variant.plan, v.plan);
                assert_eq!(divergence, 1.0);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.installs), (1, 1, 1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn fence_rejects_diverged_estimates_and_new_variant_joins_the_set() {
        let mut cache = PlanCache::new(8);
        cache.install(key(1), CachedVariant::capture(&plan(&[0, 1]), 10.0, &flat(1.0)));
        // Fresh estimates 5x off: fence 2 rejects, fence 5 reuses.
        match cache.lookup(key(1), 2.0, &flat(5.0)) {
            Lookup::FenceRejected { divergence } => assert_eq!(divergence, 5.0),
            other => panic!("expected fence rejection, got {other:?}"),
        }
        assert_eq!(cache.counters().fence_rejections, 1);
        assert!(matches!(cache.lookup(key(1), 5.0, &flat(5.0)), Lookup::Hit { .. }));

        // Install the re-optimized plan for the new regime: both variants
        // now live under one fingerprint and each serves its own regime.
        cache.install(key(1), CachedVariant::capture(&plan(&[1, 0]), 12.0, &flat(5.0)));
        let hit_new = cache.lookup(key(1), 2.0, &flat(5.0));
        let Lookup::Hit { variant, .. } = hit_new else { panic!("got {hit_new:?}") };
        assert_eq!(variant.plan, plan(&[1, 0]));
        let hit_old = cache.lookup(key(1), 2.0, &flat(1.0));
        let Lookup::Hit { variant, .. } = hit_old else { panic!("got {hit_old:?}") };
        assert_eq!(variant.plan, plan(&[0, 1]));
    }

    #[test]
    fn reinstalling_the_same_plan_refreshes_its_baseline() {
        let mut cache = PlanCache::new(8);
        cache.install(key(1), CachedVariant::capture(&plan(&[0, 1]), 10.0, &flat(1.0)));
        cache.install(key(1), CachedVariant::capture(&plan(&[0, 1]), 11.0, &flat(4.0)));
        // One variant, with the *new* estimates as its fence baseline.
        match cache.lookup(key(1), 1.5, &flat(4.0)) {
            Lookup::Hit { variant, divergence } => {
                assert_eq!(divergence, 1.0);
                assert_eq!(variant.cost, 11.0);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(cache.lookup(key(1), 1.5, &flat(1.0)), Lookup::FenceRejected { .. }));
    }

    #[test]
    fn variant_sets_are_capped_mru_first() {
        let mut cache = PlanCache::new(8);
        for i in 0..PlanCache::MAX_VARIANTS + 2 {
            let order: Vec<usize> = (0..=i + 1).collect();
            cache.install(key(1), CachedVariant::capture(&plan(&order), i as f64, &flat(1.0)));
        }
        // The oldest variants fell off; the newest survives at the front.
        let Lookup::Hit { variant, .. } = cache.lookup(key(1), 10.0, &flat(1.0)) else {
            panic!("expected hit")
        };
        assert_eq!(variant.plan.leaf_count(), PlanCache::MAX_VARIANTS + 3);
    }

    #[test]
    fn lru_eviction_by_fingerprint() {
        let mut cache = PlanCache::new(2);
        let est = flat(1.0);
        cache.install(key(1), CachedVariant::capture(&plan(&[0, 1]), 1.0, &est));
        cache.install(key(2), CachedVariant::capture(&plan(&[0, 1]), 2.0, &est));
        // Touch 1 so 2 becomes the LRU.
        assert!(matches!(cache.lookup(key(1), 2.0, &est), Lookup::Hit { .. }));
        cache.install(key(3), CachedVariant::capture(&plan(&[0, 1]), 3.0, &est));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.counters().evictions, 1);
        assert!(matches!(cache.lookup(key(2), 2.0, &est), Lookup::Miss), "2 was evicted");
        assert!(matches!(cache.lookup(key(1), 2.0, &est), Lookup::Hit { .. }));
        assert!(matches!(cache.lookup(key(3), 2.0, &est), Lookup::Hit { .. }));
    }

    /// Differential check of the intrusive recency list: a long churn of
    /// installs, hits and fence rejections must keep the cache's population
    /// and eviction count identical to a naive recency-vector model with the
    /// historical touch rules (hit → touch, install → touch, fence
    /// rejection / miss → no touch).
    #[test]
    fn intrusive_lru_matches_naive_recency_model_under_churn() {
        const CAPACITY: usize = 4;
        let mut cache = PlanCache::new(CAPACITY);
        // Naive model: most-recent-first vector of resident fingerprints.
        let mut model: Vec<u64> = Vec::new();
        let mut model_evictions = 0u64;
        let touch_model = |model: &mut Vec<u64>, k: u64| {
            model.retain(|&x| x != k);
            model.insert(0, k);
        };
        let est = flat(1.0);
        let mut x: u64 = 12345;
        for step in 0..2000 {
            // Deterministic pseudo-random op stream (xorshift).
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x >> 8) % 9;
            if x.is_multiple_of(3) {
                cache.install(key(k), CachedVariant::capture(&plan(&[0, 1]), k as f64, &est));
                touch_model(&mut model, k);
                while model.len() > CAPACITY {
                    model.pop();
                    model_evictions += 1;
                }
            } else {
                // Fence 2.0 always admits the flat(1.0) baseline, so resident
                // keys hit (touch) and absent keys miss (no touch).
                match cache.lookup(key(k), 2.0, &est) {
                    Lookup::Hit { .. } => {
                        assert!(model.contains(&k), "step {step}: hit for non-resident {k}");
                        touch_model(&mut model, k);
                    }
                    Lookup::Miss => {
                        assert!(!model.contains(&k), "step {step}: miss for resident {k}");
                    }
                    Lookup::FenceRejected { .. } => unreachable!("flat estimates never diverge"),
                }
            }
            assert_eq!(cache.len(), model.len(), "population diverged at step {step}");
            assert_eq!(cache.counters().evictions, model_evictions, "evictions at step {step}");
            // Every resident model key must still hit; eviction order is
            // checked implicitly by population equality on every step.
            for &r in &model {
                assert!(cache.entries.contains_key(&key(r)), "step {step}: {r} missing");
            }
        }
        assert!(model_evictions > 100, "churn actually evicted ({model_evictions})");
    }

    #[test]
    fn capacity_shrink_evicts_and_clear_preserves_counters() {
        let mut cache = PlanCache::new(4);
        let est = flat(1.0);
        for i in 0..4 {
            cache.install(key(i), CachedVariant::capture(&plan(&[0, 1]), i as f64, &est));
        }
        cache.set_capacity(1);
        assert_eq!(cache.capacity(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.counters().evictions, 3);
        // The survivor is the most recently installed.
        assert!(matches!(cache.lookup(key(3), 2.0, &est), Lookup::Hit { .. }));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.counters().installs, 4, "counters survive clear");
        assert_eq!(PlanCache::new(0).capacity(), 1, "capacity clamps to 1");
    }
}
