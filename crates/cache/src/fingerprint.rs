//! Structural query fingerprints — automatic literal parameterization.
//!
//! A [`Fingerprint`] identifies the *shape* of a bound [`QuerySpec`]: which
//! tables are joined under which aliases, which join edges connect them, and
//! which predicate forms restrict each relation — but **not** the literal
//! values those predicates compare against.  Two executions of the same
//! parameterized statement with different parameter values therefore hash to
//! the same fingerprint, which is what lets the plan cache recognise a
//! repeated query without any textual parameter syntax: the bound spec itself
//! is parameterized automatically.
//!
//! The fingerprint is deliberately *structure-sensitive*: a different table,
//! alias order, join edge, predicate kind, column, comparison operator,
//! `IN`-list arity or boolean nesting all produce a different fingerprint.
//! Only the payload of a literal (the `i64` or the string bytes) is excluded.
//!
//! Hashing is 128 bits (two independent FNV-1a 64 lanes over a tagged
//! pre-order encoding), so accidental collisions are not a practical concern
//! for cache-sized populations.

use qob_plan::QuerySpec;
use qob_storage::{CmpOp, Predicate};

/// A 128-bit structural hash of a bound query, invariant to literal values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64, pub u64);

impl Fingerprint {
    /// Folds extra context (e.g. the estimator profile a plan was optimized
    /// with) into the fingerprint, producing a derived cache key.
    pub fn mix(self, salt: u64) -> Fingerprint {
        let mut h = Hasher { a: self.0, b: self.1 };
        h.u64(salt);
        Fingerprint(h.a, h.b)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

/// Two independent FNV-1a 64 lanes fed the same byte stream.
struct Hasher {
    a: u64,
    b: u64,
}

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
// A second lane with a different, odd offset basis: the streams stay
// decorrelated because the avalanche paths start from different states.
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142 ^ 0x9e37_79b9_7f4a_7c15;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Hasher {
    fn new() -> Self {
        Hasher { a: FNV_OFFSET_A, b: FNV_OFFSET_B }
    }

    fn byte(&mut self, byte: u8) {
        self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.byte(byte);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// A length-prefixed string, so `("ab","c")` and `("a","bc")` differ.
    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    /// A structural tag separating node kinds in the pre-order encoding.
    fn tag(&mut self, t: u8) {
        self.byte(t);
    }
}

fn cmp_op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

/// Hashes one predicate's structure: kind, column, operator and arity — every
/// literal *value* (`i64` payloads, string bytes) is skipped.
fn hash_predicate(h: &mut Hasher, predicate: &Predicate) {
    match predicate {
        Predicate::IntCmp { column, op, value: _ } => {
            h.tag(1);
            h.usize(column.index());
            h.tag(cmp_op_tag(*op));
        }
        Predicate::IntBetween { column, low: _, high: _ } => {
            h.tag(2);
            h.usize(column.index());
        }
        Predicate::StrEq { column, value: _ } => {
            h.tag(3);
            h.usize(column.index());
        }
        Predicate::StrIn { column, values } => {
            h.tag(4);
            h.usize(column.index());
            // Arity is structure: `IN (a)` and `IN (a, b)` estimate (and can
            // plan) differently even before the values are known.
            h.usize(values.len());
        }
        Predicate::Like { column, pattern: _ } => {
            h.tag(5);
            h.usize(column.index());
        }
        Predicate::IsNull { column } => {
            h.tag(6);
            h.usize(column.index());
        }
        Predicate::IsNotNull { column } => {
            h.tag(7);
            h.usize(column.index());
        }
        Predicate::And(parts) => {
            h.tag(8);
            h.usize(parts.len());
            for p in parts {
                hash_predicate(h, p);
            }
        }
        Predicate::Or(parts) => {
            h.tag(9);
            h.usize(parts.len());
            for p in parts {
                hash_predicate(h, p);
            }
        }
        Predicate::Not(inner) => {
            h.tag(10);
            hash_predicate(h, inner);
        }
    }
}

/// Computes the structural fingerprint of a bound query.
///
/// The query *name* is excluded (the same statement loaded under different
/// `-- name:` annotations is still the same statement); everything else that
/// shapes planning — relations, aliases, join edges, predicate structure —
/// is included.
pub fn fingerprint_query(query: &QuerySpec) -> Fingerprint {
    let mut h = Hasher::new();
    h.usize(query.relations.len());
    for rel in &query.relations {
        h.tag(b'R');
        h.u64(u64::from(rel.table.0));
        // Aliases participate: they are how the text identifies range
        // variables, and including them keeps the fingerprint aligned with
        // the statement a client actually repeats.
        h.str(&rel.alias);
        h.usize(rel.predicates.len());
        for predicate in &rel.predicates {
            hash_predicate(&mut h, predicate);
        }
    }
    h.usize(query.joins.len());
    for edge in &query.joins {
        h.tag(b'J');
        h.usize(edge.left);
        h.usize(edge.left_column.index());
        h.usize(edge.right);
        h.usize(edge.right_column.index());
    }
    Fingerprint(h.a, h.b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qob_plan::{BaseRelation, JoinEdge};
    use qob_storage::{ColumnId, TableId};

    fn base_query() -> QuerySpec {
        QuerySpec::new(
            "q",
            vec![
                BaseRelation::filtered(
                    TableId(0),
                    "t",
                    vec![Predicate::IntCmp { column: ColumnId(1), op: CmpOp::Gt, value: 2000 }],
                ),
                BaseRelation::filtered(
                    TableId(1),
                    "mc",
                    vec![Predicate::StrEq { column: ColumnId(2), value: "[us]".into() }],
                ),
            ],
            vec![JoinEdge {
                left: 1,
                left_column: ColumnId(1),
                right: 0,
                right_column: ColumnId(0),
            }],
        )
    }

    #[test]
    fn literal_values_do_not_change_the_fingerprint() {
        let a = base_query();
        let mut b = base_query();
        b.relations[0].predicates[0] =
            Predicate::IntCmp { column: ColumnId(1), op: CmpOp::Gt, value: 1950 };
        b.relations[1].predicates[0] =
            Predicate::StrEq { column: ColumnId(2), value: "[gb]".into() };
        assert_eq!(fingerprint_query(&a), fingerprint_query(&b));
    }

    #[test]
    fn the_name_does_not_change_the_fingerprint() {
        let a = base_query();
        let mut b = base_query();
        b.name = "other".into();
        assert_eq!(fingerprint_query(&a), fingerprint_query(&b));
    }

    #[test]
    fn structure_changes_the_fingerprint() {
        let base = fingerprint_query(&base_query());

        let mut op = base_query();
        op.relations[0].predicates[0] =
            Predicate::IntCmp { column: ColumnId(1), op: CmpOp::Lt, value: 2000 };
        assert_ne!(fingerprint_query(&op), base, "comparison operator is structure");

        let mut col = base_query();
        col.relations[0].predicates[0] =
            Predicate::IntCmp { column: ColumnId(0), op: CmpOp::Gt, value: 2000 };
        assert_ne!(fingerprint_query(&col), base, "predicate column is structure");

        let mut table = base_query();
        table.relations[0].table = TableId(7);
        assert_ne!(fingerprint_query(&table), base, "base table is structure");

        let mut alias = base_query();
        alias.relations[0].alias = "t2".into();
        assert_ne!(fingerprint_query(&alias), base, "alias is structure");

        let mut edge = base_query();
        edge.joins[0].left_column = ColumnId(2);
        assert_ne!(fingerprint_query(&edge), base, "join column is structure");

        let mut dropped = base_query();
        dropped.relations[1].predicates.clear();
        assert_ne!(fingerprint_query(&dropped), base, "predicate presence is structure");

        let mut arity = base_query();
        arity.relations[1].predicates[0] =
            Predicate::StrIn { column: ColumnId(2), values: vec!["[us]".into(), "[gb]".into()] };
        assert_ne!(fingerprint_query(&arity), base, "IN replaces equality");
    }

    #[test]
    fn in_list_arity_is_structure_but_its_values_are_not() {
        let mk = |values: Vec<&str>| {
            let mut q = base_query();
            q.relations[1].predicates[0] = Predicate::StrIn {
                column: ColumnId(2),
                values: values.into_iter().map(String::from).collect(),
            };
            fingerprint_query(&q)
        };
        assert_eq!(mk(vec!["a", "b"]), mk(vec!["x", "y"]));
        assert_ne!(mk(vec!["a", "b"]), mk(vec!["a", "b", "c"]));
    }

    #[test]
    fn nested_groups_hash_their_shape() {
        let grouped = |pred: Predicate| {
            let mut q = base_query();
            q.relations[0].predicates = vec![pred];
            fingerprint_query(&q)
        };
        let flat_and = grouped(Predicate::And(vec![
            Predicate::IsNotNull { column: ColumnId(1) },
            Predicate::IsNull { column: ColumnId(0) },
        ]));
        let flat_or = grouped(Predicate::Or(vec![
            Predicate::IsNotNull { column: ColumnId(1) },
            Predicate::IsNull { column: ColumnId(0) },
        ]));
        let negated = grouped(Predicate::Not(Box::new(Predicate::IsNull { column: ColumnId(0) })));
        assert_ne!(flat_and, flat_or);
        assert_ne!(flat_and, negated);
        assert_ne!(flat_or, negated);
    }

    #[test]
    fn mix_derives_distinct_keys() {
        let fp = fingerprint_query(&base_query());
        assert_ne!(fp.mix(0), fp.mix(1));
        assert_ne!(fp.mix(0), fp);
        assert_eq!(fp.mix(3), fp.mix(3));
        assert!(!fp.to_string().is_empty());
    }
}
