//! The database catalog: tables, key declarations and index configurations.
//!
//! The paper studies three *physical designs*: no indexes, primary-key
//! indexes only, and primary- plus foreign-key indexes.  [`IndexConfig`]
//! selects one of these and [`Database::build_indexes`] materialises the
//! corresponding access paths.

use std::collections::HashMap;

use crate::error::StorageError;
use crate::index::{HashIndex, IndexKind, OrderedIndex};
use crate::table::{ColumnId, Table};
use crate::Result;

/// Identifier of a table within a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl TableId {
    /// The table position as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Which indexes to build — the three physical designs studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IndexConfig {
    /// No indexes at all (Figure 9, "no indexes").
    NoIndexes,
    /// Indexes on primary keys only (most experiments of Section 4.1/4.2).
    #[default]
    PrimaryKeyOnly,
    /// Indexes on primary keys and all foreign keys (Section 4.3 onwards).
    PrimaryAndForeignKey,
}

impl IndexConfig {
    /// Short label used when printing experiment results.
    pub fn label(&self) -> &'static str {
        match self {
            IndexConfig::NoIndexes => "no indexes",
            IndexConfig::PrimaryKeyOnly => "PK indexes",
            IndexConfig::PrimaryAndForeignKey => "PK + FK indexes",
        }
    }

    /// All configurations, in the order the paper reports them.
    pub fn all() -> [IndexConfig; 3] {
        [IndexConfig::NoIndexes, IndexConfig::PrimaryKeyOnly, IndexConfig::PrimaryAndForeignKey]
    }
}

/// A declared foreign-key relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForeignKeyDef {
    /// The referencing column (in the declaring table).
    pub column: ColumnId,
    /// The referenced table (whose primary key the column points to).
    pub references: TableId,
}

/// Key metadata for one table.
#[derive(Debug, Clone, Default)]
pub struct KeyInfo {
    /// The primary key column, if declared.
    pub primary_key: Option<ColumnId>,
    /// Declared foreign keys.
    pub foreign_keys: Vec<ForeignKeyDef>,
}

/// An in-memory database: a set of tables, key declarations, and the indexes
/// of the currently selected physical design.
#[derive(Debug, Default)]
pub struct Database {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    keys: Vec<KeyInfo>,
    index_config: IndexConfig,
    hash_indexes: HashMap<(TableId, ColumnId), HashIndex>,
    ordered_indexes: HashMap<(TableId, ColumnId), OrderedIndex>,
}

impl Database {
    /// Creates an empty database with the default (primary-key-only) index
    /// configuration; no indexes exist until [`Database::build_indexes`] runs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table. Fails if a table with the same name exists.
    pub fn add_table(&mut self, table: Table) -> Result<TableId> {
        if self.by_name.contains_key(table.name()) {
            return Err(StorageError::DuplicateTable(table.name().to_owned()));
        }
        let id = TableId(self.tables.len() as u32);
        self.by_name.insert(table.name().to_owned(), id);
        self.tables.push(table);
        self.keys.push(KeyInfo::default());
        Ok(id)
    }

    /// Declares the primary key column of a table.
    pub fn declare_primary_key(&mut self, table: TableId, column: &str) -> Result<()> {
        let col = self.table(table).column_id_or_err(column)?;
        self.keys[table.index()].primary_key = Some(col);
        Ok(())
    }

    /// Declares a foreign-key relationship `table.column -> references`.
    pub fn declare_foreign_key(
        &mut self,
        table: TableId,
        column: &str,
        references: TableId,
    ) -> Result<()> {
        let col = self.table(table).column_id_or_err(column)?;
        self.keys[table.index()].foreign_keys.push(ForeignKeyDef { column: col, references });
        Ok(())
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.row_count()).sum()
    }

    /// Looks up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a table id by name, with a descriptive error.
    pub fn table_id_or_err(&self, name: &str) -> Result<TableId> {
        self.table_id(name).ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// The table with the given id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// The table with the given name, if present.
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.table_id(name).map(|id| self.table(id))
    }

    /// Iterates over `(id, table)` pairs.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables.iter().enumerate().map(|(i, t)| (TableId(i as u32), t))
    }

    /// Key metadata of a table.
    pub fn keys(&self, id: TableId) -> &KeyInfo {
        &self.keys[id.index()]
    }

    /// The currently built index configuration.
    pub fn index_config(&self) -> IndexConfig {
        self.index_config
    }

    /// (Re)builds all indexes for the given physical design, replacing any
    /// previously built indexes.
    pub fn build_indexes(&mut self, config: IndexConfig) -> Result<()> {
        self.hash_indexes.clear();
        self.ordered_indexes.clear();
        self.index_config = config;
        if config == IndexConfig::NoIndexes {
            return Ok(());
        }
        for (idx, key_info) in self.keys.iter().enumerate() {
            let tid = TableId(idx as u32);
            let table = &self.tables[idx];
            if let Some(pk) = key_info.primary_key {
                let h = HashIndex::build(table, pk, IndexKind::PrimaryKey)?;
                let o = OrderedIndex::build(table, pk)?;
                self.hash_indexes.insert((tid, pk), h);
                self.ordered_indexes.insert((tid, pk), o);
            }
            if config == IndexConfig::PrimaryAndForeignKey {
                for fk in &key_info.foreign_keys {
                    if self.hash_indexes.contains_key(&(tid, fk.column)) {
                        continue;
                    }
                    let h = HashIndex::build(table, fk.column, IndexKind::ForeignKey)?;
                    let o = OrderedIndex::build(table, fk.column)?;
                    self.hash_indexes.insert((tid, fk.column), h);
                    self.ordered_indexes.insert((tid, fk.column), o);
                }
            }
        }
        Ok(())
    }

    /// The hash index on `(table, column)` under the current physical design.
    pub fn hash_index(&self, table: TableId, column: ColumnId) -> Option<&HashIndex> {
        self.hash_indexes.get(&(table, column))
    }

    /// The ordered index on `(table, column)` under the current physical design.
    pub fn ordered_index(&self, table: TableId, column: ColumnId) -> Option<&OrderedIndex> {
        self.ordered_indexes.get(&(table, column))
    }

    /// True if an (equality) index exists on `(table, column)`.
    pub fn has_index(&self, table: TableId, column: ColumnId) -> bool {
        self.hash_indexes.contains_key(&(table, column))
    }

    /// Number of materialised indexes.
    pub fn index_count(&self) -> usize {
        self.hash_indexes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnMeta, TableBuilder};
    use crate::value::{DataType, Value};

    fn small_db() -> Database {
        let mut db = Database::new();

        let mut title = TableBuilder::new(
            "title",
            vec![ColumnMeta::new("id", DataType::Int), ColumnMeta::new("title", DataType::Str)],
        );
        for i in 0..10 {
            title.push_row(vec![Value::Int(i), Value::Str(format!("movie {i}"))]).unwrap();
        }
        let title_id = db.add_table(title.finish()).unwrap();

        let mut mc = TableBuilder::new(
            "movie_companies",
            vec![ColumnMeta::new("id", DataType::Int), ColumnMeta::new("movie_id", DataType::Int)],
        );
        for i in 0..30 {
            mc.push_row(vec![Value::Int(i), Value::Int(i % 10)]).unwrap();
        }
        let mc_id = db.add_table(mc.finish()).unwrap();

        db.declare_primary_key(title_id, "id").unwrap();
        db.declare_primary_key(mc_id, "id").unwrap();
        db.declare_foreign_key(mc_id, "movie_id", title_id).unwrap();
        db
    }

    #[test]
    fn add_and_lookup_tables() {
        let db = small_db();
        assert_eq!(db.table_count(), 2);
        assert_eq!(db.total_rows(), 40);
        let tid = db.table_id("title").unwrap();
        assert_eq!(db.table(tid).name(), "title");
        assert!(db.table_id("missing").is_none());
        assert!(db.table_id_or_err("missing").is_err());
        assert!(db.table_by_name("movie_companies").is_some());
        let names: Vec<&str> = db.tables().map(|(_, t)| t.name()).collect();
        assert_eq!(names, vec!["title", "movie_companies"]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = small_db();
        let dup = TableBuilder::new("title", vec![ColumnMeta::new("id", DataType::Int)]).finish();
        assert!(matches!(db.add_table(dup), Err(StorageError::DuplicateTable(_))));
    }

    #[test]
    fn key_declarations() {
        let db = small_db();
        let mc = db.table_id("movie_companies").unwrap();
        let title = db.table_id("title").unwrap();
        let keys = db.keys(mc);
        assert!(keys.primary_key.is_some());
        assert_eq!(keys.foreign_keys.len(), 1);
        assert_eq!(keys.foreign_keys[0].references, title);
    }

    #[test]
    fn index_configurations() {
        let mut db = small_db();

        db.build_indexes(IndexConfig::NoIndexes).unwrap();
        assert_eq!(db.index_count(), 0);
        assert_eq!(db.index_config(), IndexConfig::NoIndexes);

        db.build_indexes(IndexConfig::PrimaryKeyOnly).unwrap();
        assert_eq!(db.index_count(), 2, "one PK index per table");
        let mc = db.table_id("movie_companies").unwrap();
        let mc_movie_id = db.table(mc).column_id("movie_id").unwrap();
        assert!(!db.has_index(mc, mc_movie_id), "FK column not indexed under PK-only");

        db.build_indexes(IndexConfig::PrimaryAndForeignKey).unwrap();
        assert_eq!(db.index_count(), 3);
        assert!(db.has_index(mc, mc_movie_id));
        let idx = db.hash_index(mc, mc_movie_id).unwrap();
        assert_eq!(idx.lookup(3).len(), 3);
        assert!(db.ordered_index(mc, mc_movie_id).is_some());
    }

    #[test]
    fn rebuilding_indexes_replaces_old_ones() {
        let mut db = small_db();
        db.build_indexes(IndexConfig::PrimaryAndForeignKey).unwrap();
        assert_eq!(db.index_count(), 3);
        db.build_indexes(IndexConfig::PrimaryKeyOnly).unwrap();
        assert_eq!(db.index_count(), 2);
        db.build_indexes(IndexConfig::NoIndexes).unwrap();
        assert_eq!(db.index_count(), 0);
    }

    #[test]
    fn index_config_labels_and_all() {
        assert_eq!(IndexConfig::all().len(), 3);
        assert_eq!(IndexConfig::NoIndexes.label(), "no indexes");
        assert_eq!(IndexConfig::PrimaryKeyOnly.label(), "PK indexes");
        assert_eq!(IndexConfig::PrimaryAndForeignKey.label(), "PK + FK indexes");
        assert_eq!(IndexConfig::default(), IndexConfig::PrimaryKeyOnly);
    }
}
