//! Streaming CSV/TSV ingestion into encoded columnar tables.
//!
//! This is the path that loads the real IMDB export (21 tables, millions of
//! rows) — so it is built to never hold a full table in raw form:
//!
//! 1. records are read **streaming** with a quote-state-aware splitter
//!    (quoted fields may contain embedded newlines, `""` and `\"` escaped
//!    quotes, and `\\` escaped backslashes, matching the IMDB CSV export);
//! 2. each batch of records is **field-parsed in parallel** across worker
//!    threads;
//! 3. rows are appended in order through [`TableBuilder`], which encodes a
//!    page and drops its raw buffer every [`crate::encoding::PAGE_ROWS`]
//!    rows and interns dictionary strings incrementally (O(1) amortized).
//!
//! An **empty unquoted field is NULL** (for both int and string columns);
//! a quoted empty field (`""`) is the empty string.  Integer fields are
//! parsed after trimming ASCII whitespace.
//!
//! [`export_csv_dir`] writes the inverse format, so a generated database can
//! round-trip through CSV — the basis of the ingest smoke tests.

use std::io::{BufRead, Write};
use std::path::Path;

use crate::catalog::Database;
use crate::encoding::EncodingPolicy;
use crate::error::StorageError;
use crate::table::{ColumnMeta, Table, TableBuilder};
use crate::value::{DataType, Value};
use crate::Result;

/// Records parsed per batch before the parallel field-parse runs.  Bounds
/// ingestion memory to one batch of raw records plus one pending page per
/// column.
const BATCH_RECORDS: usize = 8192;

/// The schema a CSV file is ingested under: the target table name and its
/// columns in file order.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Target table name; the file is expected at `<name>.csv` or
    /// `<name>.tsv` under the data directory.
    pub name: String,
    /// Columns in the order the file stores them.
    pub columns: Vec<ColumnMeta>,
}

impl TableSchema {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnMeta>) -> Self {
        TableSchema { name: name.into(), columns }
    }
}

/// Per-table ingestion outcome, sized for `BENCH_ingest.json`.
#[derive(Debug, Clone)]
pub struct IngestTableReport {
    /// Table name.
    pub table: String,
    /// Rows ingested.
    pub rows: usize,
    /// Encoded bytes of the column pages.
    pub encoded_bytes: usize,
    /// Bytes the same rows would occupy un-encoded.
    pub plain_bytes: usize,
    /// Approximate dictionary heap bytes.
    pub dict_bytes: usize,
}

/// Whole-ingestion outcome.
#[derive(Debug, Clone, Default)]
pub struct IngestReport {
    /// One entry per ingested table.
    pub tables: Vec<IngestTableReport>,
}

impl IngestReport {
    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows).sum()
    }

    /// Total encoded page bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.tables.iter().map(|t| t.encoded_bytes).sum()
    }

    /// Total plain-equivalent bytes.
    pub fn plain_bytes(&self) -> usize {
        self.tables.iter().map(|t| t.plain_bytes).sum()
    }
}

// ---------------------------------------------------------------------------
// Record reading and field splitting
// ---------------------------------------------------------------------------

/// True if `s` ends outside of any quoted region.  `\` escapes the next
/// character (so `\"` never toggles); `""` toggles twice and nets out.
fn quotes_balanced(s: &str) -> bool {
    let mut in_q = false;
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                chars.next();
            }
            '"' => in_q = !in_q,
            _ => {}
        }
    }
    !in_q
}

/// Reads one logical record into `buf` (which is cleared first), joining
/// physical lines while a quoted field spans a newline.  Returns `false` at
/// end of input.
fn read_record(reader: &mut impl BufRead, buf: &mut String) -> std::io::Result<bool> {
    buf.clear();
    loop {
        let before = buf.len();
        let n = reader.read_line(buf)?;
        if n == 0 {
            // EOF: a dangling unterminated quoted field still yields the
            // partial record read so far (the parser surfaces it as data).
            return Ok(!buf.is_empty());
        }
        // Strip the line terminator we just read.
        if buf.ends_with('\n') {
            buf.pop();
            if buf.ends_with('\r') {
                buf.pop();
            }
        }
        if quotes_balanced(buf) {
            return Ok(true);
        }
        // The newline was inside a quoted field: restore it and keep going.
        let _ = before;
        buf.push('\n');
    }
}

fn finish_field(s: String, quoted: bool) -> Option<String> {
    // Empty unquoted field = NULL; `""` = empty string.
    if !quoted && s.is_empty() {
        None
    } else {
        Some(s)
    }
}

/// Splits one record into fields; `None` is NULL.
fn split_record(record: &str, delim: char) -> Vec<Option<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut was_quoted = false;
    let mut in_q = false;
    let mut it = record.chars().peekable();
    loop {
        match it.next() {
            None => {
                fields.push(finish_field(cur, was_quoted));
                return fields;
            }
            Some(c) if !in_q => {
                if c == delim {
                    fields.push(finish_field(std::mem::take(&mut cur), was_quoted));
                    was_quoted = false;
                } else if c == '"' && cur.is_empty() && !was_quoted {
                    in_q = true;
                    was_quoted = true;
                } else {
                    cur.push(c);
                }
            }
            Some('"') => {
                // `""` is an escaped quote; a lone `"` closes the field.
                if it.peek() == Some(&'"') {
                    it.next();
                    cur.push('"');
                } else {
                    in_q = false;
                }
            }
            Some('\\') => {
                // Backslash escapes the next character literally (`\"`, `\\`).
                cur.push(it.next().unwrap_or('\\'));
            }
            Some(c) => cur.push(c),
        }
    }
}

/// Parses one record's fields into typed values for `columns`.
fn parse_record(
    record: &str,
    delim: char,
    table: &str,
    line: usize,
    columns: &[ColumnMeta],
) -> Result<Vec<Value>> {
    let fields = split_record(record, delim);
    if fields.len() != columns.len() {
        return Err(StorageError::Invariant(format!(
            "`{table}` record {line}: {} fields, schema has {} columns",
            fields.len(),
            columns.len()
        )));
    }
    let mut values = Vec::with_capacity(columns.len());
    for (field, meta) in fields.into_iter().zip(columns) {
        let value = match (field, meta.dtype) {
            (None, _) => Value::Null,
            (Some(s), DataType::Int) => {
                let trimmed = s.trim();
                if trimmed.is_empty() {
                    Value::Null
                } else {
                    Value::Int(trimmed.parse::<i64>().map_err(|_| {
                        StorageError::Invariant(format!(
                            "`{table}` record {line}, column `{}`: `{s}` is not an integer",
                            meta.name
                        ))
                    })?)
                }
            }
            (Some(s), DataType::Str) => Value::Str(s),
        };
        values.push(value);
    }
    Ok(values)
}

// ---------------------------------------------------------------------------
// Ingestion
// ---------------------------------------------------------------------------

/// Ingests one CSV/TSV file into an encoded table.  `delim` is `,` for
/// `.csv` and `\t` for `.tsv`; `threads` bounds the parallel field-parse
/// fan-out per batch (1 = fully sequential).
pub fn ingest_csv_file(
    path: impl AsRef<Path>,
    schema: &TableSchema,
    delim: char,
    policy: EncodingPolicy,
    threads: usize,
) -> Result<(Table, IngestTableReport)> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)
        .map_err(|e| StorageError::Io(format!("opening `{}`: {e}", path.display())))?;
    let mut reader = std::io::BufReader::with_capacity(1 << 20, file);
    let mut builder = TableBuilder::with_policy(&schema.name, schema.columns.clone(), policy);

    let mut batch: Vec<String> = Vec::with_capacity(BATCH_RECORDS);
    let mut record = String::new();
    let mut line_base = 1usize;
    loop {
        batch.clear();
        while batch.len() < BATCH_RECORDS {
            match read_record(&mut reader, &mut record) {
                Ok(true) => batch.push(std::mem::take(&mut record)),
                Ok(false) => break,
                Err(e) => {
                    return Err(StorageError::Io(format!("reading `{}`: {e}", path.display())))
                }
            }
        }
        if batch.is_empty() {
            break;
        }
        for values in parse_batch(&batch, delim, schema, line_base, threads)? {
            builder.push_row(values?)?;
        }
        line_base += batch.len();
    }

    let table = builder.finish();
    let report = table_report(&table);
    Ok((table, report))
}

/// Field-parses a batch of records, fanning out across `threads` scoped
/// workers while keeping the results in record order.
fn parse_batch<'a>(
    batch: &'a [String],
    delim: char,
    schema: &'a TableSchema,
    line_base: usize,
    threads: usize,
) -> Result<impl Iterator<Item = Result<Vec<Value>>> + 'a> {
    let parse_one = move |(i, record): (usize, &String)| {
        parse_record(record, delim, &schema.name, line_base + i, &schema.columns)
    };
    if threads <= 1 || batch.len() < 512 {
        return Ok(Either::Seq(batch.iter().enumerate().map(parse_one)));
    }
    let chunk = batch.len().div_ceil(threads);
    let mut parsed: Vec<Result<Vec<Value>>> = Vec::with_capacity(batch.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = batch
            .chunks(chunk)
            .enumerate()
            .map(|(ci, records)| {
                scope.spawn(move || {
                    records
                        .iter()
                        .enumerate()
                        .map(|(i, r)| parse_one((ci * chunk + i, r)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            parsed.extend(handle.join().expect("ingest parse worker panicked"));
        }
    });
    Ok(Either::Par(parsed.into_iter()))
}

/// Two iterator shapes with one return type (no boxing on the hot path).
enum Either<A, B> {
    /// Sequential in-place parse.
    Seq(A),
    /// Pre-collected parallel parse.
    Par(B),
}

impl<T, A: Iterator<Item = T>, B: Iterator<Item = T>> Iterator for Either<A, B> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        match self {
            Either::Seq(a) => a.next(),
            Either::Par(b) => b.next(),
        }
    }
}

fn table_report(table: &Table) -> IngestTableReport {
    let mut dict_bytes = 0usize;
    for idx in 0..table.column_count() {
        dict_bytes += table.column(crate::ColumnId(idx as u32)).dict_bytes();
    }
    IngestTableReport {
        table: table.name().to_owned(),
        rows: table.row_count(),
        encoded_bytes: table.encoded_data_bytes(),
        plain_bytes: table.plain_data_bytes(),
        dict_bytes,
    }
}

/// Resolves the data file for `name` under `dir`: `<name>.csv` (comma) or
/// `<name>.tsv` (tab).
fn resolve_data_file(dir: &Path, name: &str) -> Result<(std::path::PathBuf, char)> {
    let csv = dir.join(format!("{name}.csv"));
    if csv.is_file() {
        return Ok((csv, ','));
    }
    let tsv = dir.join(format!("{name}.tsv"));
    if tsv.is_file() {
        return Ok((tsv, '\t'));
    }
    Err(StorageError::Io(format!(
        "no data file for table `{name}`: looked for `{}` and `{}`",
        csv.display(),
        tsv.display()
    )))
}

/// Ingests every schema's file from `dir`, returning the tables in schema
/// order plus the report.
pub fn ingest_csv_dir(
    dir: impl AsRef<Path>,
    schemas: &[TableSchema],
    policy: EncodingPolicy,
    threads: usize,
) -> Result<(Vec<Table>, IngestReport)> {
    let dir = dir.as_ref();
    let mut tables = Vec::with_capacity(schemas.len());
    let mut report = IngestReport::default();
    for schema in schemas {
        let (path, delim) = resolve_data_file(dir, &schema.name)?;
        let (table, table_report) = ingest_csv_file(path, schema, delim, policy, threads)?;
        report.tables.push(table_report);
        tables.push(table);
    }
    Ok((tables, report))
}

// ---------------------------------------------------------------------------
// CSV export (the inverse path, used by round-trip tests and fixtures)
// ---------------------------------------------------------------------------

fn needs_quoting(s: &str, delim: char) -> bool {
    s.is_empty() || s.chars().any(|c| c == delim || c == '"' || c == '\n' || c == '\r' || c == '\\')
}

fn write_field(out: &mut impl Write, value: &Value, delim: char) -> std::io::Result<()> {
    match value {
        Value::Null => Ok(()),
        Value::Int(v) => write!(out, "{v}"),
        Value::Str(s) => {
            if needs_quoting(s, delim) {
                out.write_all(b"\"")?;
                for c in s.chars() {
                    match c {
                        '"' => out.write_all(b"\"\"")?,
                        '\\' => out.write_all(b"\\\\")?,
                        _ => write!(out, "{c}")?,
                    }
                }
                out.write_all(b"\"")
            } else {
                out.write_all(s.as_bytes())
            }
        }
    }
}

/// Writes every table of `db` to `<dir>/<table>.csv` in the format
/// [`ingest_csv_dir`] reads (NULL = empty unquoted field, quotes doubled,
/// backslashes escaped).
pub fn export_csv_dir(db: &Database, dir: impl AsRef<Path>) -> Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)
        .map_err(|e| StorageError::Io(format!("creating `{}`: {e}", dir.display())))?;
    for (_, table) in db.tables() {
        let path = dir.join(format!("{}.csv", table.name()));
        export_table(table, &path)
            .map_err(|e| StorageError::Io(format!("writing `{}`: {e}", path.display())))?;
    }
    Ok(())
}

fn export_table(table: &Table, path: &Path) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    let column_ids: Vec<crate::ColumnId> =
        (0..table.column_count()).map(|i| crate::ColumnId(i as u32)).collect();
    for row in table.row_ids() {
        for (i, &col) in column_ids.iter().enumerate() {
            if i > 0 {
                out.write_all(b",")?;
            }
            write_field(&mut out, &table.value(row, col), ',')?;
        }
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Builds an [`crate::column::EncodedColumn`]-backed database from ingested tables — a thin
/// helper so callers assemble catalog + keys themselves when needed.
pub fn database_from_tables(tables: Vec<Table>) -> Result<Database> {
    let mut db = Database::new();
    for table in tables {
        db.add_table(table)?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IndexConfig;
    use crate::ColumnId;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnMeta::new("id", DataType::Int),
                ColumnMeta::new("name", DataType::Str),
                ColumnMeta::new("year", DataType::Int),
            ],
        )
    }

    fn write_and_ingest(content: &str, threads: usize) -> Result<Table> {
        let dir = std::env::temp_dir().join(format!(
            "qob-ingest-test-{}-{threads}-{}",
            std::process::id(),
            content.len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(&path, content).unwrap();
        let result = ingest_csv_file(&path, &schema(), ',', EncodingPolicy::Auto, threads);
        std::fs::remove_dir_all(&dir).ok();
        result.map(|(t, _)| t)
    }

    #[test]
    fn split_record_handles_quotes_escapes_and_nulls() {
        assert_eq!(
            split_record("a,b,c", ','),
            vec![Some("a".into()), Some("b".into()), Some("c".into())]
        );
        // Empty unquoted = NULL; quoted empty = "".
        assert_eq!(split_record("a,,c", ','), vec![Some("a".into()), None, Some("c".into())]);
        assert_eq!(split_record("\"\",b", ','), vec![Some("".into()), Some("b".into())]);
        // Doubled and backslash-escaped quotes.
        assert_eq!(split_record("\"say \"\"hi\"\"\"", ','), vec![Some("say \"hi\"".into())]);
        assert_eq!(split_record("\"say \\\"hi\\\"\"", ','), vec![Some("say \"hi\"".into())]);
        assert_eq!(split_record("\"back\\\\slash\"", ','), vec![Some("back\\slash".into())]);
        // Delimiters and newlines inside quotes are literal.
        assert_eq!(split_record("\"a,b\",c", ','), vec![Some("a,b".into()), Some("c".into())]);
        assert_eq!(split_record("\"two\nlines\"", ','), vec![Some("two\nlines".into())]);
        // Trailing NULL field.
        assert_eq!(split_record("a,", ','), vec![Some("a".into()), None]);
    }

    #[test]
    fn ingest_parses_types_nulls_and_embedded_newlines() {
        let content = "1,\"The Matrix\",1999\n2,\"Two\nLine Title\",\n3,,2003\n";
        let t = write_and_ingest(content, 1).unwrap();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.value(0, ColumnId(1)), Value::Str("The Matrix".into()));
        assert_eq!(t.value(1, ColumnId(1)), Value::Str("Two\nLine Title".into()));
        assert_eq!(t.value(1, ColumnId(2)), Value::Null);
        assert_eq!(t.value(2, ColumnId(1)), Value::Null);
        assert_eq!(t.value(2, ColumnId(2)), Value::Int(2003));
    }

    #[test]
    fn bad_integers_and_arity_are_reported_with_context() {
        let err = write_and_ingest("1,x,notayear\n", 1).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("notayear") && msg.contains("year"), "{msg}");
        let err = write_and_ingest("1,x\n", 1).unwrap_err();
        assert!(err.to_string().contains("2 fields"), "{err}");
    }

    #[test]
    fn parallel_parse_matches_sequential() {
        let mut content = String::new();
        for i in 0..20_000 {
            use std::fmt::Write as _;
            if i % 11 == 0 {
                writeln!(content, "{i},,").unwrap();
            } else {
                writeln!(content, "{i},\"name, {}\",{}", i % 500, 1900 + i % 120).unwrap();
            }
        }
        let seq = write_and_ingest(&content, 1).unwrap();
        let par = write_and_ingest(&content, 4).unwrap();
        assert_eq!(seq.row_count(), par.row_count());
        for row in seq.row_ids() {
            for c in 0..seq.column_count() as u32 {
                assert_eq!(seq.value(row, ColumnId(c)), par.value(row, ColumnId(c)));
            }
        }
        // Dictionary codes are identical too: append order is preserved.
        for row in seq.row_ids() {
            assert_eq!(
                seq.column(ColumnId(1)).code_at(row as usize),
                par.column(ColumnId(1)).code_at(row as usize)
            );
        }
    }

    #[test]
    fn export_then_ingest_roundtrips_exactly() {
        let mut b = TableBuilder::new(
            "t",
            vec![
                ColumnMeta::new("id", DataType::Int),
                ColumnMeta::new("name", DataType::Str),
                ColumnMeta::new("year", DataType::Int),
            ],
        );
        let tricky = [
            "plain",
            "with, comma",
            "with \"quotes\"",
            "back\\slash",
            "two\nlines",
            "",
            "trailing space ",
        ];
        for (i, s) in tricky.iter().enumerate() {
            let year = if i % 2 == 0 { Value::Int(1990 + i as i64) } else { Value::Null };
            b.push_row(vec![Value::Int(i as i64), Value::Str(s.to_string()), year]).unwrap();
        }
        b.push_row(vec![Value::Int(99), Value::Null, Value::Null]).unwrap();
        let original = b.finish();

        let mut db = Database::new();
        db.add_table(original.clone()).unwrap();
        let dir = std::env::temp_dir().join(format!("qob-export-test-{}", std::process::id()));
        export_csv_dir(&db, &dir).unwrap();
        let (tables, report) =
            ingest_csv_dir(&dir, &[schema_named("t")], EncodingPolicy::Auto, 2).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        let back = &tables[0];
        assert_eq!(back.row_count(), original.row_count());
        for row in original.row_ids() {
            for c in 0..original.column_count() as u32 {
                assert_eq!(
                    back.value(row, ColumnId(c)),
                    original.value(row, ColumnId(c)),
                    "row {row} col {c}"
                );
            }
        }
        assert_eq!(report.total_rows(), original.row_count());
        assert!(report.encoded_bytes() > 0 && report.plain_bytes() > 0);
    }

    fn schema_named(name: &str) -> TableSchema {
        TableSchema::new(
            name,
            vec![
                ColumnMeta::new("id", DataType::Int),
                ColumnMeta::new("name", DataType::Str),
                ColumnMeta::new("year", DataType::Int),
            ],
        )
    }

    #[test]
    fn missing_file_is_a_descriptive_error() {
        let dir = std::env::temp_dir().join(format!("qob-ingest-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = ingest_csv_dir(&dir, &[schema()], EncodingPolicy::Auto, 1).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert!(err.to_string().contains("t.csv"), "{err}");
    }

    #[test]
    fn tsv_files_are_recognised() {
        let dir = std::env::temp_dir().join(format!("qob-ingest-tsv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("t.tsv"), "1\tname one\t1999\n").unwrap();
        let (tables, _) = ingest_csv_dir(&dir, &[schema()], EncodingPolicy::Auto, 1).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(tables[0].row_count(), 1);
        assert_eq!(tables[0].value(0, ColumnId(1)), Value::Str("name one".into()));
    }

    #[test]
    fn ingested_db_plugs_into_the_catalog() {
        let dir = std::env::temp_dir().join(format!("qob-ingest-db-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("t.csv"), "1,a,2000\n2,b,2001\n").unwrap();
        let (tables, _) = ingest_csv_dir(&dir, &[schema()], EncodingPolicy::Auto, 1).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let mut db = database_from_tables(tables).unwrap();
        let tid = db.table_id("t").unwrap();
        db.declare_primary_key(tid, "id").unwrap();
        db.build_indexes(IndexConfig::PrimaryKeyOnly).unwrap();
        assert_eq!(db.index_count(), 1);
    }
}
