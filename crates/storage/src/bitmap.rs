//! A compact validity / selection bitmap.
//!
//! Used for null tracking in columns and for selection vectors produced by
//! predicate evaluation.

/// A growable bitmap backed by `u64` words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bitmap of `len` bits, all set to `value`.
    pub fn with_value(len: usize, value: bool) -> Self {
        let word = if value { u64::MAX } else { 0 };
        let mut bm = Bitmap { words: vec![word; len.div_ceil(64)], len };
        bm.clear_trailing();
        bm
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit.
    pub fn push(&mut self, value: bool) {
        let idx = self.len;
        self.len += 1;
        if self.words.len() * 64 < self.len {
            self.words.push(0);
        }
        if value {
            self.words[idx / 64] |= 1u64 << (idx % 64);
        }
    }

    /// Returns the bit at `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len()`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bitmap index {idx} out of bounds (len {})", self.len);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Sets the bit at `idx` to `value`.
    ///
    /// # Panics
    /// Panics if `idx >= len()`.
    #[inline]
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(idx < self.len, "bitmap index {idx} out of bounds (len {})", self.len);
        let mask = 1u64 << (idx % 64);
        if value {
            self.words[idx / 64] |= mask;
        } else {
            self.words[idx / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over all bit values in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Indices of all set bits.
    pub fn set_indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (w_idx, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push(w_idx * 64 + bit);
                w &= w - 1;
            }
        }
        out
    }

    /// In-place logical AND with another bitmap of identical length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn and_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch in and_with");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place logical OR with another bitmap of identical length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn or_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch in or_with");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place logical NOT.
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_trailing();
    }

    /// The backing `u64` words (least-significant bit first within a word).
    ///
    /// Exposed for bulk serialisation; bits past `len()` are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstructs a bitmap of `len` bits from backing words, the inverse of
    /// [`Bitmap::words`].  Returns `None` if the word count does not match
    /// `len.div_ceil(64)` — the shape check snapshot loading relies on.
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<Self> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        let mut bm = Bitmap { words, len };
        bm.clear_trailing();
        Some(bm)
    }

    fn clear_trailing(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        // When len is a multiple of 64 there are no trailing bits to clear,
        // but an over-allocated final word (len == 0 with one word) must be zeroed.
        if self.len == 0 {
            for w in &mut self.words {
                *w = 0;
            }
        }
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut bm = Bitmap::new();
        for v in iter {
            bm.push(v);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut bm = Bitmap::new();
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        for &b in &pattern {
            bm.push(b);
        }
        assert_eq!(bm.len(), 200);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(bm.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn with_value_all_true_and_false() {
        let t = Bitmap::with_value(70, true);
        assert_eq!(t.count_ones(), 70);
        let f = Bitmap::with_value(70, false);
        assert_eq!(f.count_ones(), 0);
        assert_eq!(t.len(), 70);
        assert_eq!(f.len(), 70);
    }

    #[test]
    fn set_and_count() {
        let mut bm = Bitmap::with_value(130, false);
        bm.set(0, true);
        bm.set(64, true);
        bm.set(129, true);
        assert_eq!(bm.count_ones(), 3);
        assert_eq!(bm.set_indices(), vec![0, 64, 129]);
        bm.set(64, false);
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn and_or_negate() {
        let a: Bitmap = (0..100).map(|i| i % 2 == 0).collect();
        let b: Bitmap = (0..100).map(|i| i % 3 == 0).collect();
        let mut and = a.clone();
        and.and_with(&b);
        assert_eq!(and.count_ones(), (0..100).filter(|i| i % 6 == 0).count());
        let mut or = a.clone();
        or.or_with(&b);
        assert_eq!(or.count_ones(), (0..100).filter(|i| i % 2 == 0 || i % 3 == 0).count());
        let mut neg = a.clone();
        neg.negate();
        assert_eq!(neg.count_ones(), 100 - a.count_ones());
        assert_eq!(neg.len(), 100);
    }

    #[test]
    fn negate_does_not_leak_trailing_bits() {
        let mut bm = Bitmap::with_value(65, false);
        bm.negate();
        assert_eq!(bm.count_ones(), 65);
        bm.negate();
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn iter_matches_get() {
        let bm: Bitmap = (0..67).map(|i| i % 5 == 0).collect();
        let collected: Vec<bool> = bm.iter().collect();
        assert_eq!(collected.len(), 67);
        for (i, v) in collected.iter().enumerate() {
            assert_eq!(*v, bm.get(i));
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let bm = Bitmap::with_value(10, true);
        let _ = bm.get(10);
    }

    #[test]
    fn words_roundtrip_through_from_words() {
        let bm: Bitmap = (0..130).map(|i| i % 7 == 0).collect();
        let rebuilt = Bitmap::from_words(bm.words().to_vec(), bm.len()).unwrap();
        assert_eq!(rebuilt, bm);
        // Mismatched word counts are rejected rather than misinterpreted.
        assert!(Bitmap::from_words(vec![0; 2], 130).is_none());
        assert!(Bitmap::from_words(vec![0; 4], 130).is_none());
        // Trailing garbage past `len` is cleared on reconstruction.
        let dirty = Bitmap::from_words(vec![u64::MAX], 3).unwrap();
        assert_eq!(dirty.count_ones(), 3);
    }

    #[test]
    fn empty_bitmap_behaviour() {
        let bm = Bitmap::new();
        assert!(bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
        assert!(bm.set_indices().is_empty());
    }
}
