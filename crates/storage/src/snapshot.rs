//! Snapshot persistence: a versioned, checksummed binary image of a
//! [`Database`] with lazily-pageable column data.
//!
//! Generating (or ingesting) the IMDB-scale database dominates the start-up
//! cost of every one-shot run, so the serve path (and `qob --snapshot`)
//! persists the database once and reloads it in milliseconds.  Format v2
//! stores column data as the **encoded pages** of
//! [`crate::column::EncodedColumn`] behind a per-column page directory, so a
//! snapshot can be opened *lazily* ([`open_lazy`]): only the metadata section
//! is read up front and each page is faulted in on first touch — load cost is
//! O(touched data), not O(database).
//!
//! ```text
//! offset       size   field
//! 0            8      magic  b"QOBSNAP1"
//! 8            4      format version (u32 LE, currently 2)
//! 12           8      metadata length n (u64 LE)
//! 20           n      metadata section
//! 20+n         8      FNV-1a 64 checksum of the metadata section (u64 LE)
//! 28+n         ...    pages blob: concatenated encoded pages
//! ```
//!
//! The metadata section serialises, in order: the caller metadata pairs, the
//! index configuration, every table (schema, row count, then per column its
//! validity bitmap, dictionary strings for string columns, and the **page
//! directory** — `(offset, length, checksum)` of each encoded page relative
//! to the pages blob), and the key declarations.  Pages are written
//! contiguously and each carries its own checksum, because a lazily-opened
//! snapshot can never verify a whole-file checksum without defeating the
//! point of lazy loading.  Indexes are *not* stored — they are rebuilt from
//! the recorded [`IndexConfig`] on load.
//!
//! Integers are fixed-width little-endian; strings are a `u64` byte length
//! followed by UTF-8 bytes.  Every read validates lengths against the
//! remaining input, so a truncated or bit-flipped file fails with
//! [`StorageError::SnapshotCorrupt`] (or a checksum mismatch) instead of
//! producing a silently wrong database.
//!
//! A version-1 snapshot (the pre-encoding eager format) is rejected with an
//! actionable [`StorageError::SnapshotVersion`] telling the user to
//! regenerate or re-ingest.
//!
//! # Examples
//!
//! ```no_run
//! use qob_storage::Database;
//!
//! let db = Database::new();
//! db.save_snapshot("db.qob").unwrap();
//! let reloaded = Database::load_snapshot("db.qob").unwrap();
//! assert_eq!(reloaded.table_count(), db.table_count());
//! ```

use std::path::Path;
use std::sync::Arc;

use crate::catalog::{Database, IndexConfig};
use crate::column::{EncodedColumn, PageFetch};
use crate::encoding::{fnv1a64, PageData, PageStore, PAGE_ROWS};
use crate::error::StorageError;
use crate::table::{ColumnMeta, Table};
use crate::value::DataType;
use crate::{Bitmap, Result, StringDict};

/// The 8-byte magic at offset 0 of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"QOBSNAP1";

/// The newest snapshot format version this build writes and reads.
/// Version 2 introduced encoded pages and the lazy page directory.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Caller-defined metadata persisted alongside the database — small
/// key/value pairs such as the generation scale, so higher layers can
/// reconstruct their context without re-deriving it from the data.
pub type SnapshotMeta = Vec<(String, i64)>;

const HEADER_LEN: usize = 8 + 4 + 8;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// One page directory entry: where a page's bytes live in the pages blob.
#[derive(Debug, Clone, Copy)]
struct DirEntry {
    offset: u64,
    len: u32,
    checksum: u64,
}

/// Serialises `db` (plus caller metadata) into the snapshot byte format.
pub fn encode(db: &Database, meta: &[(String, i64)]) -> Vec<u8> {
    // Pass 1: serialise every page into the blob, recording the directory.
    let mut blob = Vec::new();
    let mut dirs: Vec<Vec<Vec<DirEntry>>> = Vec::with_capacity(db.table_count());
    for (_, table) in db.tables() {
        let mut table_dirs = Vec::with_capacity(table.column_count());
        for idx in 0..table.column_count() {
            let col = table.column(crate::ColumnId(idx as u32));
            let mut dir = Vec::with_capacity(col.page_count());
            for p in 0..col.page_count() {
                let bytes = col.page(p).to_bytes();
                dir.push(DirEntry {
                    offset: blob.len() as u64,
                    len: bytes.len() as u32,
                    checksum: fnv1a64(&bytes),
                });
                blob.extend_from_slice(&bytes);
            }
            table_dirs.push(dir);
        }
        dirs.push(table_dirs);
    }

    // Pass 2: the metadata section.
    let mut payload = Vec::with_capacity(64 * 1024);
    put_u32(&mut payload, meta.len() as u32);
    for (key, value) in meta {
        put_str(&mut payload, key);
        put_i64(&mut payload, *value);
    }
    payload.push(index_config_tag(db.index_config()));
    put_u32(&mut payload, db.table_count() as u32);
    for ((_, table), table_dirs) in db.tables().zip(&dirs) {
        encode_table_meta(&mut payload, table, table_dirs);
    }
    for (tid, table) in db.tables() {
        let keys = db.keys(tid);
        match keys.primary_key {
            Some(col) => {
                payload.push(1);
                put_str(&mut payload, &table.column_meta(col).name);
            }
            None => payload.push(0),
        }
        put_u32(&mut payload, keys.foreign_keys.len() as u32);
        for fk in &keys.foreign_keys {
            put_str(&mut payload, &table.column_meta(fk.column).name);
            put_u32(&mut payload, fk.references.0);
        }
    }

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 8 + blob.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&blob);
    out
}

fn encode_table_meta(out: &mut Vec<u8>, table: &Table, table_dirs: &[Vec<DirEntry>]) {
    put_str(out, table.name());
    put_u32(out, table.column_count() as u32);
    for meta in table.schema() {
        put_str(out, &meta.name);
        out.push(match meta.dtype {
            DataType::Int => 0,
            DataType::Str => 1,
        });
    }
    put_u64(out, table.row_count() as u64);
    for (idx, dir) in table_dirs.iter().enumerate() {
        let col = table.column(crate::ColumnId(idx as u32));
        put_bitmap(out, col.validity());
        if let Some(dict) = col.dict() {
            put_u32(out, dict.len() as u32);
            for (_, s) in dict.iter() {
                put_str(out, s);
            }
        }
        put_u32(out, dir.len() as u32);
        for entry in dir {
            put_u64(out, entry.offset);
            put_u32(out, entry.len);
            put_u64(out, entry.checksum);
        }
    }
}

// ---------------------------------------------------------------------------
// Metadata parsing (shared by eager decode and lazy open)
// ---------------------------------------------------------------------------

struct ParsedColumn {
    validity: Bitmap,
    dict: Option<StringDict>,
    directory: Vec<DirEntry>,
}

struct ParsedTable {
    name: String,
    metas: Vec<ColumnMeta>,
    row_count: usize,
    columns: Vec<ParsedColumn>,
}

/// One table's key declarations:
/// `(pk_column_name?, [(fk_column_name, referenced_table)])`.
type ParsedKeys = (Option<String>, Vec<(String, u32)>);

struct ParsedSnapshot {
    meta: SnapshotMeta,
    index_config: IndexConfig,
    tables: Vec<ParsedTable>,
    /// Per-table key declarations, in table order.
    keys: Vec<ParsedKeys>,
    /// Total bytes of the pages blob implied by the directories.
    blob_len: u64,
}

/// Validates the header and returns `(version-checked metadata section,
/// pages blob)` for eager decoding.
fn split_file(bytes: &[u8]) -> Result<(&[u8], &[u8])> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(StorageError::SnapshotCorrupt(format!(
            "file too short ({} bytes) to hold a snapshot header",
            bytes.len()
        )));
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(StorageError::SnapshotCorrupt("bad magic (not a qob snapshot)".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(StorageError::SnapshotVersion { found: version, supported: SNAPSHOT_VERSION });
    }
    let meta_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let rest = (bytes.len() - HEADER_LEN - 8) as u64;
    if meta_len > rest {
        return Err(StorageError::SnapshotCorrupt(format!(
            "metadata section claims {meta_len} bytes, {rest} available"
        )));
    }
    let meta_end = HEADER_LEN + meta_len as usize;
    let payload = &bytes[HEADER_LEN..meta_end];
    let stored = u64::from_le_bytes(bytes[meta_end..meta_end + 8].try_into().expect("8 bytes"));
    let actual = fnv1a64(payload);
    if stored != actual {
        return Err(StorageError::SnapshotCorrupt(format!(
            "metadata checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }
    Ok((payload, &bytes[meta_end + 8..]))
}

fn parse_meta(payload: &[u8]) -> Result<ParsedSnapshot> {
    let mut cur = Cursor { bytes: payload, pos: 0 };
    let meta_len = cur.u32()? as usize;
    let mut meta = Vec::with_capacity(meta_len.min(1024));
    for _ in 0..meta_len {
        let key = cur.str()?;
        let value = cur.i64()?;
        meta.push((key, value));
    }
    let index_config = index_config_from_tag(cur.u8()?)?;
    let table_count = cur.u32()? as usize;
    let mut tables = Vec::with_capacity(table_count.min(4096));
    // Pages are written contiguously: every directory entry must start
    // exactly where the previous one ended, so the directories cover the
    // whole blob with no gaps or overlaps.
    let mut next_offset = 0u64;
    for _ in 0..table_count {
        tables.push(parse_table_meta(&mut cur, &mut next_offset)?);
    }
    let mut keys = Vec::with_capacity(table_count);
    for _ in 0..table_count {
        let pk = if cur.u8()? == 1 { Some(cur.str()?) } else { None };
        let fk_count = cur.u32()? as usize;
        let mut fks = Vec::with_capacity(fk_count.min(64));
        for _ in 0..fk_count {
            let column = cur.str()?;
            let references = cur.u32()?;
            if references as usize >= table_count {
                return Err(StorageError::SnapshotCorrupt(format!(
                    "foreign key references table {references} of {table_count}"
                )));
            }
            fks.push((column, references));
        }
        keys.push((pk, fks));
    }
    if cur.pos != payload.len() {
        return Err(StorageError::SnapshotCorrupt(format!(
            "{} trailing metadata bytes after the key declarations",
            payload.len() - cur.pos
        )));
    }
    Ok(ParsedSnapshot { meta, index_config, tables, keys, blob_len: next_offset })
}

fn parse_table_meta(cur: &mut Cursor<'_>, next_offset: &mut u64) -> Result<ParsedTable> {
    let name = cur.str()?;
    let column_count = cur.u32()? as usize;
    let mut metas = Vec::with_capacity(column_count.min(4096));
    for _ in 0..column_count {
        let col_name = cur.str()?;
        let dtype = match cur.u8()? {
            0 => DataType::Int,
            1 => DataType::Str,
            tag => {
                return Err(StorageError::SnapshotCorrupt(format!(
                    "unknown column type tag {tag} in table `{name}`"
                )))
            }
        };
        metas.push(ColumnMeta::new(col_name, dtype));
    }
    let claimed_rows = cur.u64()?;
    // A validity bitmap of `row_count` bits must fit in the remaining
    // metadata, which bounds a corrupt "4 billion rows" claim before any
    // allocation happens.
    let bitmap_bytes = claimed_rows.div_ceil(64).saturating_mul(8);
    if bitmap_bytes > (cur.bytes.len() - cur.pos) as u64 {
        return Err(StorageError::SnapshotCorrupt(format!(
            "row count {claimed_rows} exceeds the metadata remaining for its bitmap"
        )));
    }
    let row_count = claimed_rows as usize;
    let expected_pages = row_count.div_ceil(PAGE_ROWS);
    let mut columns = Vec::with_capacity(column_count);
    for meta in &metas {
        let validity = cur.bitmap(row_count)?;
        let dict = match meta.dtype {
            DataType::Int => None,
            DataType::Str => {
                let dict_len = cur.u32()? as usize;
                let mut strings = Vec::with_capacity(dict_len.min(row_count.max(16)));
                for _ in 0..dict_len {
                    strings.push(cur.str()?);
                }
                Some(StringDict::from_strings(strings).ok_or_else(|| {
                    StorageError::SnapshotCorrupt(format!(
                        "duplicate dictionary string in column `{}` of `{name}`",
                        meta.name
                    ))
                })?)
            }
        };
        let page_count = cur.u32()? as usize;
        if page_count != expected_pages {
            return Err(StorageError::SnapshotCorrupt(format!(
                "column `{}` of `{name}` has {page_count} pages, expected {expected_pages} \
                 for {row_count} rows",
                meta.name
            )));
        }
        let mut directory = Vec::with_capacity(page_count);
        for _ in 0..page_count {
            let offset = cur.u64()?;
            let len = cur.u32()?;
            let checksum = cur.u64()?;
            if offset != *next_offset {
                return Err(StorageError::SnapshotCorrupt(format!(
                    "page directory of `{}` in `{name}` is not contiguous \
                     (offset {offset}, expected {next_offset})",
                    meta.name
                )));
            }
            *next_offset = offset
                .checked_add(len as u64)
                .ok_or_else(|| StorageError::SnapshotCorrupt("page offset overflow".into()))?;
            directory.push(DirEntry { offset, len, checksum });
        }
        columns.push(ParsedColumn { validity, dict, directory });
    }
    Ok(ParsedTable { name, metas, row_count, columns })
}

fn assemble_database(
    parsed: ParsedSnapshot,
    mut make_column: impl FnMut(
        DataType,
        usize,
        Bitmap,
        Option<StringDict>,
        Vec<DirEntry>,
    ) -> Result<EncodedColumn>,
) -> Result<(Database, SnapshotMeta)> {
    let mut db = Database::new();
    let table_count = parsed.tables.len();
    for t in parsed.tables {
        let mut columns = Vec::with_capacity(t.columns.len());
        for (meta, col) in t.metas.iter().zip(t.columns) {
            columns.push(make_column(
                meta.dtype,
                t.row_count,
                col.validity,
                col.dict,
                col.directory,
            )?);
        }
        db.add_table(Table::from_parts(t.name, t.metas, columns)?)?;
    }
    for (tid, (pk, fks)) in parsed.keys.into_iter().enumerate() {
        let tid = crate::TableId(tid as u32);
        if let Some(pk) = pk {
            db.declare_primary_key(tid, &pk)?;
        }
        for (column, references) in fks {
            if references as usize >= table_count {
                return Err(StorageError::SnapshotCorrupt(format!(
                    "foreign key references table {references} of {table_count}"
                )));
            }
            db.declare_foreign_key(tid, &column, crate::TableId(references))?;
        }
    }
    db.build_indexes(parsed.index_config)?;
    Ok((db, parsed.meta))
}

// ---------------------------------------------------------------------------
// Eager decode
// ---------------------------------------------------------------------------

/// Parses snapshot bytes back into a database (indexes rebuilt) and the
/// caller metadata stored with it.  Every page is decoded and
/// checksum-verified up front — the fully-validated path used by
/// [`Database::load_snapshot`].
pub fn decode(bytes: &[u8]) -> Result<(Database, SnapshotMeta)> {
    let (payload, blob) = split_file(bytes)?;
    let parsed = parse_meta(payload)?;
    if parsed.blob_len != blob.len() as u64 {
        return Err(StorageError::SnapshotCorrupt(format!(
            "pages blob is {} bytes, directory expects {}",
            blob.len(),
            parsed.blob_len
        )));
    }
    assemble_database(parsed, |dtype, row_count, validity, dict, directory| {
        let mut pages = Vec::with_capacity(directory.len());
        let mut encoded_bytes = 0usize;
        let mut rows_seen = 0usize;
        for entry in &directory {
            let start = entry.offset as usize;
            let end = start + entry.len as usize;
            // Contiguity was already validated, so the range is in bounds.
            let page_bytes = &blob[start..end];
            if fnv1a64(page_bytes) != entry.checksum {
                return Err(StorageError::SnapshotCorrupt(format!(
                    "page at blob offset {start} failed its checksum"
                )));
            }
            let page = PageData::from_bytes(page_bytes)?;
            match (&page, dtype) {
                (PageData::Int(_), DataType::Int) | (PageData::Code(_), DataType::Str) => {}
                _ => {
                    return Err(StorageError::SnapshotCorrupt(format!(
                        "page at blob offset {start} has the wrong column type"
                    )))
                }
            }
            rows_seen += page.len();
            encoded_bytes += page.encoded_bytes();
            pages.push(page);
        }
        if rows_seen != row_count {
            return Err(StorageError::SnapshotCorrupt(format!(
                "column pages hold {rows_seen} rows, expected {row_count}"
            )));
        }
        // Non-null rows of a string column must dereference into the dict.
        if let (Some(d), DataType::Str) = (&dict, dtype) {
            let dict_len = d.len() as u32;
            let mut scratch = Vec::new();
            for (p, page) in pages.iter().enumerate() {
                if let PageData::Code(cp) = page {
                    scratch.clear();
                    cp.decode_into(&mut scratch);
                    let base = p * PAGE_ROWS;
                    for (i, &code) in scratch.iter().enumerate() {
                        if validity.get(base + i) && code >= dict_len {
                            return Err(StorageError::SnapshotCorrupt(format!(
                                "dictionary code {code} out of range (dict has {dict_len} strings)"
                            )));
                        }
                    }
                }
            }
        }
        Ok(EncodedColumn::from_encoded_parts(
            dtype,
            row_count,
            validity,
            dict,
            pages,
            encoded_bytes,
        ))
    })
}

// ---------------------------------------------------------------------------
// Lazy open
// ---------------------------------------------------------------------------

/// Opens a snapshot **lazily**: only the metadata section is read up front;
/// each column page faults in through the returned [`PageStore`] on first
/// access (checksum-verified per page).  Index building touches the key
/// columns it scans, nothing else — so opening plus a point query reads
/// O(touched pages), not the whole file.  The store's
/// [`PageStore::bytes_read`] counter exposes exactly how much was touched.
///
/// A page that later fails to read or verify panics (the mmap-SIGBUS
/// analogue); use [`load`] when full up-front validation is wanted.
pub fn open_lazy(path: impl AsRef<Path>) -> Result<(Database, SnapshotMeta, Arc<PageStore>)> {
    use std::os::unix::fs::FileExt;
    let path = path.as_ref();
    let file = std::fs::File::open(path)
        .map_err(|e| StorageError::Io(format!("opening `{}`: {e}", path.display())))?;
    let file_len = file
        .metadata()
        .map_err(|e| StorageError::Io(format!("stat `{}`: {e}", path.display())))?
        .len();
    let mut header = [0u8; HEADER_LEN];
    file.read_exact_at(&mut header, 0)
        .map_err(|e| StorageError::Io(format!("reading `{}`: {e}", path.display())))?;
    if header[..8] != SNAPSHOT_MAGIC {
        return Err(StorageError::SnapshotCorrupt("bad magic (not a qob snapshot)".into()));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(StorageError::SnapshotVersion { found: version, supported: SNAPSHOT_VERSION });
    }
    let meta_len = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    if HEADER_LEN as u64 + meta_len + 8 > file_len {
        return Err(StorageError::SnapshotCorrupt(format!(
            "metadata section claims {meta_len} bytes, file is {file_len}"
        )));
    }
    let mut payload = vec![0u8; meta_len as usize + 8];
    file.read_exact_at(&mut payload, HEADER_LEN as u64)
        .map_err(|e| StorageError::Io(format!("reading `{}`: {e}", path.display())))?;
    let stored = u64::from_le_bytes(payload[meta_len as usize..].try_into().expect("8 bytes"));
    let payload = &payload[..meta_len as usize];
    let actual = fnv1a64(payload);
    if stored != actual {
        return Err(StorageError::SnapshotCorrupt(format!(
            "metadata checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }
    let parsed = parse_meta(payload)?;
    let pages_start = HEADER_LEN as u64 + meta_len + 8;
    if pages_start + parsed.blob_len != file_len {
        return Err(StorageError::SnapshotCorrupt(format!(
            "file is {file_len} bytes, directory expects {}",
            pages_start + parsed.blob_len
        )));
    }
    let store = Arc::new(PageStore::new(file));
    let store_for_cols = Arc::clone(&store);
    let (db, meta) =
        assemble_database(parsed, move |dtype, row_count, validity, dict, directory| {
            let encoded_bytes: usize = directory.iter().map(|e| e.len as usize).sum();
            let fetches = directory
                .into_iter()
                .map(|e| PageFetch {
                    store: Arc::clone(&store_for_cols),
                    offset: pages_start + e.offset,
                    len: e.len,
                    checksum: e.checksum,
                })
                .collect();
            Ok(EncodedColumn::from_lazy_parts(
                dtype,
                row_count,
                validity,
                dict,
                fetches,
                encoded_bytes,
            ))
        })?;
    Ok((db, meta, store))
}

// ---------------------------------------------------------------------------
// File convenience API
// ---------------------------------------------------------------------------

/// Writes `db` and `meta` to `path` in the snapshot format.
///
/// The write goes to a sibling temporary file first and is renamed into
/// place, so a crash mid-save can never leave a half-written snapshot at
/// `path` (which would hard-fail every later `--snapshot` run).
pub fn save(db: &Database, meta: &[(String, i64)], path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, encode(db, meta))
        .map_err(|e| StorageError::Io(format!("writing `{}`: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        StorageError::Io(format!("renaming `{}` into place: {e}", path.display()))
    })
}

/// Loads a database (and its caller metadata) from a snapshot file, decoding
/// and verifying every page eagerly.
pub fn load(path: impl AsRef<Path>) -> Result<(Database, SnapshotMeta)> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)
        .map_err(|e| StorageError::Io(format!("reading `{}`: {e}", path.display())))?;
    decode(&bytes)
}

impl Database {
    /// Persists this database to `path` in the snapshot format (no caller
    /// metadata; use [`save`] to attach metadata).
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<()> {
        save(self, &[], path)
    }

    /// Loads a database from a snapshot file, rebuilding its indexes.
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Database> {
        load(path).map(|(db, _)| db)
    }
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

fn index_config_tag(config: IndexConfig) -> u8 {
    match config {
        IndexConfig::NoIndexes => 0,
        IndexConfig::PrimaryKeyOnly => 1,
        IndexConfig::PrimaryAndForeignKey => 2,
    }
}

fn index_config_from_tag(tag: u8) -> Result<IndexConfig> {
    match tag {
        0 => Ok(IndexConfig::NoIndexes),
        1 => Ok(IndexConfig::PrimaryKeyOnly),
        2 => Ok(IndexConfig::PrimaryAndForeignKey),
        other => Err(StorageError::SnapshotCorrupt(format!("unknown index config tag {other}"))),
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_bitmap(out: &mut Vec<u8>, bm: &Bitmap) {
    for w in bm.words() {
        put_u64(out, *w);
    }
}

/// A bounds-checked reader over the metadata section: every primitive read
/// fails with a descriptive [`StorageError::SnapshotCorrupt`] instead of
/// panicking when the input is shorter than its own length fields claim.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(StorageError::SnapshotCorrupt(format!(
                "metadata truncated: need {n} bytes at offset {}, {} remain",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Validates a length field against the bytes actually remaining, so a
    /// corrupt "4 billion rows" claim fails fast instead of allocating.
    fn checked_len(&self, claimed: u64, what: &str) -> Result<usize> {
        let remaining = (self.bytes.len() - self.pos) as u64;
        if claimed > remaining {
            return Err(StorageError::SnapshotCorrupt(format!(
                "{what} {claimed} exceeds the {remaining} metadata bytes remaining"
            )));
        }
        Ok(claimed as usize)
    }

    fn str(&mut self) -> Result<String> {
        let claimed = self.u64()?;
        let len = self.checked_len(claimed, "string length")?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::SnapshotCorrupt("non-UTF-8 string in metadata".into()))
    }

    fn bitmap(&mut self, len: usize) -> Result<Bitmap> {
        let word_count = len.div_ceil(64);
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            words.push(self.u64()?);
        }
        Bitmap::from_words(words, len)
            .ok_or_else(|| StorageError::SnapshotCorrupt("bitmap word count mismatch".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};
    use crate::table::TableBuilder;
    use crate::value::Value;
    use crate::{ColumnId, EncodingPolicy};

    fn sample_db(config: IndexConfig) -> Database {
        let mut db = Database::new();
        let mut title = TableBuilder::new(
            "title",
            vec![
                ColumnMeta::new("id", DataType::Int),
                ColumnMeta::new("title", DataType::Str),
                ColumnMeta::new("production_year", DataType::Int),
            ],
        );
        for i in 0..100 {
            let year = if i % 7 == 0 { Value::Null } else { Value::Int(1990 + i % 30) };
            title
                .push_row(vec![Value::Int(i), Value::Str(format!("movie {}", i % 40)), year])
                .unwrap();
        }
        let title_id = db.add_table(title.finish()).unwrap();

        let mut mc = TableBuilder::new(
            "movie_companies",
            vec![ColumnMeta::new("id", DataType::Int), ColumnMeta::new("movie_id", DataType::Int)],
        );
        for i in 0..250 {
            mc.push_row(vec![Value::Int(i), Value::Int(i % 100)]).unwrap();
        }
        let mc_id = db.add_table(mc.finish()).unwrap();

        db.declare_primary_key(title_id, "id").unwrap();
        db.declare_primary_key(mc_id, "id").unwrap();
        db.declare_foreign_key(mc_id, "movie_id", title_id).unwrap();
        db.build_indexes(config).unwrap();
        db
    }

    fn assert_databases_identical(a: &Database, b: &Database) {
        assert_eq!(a.table_count(), b.table_count());
        assert_eq!(a.index_config(), b.index_config());
        assert_eq!(a.index_count(), b.index_count());
        for (tid, ta) in a.tables() {
            let tb = b.table(tid);
            assert_eq!(ta.name(), tb.name());
            assert_eq!(ta.schema(), tb.schema());
            assert_eq!(ta.row_count(), tb.row_count());
            for col in 0..ta.column_count() as u32 {
                let (ca, cb) = (ta.column(ColumnId(col)), tb.column(ColumnId(col)));
                assert_eq!(ca.validity(), cb.validity());
                for row in 0..ta.row_count() {
                    assert_eq!(ca.value_at(row), cb.value_at(row), "row {row} col {col}");
                    // Dictionary codes must survive exactly, not just strings.
                    assert_eq!(ca.code_at(row), cb.code_at(row), "row {row} col {col}");
                }
                if let (Some(da), Some(db_)) = (ca.dict(), cb.dict()) {
                    assert!(da.iter().eq(db_.iter()));
                }
            }
            assert_eq!(a.keys(tid).primary_key, b.keys(tid).primary_key);
            assert_eq!(a.keys(tid).foreign_keys, b.keys(tid).foreign_keys);
        }
    }

    #[test]
    fn roundtrip_preserves_tables_keys_indexes_and_meta() {
        for config in IndexConfig::all() {
            let db = sample_db(config);
            let meta = vec![("scale.movies".to_owned(), 200i64), ("scale.seed".to_owned(), 42)];
            let bytes = encode(&db, &meta);
            let (reloaded, meta2) = decode(&bytes).unwrap();
            assert_eq!(meta, meta2);
            assert_databases_identical(&db, &reloaded);
        }
    }

    #[test]
    fn save_and_load_through_a_file() {
        let db = sample_db(IndexConfig::PrimaryAndForeignKey);
        let path =
            std::env::temp_dir().join(format!("qob-snapshot-test-{}.qob", std::process::id()));
        db.save_snapshot(&path).unwrap();
        // The atomic-rename dance leaves no temporary file behind.
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.starts_with(&stem) && name != stem
            })
            .count();
        assert_eq!(leftovers, 0, "temporary save files must not survive");
        let reloaded = Database::load_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_databases_identical(&db, &reloaded);
    }

    #[test]
    fn lazy_open_reads_only_touched_pages() {
        let db = sample_db(IndexConfig::NoIndexes);
        let path =
            std::env::temp_dir().join(format!("qob-snapshot-lazy-{}.qob", std::process::id()));
        db.save_snapshot(&path).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len();

        let (lazy, _meta, store) = open_lazy(&path).unwrap();
        assert_eq!(store.bytes_read(), 0, "open faults no pages");

        // A single-table point query touches only the pages it scans.
        let title = lazy.table_by_name("title").unwrap();
        let id = title.column_id("id").unwrap();
        let p = Predicate::IntCmp { column: id, op: CmpOp::Eq, value: 17 };
        assert_eq!(p.filter(title), vec![17]);
        let touched = store.bytes_read();
        assert!(touched > 0, "the point query must fault at least one page");
        assert!(
            touched < file_len,
            "lazy load touched {touched} of {file_len} bytes — not O(touched data)"
        );

        // Faulting everything converges to the eager load.
        let eager = Database::load_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_databases_identical(&eager, &lazy);
    }

    #[test]
    fn lazy_open_rebuilds_indexes() {
        let db = sample_db(IndexConfig::PrimaryAndForeignKey);
        let path =
            std::env::temp_dir().join(format!("qob-snapshot-lazyidx-{}.qob", std::process::id()));
        db.save_snapshot(&path).unwrap();
        let (lazy, _, _store) = open_lazy(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(lazy.index_count(), db.index_count());
        let mc = lazy.table_id("movie_companies").unwrap();
        let movie_id = lazy.table(mc).column_id("movie_id").unwrap();
        assert_eq!(lazy.hash_index(mc, movie_id).unwrap().lookup(3).len(), 3);
    }

    #[test]
    fn auto_encoding_shrinks_the_snapshot() {
        let db = sample_db(IndexConfig::NoIndexes);
        let encoded_len = encode(&db, &[]).len();

        let mut plain_db = Database::new();
        for (_, table) in db.tables() {
            plain_db.add_table(table.reencoded(EncodingPolicy::Plain)).unwrap();
        }
        plain_db.build_indexes(IndexConfig::NoIndexes).unwrap();
        let plain_len = encode(&plain_db, &[]).len();
        assert!(
            encoded_len < plain_len,
            "auto-encoded snapshot ({encoded_len} B) is not smaller than plain ({plain_len} B)"
        );
    }

    #[test]
    fn io_errors_are_reported_not_panicked() {
        let err = Database::load_snapshot("/nonexistent/dir/db.qob").unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "got {err:?}");
        let db = sample_db(IndexConfig::NoIndexes);
        let err = db.save_snapshot("/nonexistent/dir/db.qob").unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "got {err:?}");
        let err = open_lazy("/nonexistent/dir/db.qob").unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "got {err:?}");
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let db = sample_db(IndexConfig::PrimaryKeyOnly);
        let mut bytes = encode(&db, &[]);

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(decode(&wrong_magic), Err(StorageError::SnapshotCorrupt(_))));

        // A future version is rejected with a version error, not a parse error.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(StorageError::SnapshotVersion { found: 99, supported: SNAPSHOT_VERSION })
        ));

        assert!(matches!(decode(b"short"), Err(StorageError::SnapshotCorrupt(_))));
    }

    /// Satellite regression: a stale v1 snapshot must produce the actionable
    /// version error (naming found vs. supported and telling the user to
    /// regenerate/re-ingest), from both the eager and the lazy path.
    #[test]
    fn stale_v1_snapshot_gets_an_actionable_error() {
        let db = sample_db(IndexConfig::PrimaryKeyOnly);
        let mut bytes = encode(&db, &[]);
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());

        let err = decode(&bytes).unwrap_err();
        assert!(matches!(
            err,
            StorageError::SnapshotVersion { found: 1, supported: SNAPSHOT_VERSION }
        ));
        let message = err.to_string();
        assert!(message.contains('1') && message.contains('2'), "names both versions: {message}");
        assert!(
            message.contains("regenerate") || message.contains("re-ingest"),
            "tells the user what to do: {message}"
        );

        let path = std::env::temp_dir().join(format!("qob-snapshot-v1-{}.qob", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let lazy_err = open_lazy(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            lazy_err,
            StorageError::SnapshotVersion { found: 1, supported: SNAPSHOT_VERSION }
        ));
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        let db = sample_db(IndexConfig::PrimaryKeyOnly);
        let bytes = encode(&db, &[("k".to_owned(), 7)]);
        // Flip one byte at a sample of offsets: the metadata checksum, a
        // page checksum, or a structural validation must reject each one.
        for pos in (12..bytes.len()).step_by(97) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0xff;
            assert!(decode(&corrupt).is_err(), "flip at {pos} went undetected");
        }
        // Truncation anywhere is also rejected.
        for cut in [bytes.len() - 1, bytes.len() / 2, 13] {
            assert!(decode(&bytes[..cut]).is_err(), "truncation to {cut} went undetected");
        }
    }
}
