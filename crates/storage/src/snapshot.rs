//! Snapshot persistence: a versioned, checksummed binary image of a
//! [`Database`].
//!
//! Generating the synthetic IMDB-scale database dominates the start-up cost
//! of every one-shot run, so the serve path (and `qob --snapshot`) persists
//! the generated database once and reloads it in milliseconds.  The format
//! is deliberately simple and fully self-describing:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"QOBSNAP1"
//! 8       4     format version (u32 LE, currently 1)
//! 12      n     payload (tables, keys, index config, caller metadata)
//! 12+n    8     FNV-1a 64 checksum of the payload (u64 LE)
//! ```
//!
//! The payload serialises, in order: the caller metadata pairs, the index
//! configuration, every table (schema + raw column data, preserving
//! dictionary codes and validity bitmaps bit-for-bit), and the key
//! declarations.  Indexes are *not* stored — they are rebuilt from the
//! recorded [`IndexConfig`] on load, which is cheap relative to datagen and
//! keeps the file format independent of the index implementation.
//!
//! Integers are fixed-width little-endian; strings are a `u64` byte length
//! followed by UTF-8 bytes.  Every read validates lengths against the
//! remaining payload, so a truncated or bit-flipped file fails with
//! [`StorageError::SnapshotCorrupt`] (or a checksum mismatch) instead of
//! producing a silently wrong database.
//!
//! # Examples
//!
//! ```no_run
//! use qob_storage::Database;
//!
//! let db = Database::new();
//! db.save_snapshot("db.qob").unwrap();
//! let reloaded = Database::load_snapshot("db.qob").unwrap();
//! assert_eq!(reloaded.table_count(), db.table_count());
//! ```

use std::path::Path;

use crate::catalog::{Database, IndexConfig};
use crate::column::ColumnData;
use crate::error::StorageError;
use crate::table::{ColumnMeta, Table};
use crate::value::DataType;
use crate::{Bitmap, Result, StringDict};

/// The 8-byte magic at offset 0 of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"QOBSNAP1";

/// The newest snapshot format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Caller-defined metadata persisted alongside the database — small
/// key/value pairs such as the generation scale, so higher layers can
/// reconstruct their context without re-deriving it from the data.
pub type SnapshotMeta = Vec<(String, i64)>;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Serialises `db` (plus caller metadata) into the snapshot byte format.
pub fn encode(db: &Database, meta: &[(String, i64)]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64 * 1024);
    put_u32(&mut payload, meta.len() as u32);
    for (key, value) in meta {
        put_str(&mut payload, key);
        put_i64(&mut payload, *value);
    }
    payload.push(index_config_tag(db.index_config()));
    put_u32(&mut payload, db.table_count() as u32);
    for (_, table) in db.tables() {
        encode_table(&mut payload, table);
    }
    for (tid, table) in db.tables() {
        let keys = db.keys(tid);
        match keys.primary_key {
            Some(col) => {
                payload.push(1);
                put_str(&mut payload, &table.column_meta(col).name);
            }
            None => payload.push(0),
        }
        put_u32(&mut payload, keys.foreign_keys.len() as u32);
        for fk in &keys.foreign_keys {
            put_str(&mut payload, &table.column_meta(fk.column).name);
            put_u32(&mut payload, fk.references.0);
        }
    }

    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out
}

fn encode_table(out: &mut Vec<u8>, table: &Table) {
    put_str(out, table.name());
    put_u32(out, table.column_count() as u32);
    for meta in table.schema() {
        put_str(out, &meta.name);
        out.push(match meta.dtype {
            DataType::Int => 0,
            DataType::Str => 1,
        });
    }
    put_u64(out, table.row_count() as u64);
    for idx in 0..table.column_count() {
        match table.column(crate::ColumnId(idx as u32)) {
            ColumnData::Int { values, validity } => {
                for v in values {
                    put_i64(out, *v);
                }
                put_bitmap(out, validity);
            }
            ColumnData::Str { codes, dict, validity } => {
                for c in codes {
                    put_u32(out, *c);
                }
                put_u32(out, dict.len() as u32);
                for (_, s) in dict.iter() {
                    put_str(out, s);
                }
                put_bitmap(out, validity);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Parses snapshot bytes back into a database (indexes rebuilt) and the
/// caller metadata stored with it.
pub fn decode(bytes: &[u8]) -> Result<(Database, SnapshotMeta)> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 + 8 {
        return Err(StorageError::SnapshotCorrupt(format!(
            "file too short ({} bytes) to hold a snapshot header",
            bytes.len()
        )));
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(StorageError::SnapshotCorrupt("bad magic (not a qob snapshot)".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(StorageError::SnapshotVersion { found: version, supported: SNAPSHOT_VERSION });
    }
    let payload = &bytes[12..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    let actual = fnv1a64(payload);
    if stored != actual {
        return Err(StorageError::SnapshotCorrupt(format!(
            "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }

    let mut cur = Cursor { bytes: payload, pos: 0 };
    let meta_len = cur.u32()? as usize;
    let mut meta = Vec::with_capacity(meta_len.min(1024));
    for _ in 0..meta_len {
        let key = cur.str()?;
        let value = cur.i64()?;
        meta.push((key, value));
    }
    let index_config = index_config_from_tag(cur.u8()?)?;
    let table_count = cur.u32()? as usize;
    let mut db = Database::new();
    for _ in 0..table_count {
        db.add_table(decode_table(&mut cur)?)?;
    }
    for tid in 0..table_count {
        let tid = crate::TableId(tid as u32);
        if cur.u8()? == 1 {
            let pk = cur.str()?;
            db.declare_primary_key(tid, &pk)?;
        }
        let fk_count = cur.u32()? as usize;
        for _ in 0..fk_count {
            let column = cur.str()?;
            let references = crate::TableId(cur.u32()?);
            if references.index() >= table_count {
                return Err(StorageError::SnapshotCorrupt(format!(
                    "foreign key references table {} of {table_count}",
                    references.0
                )));
            }
            db.declare_foreign_key(tid, &column, references)?;
        }
    }
    if cur.pos != payload.len() {
        return Err(StorageError::SnapshotCorrupt(format!(
            "{} trailing payload bytes after the last table",
            payload.len() - cur.pos
        )));
    }
    db.build_indexes(index_config)?;
    Ok((db, meta))
}

fn decode_table(cur: &mut Cursor<'_>) -> Result<Table> {
    let name = cur.str()?;
    let column_count = cur.u32()? as usize;
    let mut metas = Vec::with_capacity(column_count.min(4096));
    for _ in 0..column_count {
        let col_name = cur.str()?;
        let dtype = match cur.u8()? {
            0 => DataType::Int,
            1 => DataType::Str,
            tag => {
                return Err(StorageError::SnapshotCorrupt(format!(
                    "unknown column type tag {tag} in table `{name}`"
                )))
            }
        };
        metas.push(ColumnMeta::new(col_name, dtype));
    }
    let claimed_rows = cur.u64()?;
    let row_count = cur.checked_len(claimed_rows, "row count")?;
    let mut columns = Vec::with_capacity(column_count);
    for meta in &metas {
        let column = match meta.dtype {
            DataType::Int => {
                let mut values = Vec::with_capacity(row_count);
                for _ in 0..row_count {
                    values.push(cur.i64()?);
                }
                ColumnData::Int { values, validity: cur.bitmap(row_count)? }
            }
            DataType::Str => {
                let mut codes = Vec::with_capacity(row_count);
                for _ in 0..row_count {
                    codes.push(cur.u32()?);
                }
                let dict_len = cur.u32()? as usize;
                let mut strings = Vec::with_capacity(dict_len.min(row_count.max(16)));
                for _ in 0..dict_len {
                    strings.push(cur.str()?);
                }
                let dict = StringDict::from_strings(strings).ok_or_else(|| {
                    StorageError::SnapshotCorrupt(format!(
                        "duplicate dictionary string in column `{}` of `{name}`",
                        meta.name
                    ))
                })?;
                let validity = cur.bitmap(row_count)?;
                // Only non-null rows dereference their code (null slots hold
                // the placeholder 0), so validate exactly those.
                for (row, &code) in codes.iter().enumerate() {
                    if validity.get(row) && code as usize >= dict_len {
                        return Err(StorageError::SnapshotCorrupt(format!(
                            "dictionary code {code} out of range (dict has {dict_len} strings) \
                             in column `{}` of `{name}`",
                            meta.name
                        )));
                    }
                }
                ColumnData::Str { codes, dict, validity }
            }
        };
        columns.push(column);
    }
    Table::from_parts(name, metas, columns)
}

// ---------------------------------------------------------------------------
// File convenience API
// ---------------------------------------------------------------------------

/// Writes `db` and `meta` to `path` in the snapshot format.
///
/// The write goes to a sibling temporary file first and is renamed into
/// place, so a crash mid-save can never leave a half-written snapshot at
/// `path` (which would hard-fail every later `--snapshot` run).
pub fn save(db: &Database, meta: &[(String, i64)], path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, encode(db, meta))
        .map_err(|e| StorageError::Io(format!("writing `{}`: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        StorageError::Io(format!("renaming `{}` into place: {e}", path.display()))
    })
}

/// Loads a database (and its caller metadata) from a snapshot file.
pub fn load(path: impl AsRef<Path>) -> Result<(Database, SnapshotMeta)> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)
        .map_err(|e| StorageError::Io(format!("reading `{}`: {e}", path.display())))?;
    decode(&bytes)
}

impl Database {
    /// Persists this database to `path` in the snapshot format (no caller
    /// metadata; use [`save`] to attach metadata).
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<()> {
        save(self, &[], path)
    }

    /// Loads a database from a snapshot file, rebuilding its indexes.
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Database> {
        load(path).map(|(db, _)| db)
    }
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

fn index_config_tag(config: IndexConfig) -> u8 {
    match config {
        IndexConfig::NoIndexes => 0,
        IndexConfig::PrimaryKeyOnly => 1,
        IndexConfig::PrimaryAndForeignKey => 2,
    }
}

fn index_config_from_tag(tag: u8) -> Result<IndexConfig> {
    match tag {
        0 => Ok(IndexConfig::NoIndexes),
        1 => Ok(IndexConfig::PrimaryKeyOnly),
        2 => Ok(IndexConfig::PrimaryAndForeignKey),
        other => Err(StorageError::SnapshotCorrupt(format!("unknown index config tag {other}"))),
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, and plenty to catch truncation and
/// bit flips (this is an integrity check, not a cryptographic one).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_bitmap(out: &mut Vec<u8>, bm: &Bitmap) {
    for w in bm.words() {
        put_u64(out, *w);
    }
}

/// A bounds-checked reader over the payload: every primitive read fails with
/// a descriptive [`StorageError::SnapshotCorrupt`] instead of panicking when
/// the payload is shorter than its own length fields claim.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(StorageError::SnapshotCorrupt(format!(
                "payload truncated: need {n} bytes at offset {}, {} remain",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Validates a length field against the bytes actually remaining, so a
    /// corrupt "4 billion rows" claim fails fast instead of allocating.
    fn checked_len(&self, claimed: u64, what: &str) -> Result<usize> {
        let remaining = (self.bytes.len() - self.pos) as u64;
        if claimed > remaining {
            return Err(StorageError::SnapshotCorrupt(format!(
                "{what} {claimed} exceeds the {remaining} payload bytes remaining"
            )));
        }
        Ok(claimed as usize)
    }

    fn str(&mut self) -> Result<String> {
        let claimed = self.u64()?;
        let len = self.checked_len(claimed, "string length")?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::SnapshotCorrupt("non-UTF-8 string in payload".into()))
    }

    fn bitmap(&mut self, len: usize) -> Result<Bitmap> {
        let word_count = len.div_ceil(64);
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            words.push(self.u64()?);
        }
        Bitmap::from_words(words, len)
            .ok_or_else(|| StorageError::SnapshotCorrupt("bitmap word count mismatch".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use crate::value::Value;
    use crate::ColumnId;

    fn sample_db(config: IndexConfig) -> Database {
        let mut db = Database::new();
        let mut title = TableBuilder::new(
            "title",
            vec![
                ColumnMeta::new("id", DataType::Int),
                ColumnMeta::new("title", DataType::Str),
                ColumnMeta::new("production_year", DataType::Int),
            ],
        );
        for i in 0..100 {
            let year = if i % 7 == 0 { Value::Null } else { Value::Int(1990 + i % 30) };
            title
                .push_row(vec![Value::Int(i), Value::Str(format!("movie {}", i % 40)), year])
                .unwrap();
        }
        let title_id = db.add_table(title.finish()).unwrap();

        let mut mc = TableBuilder::new(
            "movie_companies",
            vec![ColumnMeta::new("id", DataType::Int), ColumnMeta::new("movie_id", DataType::Int)],
        );
        for i in 0..250 {
            mc.push_row(vec![Value::Int(i), Value::Int(i % 100)]).unwrap();
        }
        let mc_id = db.add_table(mc.finish()).unwrap();

        db.declare_primary_key(title_id, "id").unwrap();
        db.declare_primary_key(mc_id, "id").unwrap();
        db.declare_foreign_key(mc_id, "movie_id", title_id).unwrap();
        db.build_indexes(config).unwrap();
        db
    }

    fn assert_databases_identical(a: &Database, b: &Database) {
        assert_eq!(a.table_count(), b.table_count());
        assert_eq!(a.index_config(), b.index_config());
        assert_eq!(a.index_count(), b.index_count());
        for (tid, ta) in a.tables() {
            let tb = b.table(tid);
            assert_eq!(ta.name(), tb.name());
            assert_eq!(ta.schema(), tb.schema());
            assert_eq!(ta.row_count(), tb.row_count());
            for col in 0..ta.column_count() as u32 {
                let (ca, cb) = (ta.column(ColumnId(col)), tb.column(ColumnId(col)));
                assert_eq!(ca.int_values(), cb.int_values());
                // Dictionary codes must survive exactly, not just the strings.
                assert_eq!(ca.str_codes(), cb.str_codes());
                assert_eq!(ca.validity(), cb.validity());
                if let (Some(da), Some(db_)) = (ca.dict(), cb.dict()) {
                    assert!(da.iter().eq(db_.iter()));
                }
            }
            assert_eq!(a.keys(tid).primary_key, b.keys(tid).primary_key);
            assert_eq!(a.keys(tid).foreign_keys, b.keys(tid).foreign_keys);
        }
    }

    #[test]
    fn roundtrip_preserves_tables_keys_indexes_and_meta() {
        for config in IndexConfig::all() {
            let db = sample_db(config);
            let meta = vec![("scale.movies".to_owned(), 200i64), ("scale.seed".to_owned(), 42)];
            let bytes = encode(&db, &meta);
            let (reloaded, meta2) = decode(&bytes).unwrap();
            assert_eq!(meta, meta2);
            assert_databases_identical(&db, &reloaded);
        }
    }

    #[test]
    fn save_and_load_through_a_file() {
        let db = sample_db(IndexConfig::PrimaryAndForeignKey);
        let path =
            std::env::temp_dir().join(format!("qob-snapshot-test-{}.qob", std::process::id()));
        db.save_snapshot(&path).unwrap();
        // The atomic-rename dance leaves no temporary file behind.
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.starts_with(&stem) && name != stem
            })
            .count();
        assert_eq!(leftovers, 0, "temporary save files must not survive");
        let reloaded = Database::load_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_databases_identical(&db, &reloaded);
    }

    #[test]
    fn io_errors_are_reported_not_panicked() {
        let err = Database::load_snapshot("/nonexistent/dir/db.qob").unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "got {err:?}");
        let db = sample_db(IndexConfig::NoIndexes);
        let err = db.save_snapshot("/nonexistent/dir/db.qob").unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "got {err:?}");
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let db = sample_db(IndexConfig::PrimaryKeyOnly);
        let mut bytes = encode(&db, &[]);

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(decode(&wrong_magic), Err(StorageError::SnapshotCorrupt(_))));

        // A future version is rejected with a version error, not a parse error.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(StorageError::SnapshotVersion { found: 99, supported: SNAPSHOT_VERSION })
        ));

        assert!(matches!(decode(b"short"), Err(StorageError::SnapshotCorrupt(_))));
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        let db = sample_db(IndexConfig::PrimaryKeyOnly);
        let bytes = encode(&db, &[("k".to_owned(), 7)]);
        // Flip one byte at a sample of payload offsets: the checksum (or a
        // structural validation) must reject every corruption.
        for pos in (12..bytes.len()).step_by(97) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0xff;
            assert!(decode(&corrupt).is_err(), "flip at {pos} went undetected");
        }
        // Truncation anywhere is also rejected.
        for cut in [bytes.len() - 1, bytes.len() / 2, 13] {
            assert!(decode(&bytes[..cut]).is_err(), "truncation to {cut} went undetected");
        }
    }
}
