//! Tables, schemas and the table builder.

use crate::column::{ColumnBuilder, EncodedColumn};
use crate::encoding::EncodingPolicy;
use crate::error::StorageError;
use crate::value::{DataType, Value};
use crate::Result;

/// A dense row identifier within one table (0-based).
pub type RowId = u32;

/// A column identifier within one table (0-based position in the schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u32);

impl ColumnId {
    /// The column position as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Schema information for one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Column name (lower case by convention, e.g. `production_year`).
    pub name: String,
    /// Column data type.
    pub dtype: DataType,
}

impl ColumnMeta {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnMeta { name: name.into(), dtype }
    }
}

/// An in-memory columnar table over encoded columns.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns_meta: Vec<ColumnMeta>,
    columns: Vec<EncodedColumn>,
    row_count: usize,
}

impl Table {
    /// Assembles a table directly from schema metadata and column data, the
    /// constructor used when deserialising a snapshot (bypassing the row-wise
    /// [`TableBuilder`] so dictionary codes survive exactly).
    ///
    /// Fails if the metadata and data disagree in arity, type, or length.
    pub fn from_parts(
        name: impl Into<String>,
        columns_meta: Vec<ColumnMeta>,
        columns: Vec<EncodedColumn>,
    ) -> Result<Self> {
        if columns_meta.len() != columns.len() {
            return Err(StorageError::ArityMismatch {
                expected: columns_meta.len(),
                got: columns.len(),
            });
        }
        let row_count = columns.first().map(EncodedColumn::len).unwrap_or(0);
        for (meta, col) in columns_meta.iter().zip(&columns) {
            if meta.dtype != col.data_type() {
                return Err(StorageError::TypeMismatch {
                    column: meta.name.clone(),
                    expected: meta.dtype.name(),
                    got: col.data_type().name(),
                });
            }
            if col.len() != row_count || col.validity().len() != row_count {
                return Err(StorageError::Invariant(format!(
                    "column `{}` has {} rows ({} validity bits), expected {row_count}",
                    meta.name,
                    col.len(),
                    col.validity().len()
                )));
            }
        }
        Ok(Table { name: name.into(), columns_meta, columns, row_count })
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// The schema of all columns, in order.
    pub fn schema(&self) -> &[ColumnMeta] {
        &self.columns_meta
    }

    /// Looks up a column id by name.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.columns_meta.iter().position(|c| c.name == name).map(|i| ColumnId(i as u32))
    }

    /// Looks up a column id by name, producing a catalog error if absent.
    pub fn column_id_or_err(&self, name: &str) -> Result<ColumnId> {
        self.column_id(name).ok_or_else(|| StorageError::UnknownColumn {
            table: self.name.clone(),
            column: name.to_owned(),
        })
    }

    /// The metadata of one column.
    pub fn column_meta(&self, col: ColumnId) -> &ColumnMeta {
        &self.columns_meta[col.index()]
    }

    /// The data of one column.
    pub fn column(&self, col: ColumnId) -> &EncodedColumn {
        &self.columns[col.index()]
    }

    /// The data of one column looked up by name.
    pub fn column_by_name(&self, name: &str) -> Option<&EncodedColumn> {
        self.column_id(name).map(|id| self.column(id))
    }

    /// The value at `(row, col)`.
    pub fn value(&self, row: RowId, col: ColumnId) -> Value {
        self.columns[col.index()].value_at(row as usize)
    }

    /// Iterates over all row ids.
    pub fn row_ids(&self) -> impl Iterator<Item = RowId> {
        0..self.row_count as RowId
    }

    /// Rebuilds the table row-wise under a different encoding policy.  Used
    /// by the differential suites to produce a plain (uncompressed) twin of
    /// an auto-encoded table with identical values and dictionary codes.
    pub fn reencoded(&self, policy: EncodingPolicy) -> Table {
        let mut columns = Vec::with_capacity(self.columns.len());
        for (meta, col) in self.columns_meta.iter().zip(&self.columns) {
            let mut b = ColumnBuilder::with_policy(meta.dtype, policy);
            for row in 0..self.row_count {
                assert!(b.push(&col.value_at(row)), "re-encode type mismatch");
            }
            columns.push(b.finish());
        }
        Table {
            name: self.name.clone(),
            columns_meta: self.columns_meta.clone(),
            columns,
            row_count: self.row_count,
        }
    }

    /// An estimate of the width of one row in bytes, used by the disk-oriented
    /// cost model to derive page counts.
    pub fn avg_row_width(&self) -> f64 {
        let mut width = 0.0;
        for (meta, col) in self.columns_meta.iter().zip(&self.columns) {
            width += match meta.dtype {
                DataType::Int => 8.0,
                DataType::Str => {
                    // Average dictionary string length plus pointer overhead.
                    let dict = col.dict().expect("str column has dict");
                    if dict.is_empty() {
                        8.0
                    } else {
                        let total: usize = dict.iter().map(|(_, s)| s.len()).sum();
                        total as f64 / dict.len() as f64 + 4.0
                    }
                }
            };
        }
        width.max(8.0)
    }

    /// Sum of encoded page bytes across all columns (never faults lazy
    /// pages).
    pub fn encoded_data_bytes(&self) -> usize {
        self.columns.iter().map(EncodedColumn::encoded_data_bytes).sum()
    }

    /// Bytes the same rows would occupy in plain (un-encoded) column arrays.
    pub fn plain_data_bytes(&self) -> usize {
        self.columns.iter().map(EncodedColumn::plain_data_bytes).sum()
    }
}

/// Builds a [`Table`] row by row through one [`ColumnBuilder`] per column.
///
/// Memory stays bounded at one encoded-page buffer per column — this is the
/// write path shared by datagen and CSV ingestion.
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    columns_meta: Vec<ColumnMeta>,
    columns: Vec<ColumnBuilder>,
    row_count: usize,
}

impl TableBuilder {
    /// Creates a builder for a table with the given schema, using automatic
    /// per-page encoding selection.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnMeta>) -> Self {
        Self::with_policy(name, columns, EncodingPolicy::Auto)
    }

    /// Creates a builder with an explicit encoding policy.
    pub fn with_policy(
        name: impl Into<String>,
        columns: Vec<ColumnMeta>,
        policy: EncodingPolicy,
    ) -> Self {
        let data = columns.iter().map(|c| ColumnBuilder::with_policy(c.dtype, policy)).collect();
        TableBuilder { name: name.into(), columns_meta: columns, columns: data, row_count: 0 }
    }

    /// Number of rows appended so far.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Appends one row.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        for ((col, meta), value) in self.columns.iter_mut().zip(&self.columns_meta).zip(&values) {
            if !col.push(value) {
                return Err(StorageError::TypeMismatch {
                    column: meta.name.clone(),
                    expected: meta.dtype.name(),
                    got: value.type_name(),
                });
            }
        }
        self.row_count += 1;
        Ok(())
    }

    /// Finalises the table, encoding any partial trailing pages.
    pub fn finish(self) -> Table {
        Table {
            name: self.name,
            columns_meta: self.columns_meta,
            columns: self.columns.into_iter().map(ColumnBuilder::finish).collect(),
            row_count: self.row_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut b = TableBuilder::new(
            "title",
            vec![
                ColumnMeta::new("id", DataType::Int),
                ColumnMeta::new("title", DataType::Str),
                ColumnMeta::new("production_year", DataType::Int),
            ],
        );
        b.push_row(vec![Value::Int(1), Value::Str("Alpha".into()), Value::Int(1999)]).unwrap();
        b.push_row(vec![Value::Int(2), Value::Str("Beta".into()), Value::Null]).unwrap();
        b.push_row(vec![Value::Int(3), Value::Str("Gamma".into()), Value::Int(2005)]).unwrap();
        b.finish()
    }

    #[test]
    fn build_and_read_back() {
        let t = sample_table();
        assert_eq!(t.name(), "title");
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column_count(), 3);
        assert_eq!(t.value(0, ColumnId(1)), Value::Str("Alpha".into()));
        assert_eq!(t.value(1, ColumnId(2)), Value::Null);
        assert_eq!(t.value(2, ColumnId(0)), Value::Int(3));
    }

    #[test]
    fn column_lookup_by_name() {
        let t = sample_table();
        assert_eq!(t.column_id("production_year"), Some(ColumnId(2)));
        assert_eq!(t.column_id("missing"), None);
        assert!(t.column_id_or_err("missing").is_err());
        assert_eq!(t.column_meta(ColumnId(1)).name, "title");
        assert!(t.column_by_name("title").is_some());
        assert!(t.column_by_name("nope").is_none());
    }

    #[test]
    fn from_parts_reassembles_a_table_and_validates_shape() {
        let t = sample_table();
        let rebuilt = Table::from_parts(
            t.name().to_owned(),
            t.schema().to_vec(),
            (0..t.column_count()).map(|i| t.column(ColumnId(i as u32)).clone()).collect(),
        )
        .unwrap();
        assert_eq!(rebuilt.row_count(), t.row_count());
        for col in 0..t.column_count() as u32 {
            for row in t.row_ids() {
                assert_eq!(rebuilt.value(row, ColumnId(col)), t.value(row, ColumnId(col)));
            }
        }
        // Arity, type and length mismatches are rejected.
        assert!(Table::from_parts("x", t.schema().to_vec(), vec![]).is_err());
        assert!(Table::from_parts(
            "x",
            vec![ColumnMeta::new("id", DataType::Str)],
            vec![t.column(ColumnId(0)).clone()],
        )
        .is_err());
        assert!(Table::from_parts(
            "x",
            vec![ColumnMeta::new("id", DataType::Int), ColumnMeta::new("y", DataType::Int)],
            vec![t.column(ColumnId(0)).clone(), EncodedColumn::empty(DataType::Int)],
        )
        .is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = TableBuilder::new("t", vec![ColumnMeta::new("id", DataType::Int)]);
        let err = b.push_row(vec![]).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { expected: 1, got: 0 }));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut b = TableBuilder::new("t", vec![ColumnMeta::new("id", DataType::Int)]);
        let err = b.push_row(vec![Value::Str("x".into())]).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn row_ids_cover_all_rows() {
        let t = sample_table();
        let ids: Vec<RowId> = t.row_ids().collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn avg_row_width_is_positive_and_sane() {
        let t = sample_table();
        let w = t.avg_row_width();
        assert!(w >= 16.0, "two int columns alone are 16 bytes, got {w}");
        assert!(w < 1000.0);
    }

    #[test]
    fn reencoded_plain_twin_matches_value_for_value() {
        let mut b = TableBuilder::new(
            "t",
            vec![ColumnMeta::new("id", DataType::Int), ColumnMeta::new("kind", DataType::Str)],
        );
        for i in 0..5000i64 {
            let kind = if i % 7 == 0 { Value::Null } else { Value::Str(format!("k{}", i % 4)) };
            b.push_row(vec![Value::Int(i), kind]).unwrap();
        }
        let auto = b.finish();
        let plain = auto.reencoded(EncodingPolicy::Plain);
        assert_eq!(plain.row_count(), auto.row_count());
        for row in auto.row_ids() {
            for c in 0..auto.column_count() as u32 {
                assert_eq!(plain.value(row, ColumnId(c)), auto.value(row, ColumnId(c)));
            }
        }
        // Auto encoding should not be larger than plain on this data.
        assert!(auto.encoded_data_bytes() <= plain.encoded_data_bytes());
        assert_eq!(auto.plain_data_bytes(), plain.plain_data_bytes());
    }
}
