//! # qob-storage
//!
//! In-memory columnar storage engine used as the execution substrate for the
//! reproduction of *"How Good Are Query Optimizers, Really?"* (Leis et al.,
//! VLDB 2015).
//!
//! The paper runs every experiment against a single main-memory resident
//! database (the IMDB snapshot loaded into PostgreSQL).  This crate provides
//! the equivalent substrate for the reproduction:
//!
//! * typed, compressed columnar tables ([`Table`], [`column::EncodedColumn`])
//!   whose pages pick the cheapest of plain / frame-of-reference+bit-packed /
//!   RLE encoding at build time ([`encoding`]),
//! * unclustered hash and ordered indexes ([`index`]),
//! * a catalog of tables and indexes ([`Database`]),
//! * a predicate language with vectorised evaluation ([`predicate`]).
//!
//! The storage layer is deliberately simple — all data fits in RAM, rows are
//! addressed by dense [`RowId`]s, and strings are dictionary encoded so that
//! the synthetic IMDB-scale workload stays laptop friendly — but it exposes
//! exactly the access paths the paper's experiments depend on: full table
//! scans, index lookups on key/foreign-key columns, and per-row predicate
//! evaluation.
//!
//! Databases persist to disk as versioned, checksummed binary **snapshots**
//! ([`snapshot`]): [`Database::save_snapshot`] / [`Database::load_snapshot`]
//! let repeated runs (and the `qob serve` server) skip data generation
//! entirely.
//!
//! # Examples
//!
//! ```no_run
//! use qob_storage::{ColumnMeta, Database, DataType, IndexConfig, TableBuilder, Value};
//!
//! let mut builder = TableBuilder::new("title", vec![ColumnMeta::new("id", DataType::Int)]);
//! builder.push_row(vec![Value::Int(1)]).unwrap();
//! let mut db = Database::new();
//! let title = db.add_table(builder.finish()).unwrap();
//! db.declare_primary_key(title, "id").unwrap();
//! db.build_indexes(IndexConfig::PrimaryKeyOnly).unwrap();
//!
//! // Persist and reload without regenerating.
//! db.save_snapshot("db.qob").unwrap();
//! let reloaded = Database::load_snapshot("db.qob").unwrap();
//! assert_eq!(reloaded.total_rows(), db.total_rows());
//! ```

#![warn(missing_docs)]

pub mod bitmap;
pub mod catalog;
pub mod column;
pub mod encoding;
pub mod error;
pub mod index;
pub mod ingest;
pub mod predicate;
pub mod snapshot;
pub mod table;
pub mod value;

pub use bitmap::Bitmap;
pub use catalog::{Database, IndexConfig, TableId};
pub use column::{ColumnBuilder, EncodedColumn, StringDict};
pub use encoding::{EncodingPolicy, PageData, PageStore, PAGE_ROWS};
pub use error::StorageError;
pub use index::{HashIndex, OrderedIndex};
pub use ingest::{export_csv_dir, ingest_csv_dir, IngestReport, IngestTableReport, TableSchema};
pub use predicate::{like_match, CmpOp, Predicate};
pub use snapshot::{SnapshotMeta, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use table::{ColumnId, ColumnMeta, RowId, Table, TableBuilder};
pub use value::{sql_string_literal, DataType, Value};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
