//! Error type for the storage layer.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A referenced column does not exist in a table.
    UnknownColumn {
        /// The table that was searched.
        table: String,
        /// The column name that was not found.
        column: String,
    },
    /// A value of the wrong type was supplied for a column.
    TypeMismatch {
        /// The column the value was destined for.
        column: String,
        /// The declared column type.
        expected: &'static str,
        /// The type of the offending value.
        got: &'static str,
    },
    /// A row with a different arity than the schema was appended.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// An index was requested on a column type that does not support it.
    UnsupportedIndexColumn {
        /// The column the index was requested on.
        column: String,
    },
    /// A duplicate table name was registered in the catalog.
    DuplicateTable(String),
    /// Generic invariant violation with a description.
    Invariant(String),
    /// An I/O failure while reading or writing a snapshot (the underlying
    /// `std::io::Error` rendered to text, keeping this enum `Eq`).
    Io(String),
    /// A snapshot file is malformed: bad magic, checksum mismatch,
    /// truncation, or an inconsistent payload.
    SnapshotCorrupt(String),
    /// A snapshot was written by an unsupported format version.
    SnapshotVersion {
        /// The version recorded in the file.
        found: u32,
        /// The newest version this build can read.
        supported: u32,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            StorageError::TypeMismatch { column, expected, got } => {
                write!(f, "type mismatch for column `{column}`: expected {expected}, got {got}")
            }
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "row arity mismatch: expected {expected} values, got {got}")
            }
            StorageError::UnsupportedIndexColumn { column } => {
                write!(f, "indexes are only supported on integer columns (column `{column}`)")
            }
            StorageError::DuplicateTable(name) => write!(f, "table `{name}` already exists"),
            StorageError::Invariant(msg) => write!(f, "storage invariant violated: {msg}"),
            StorageError::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
            StorageError::SnapshotCorrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            StorageError::SnapshotVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} is not supported (this build reads version \
                     {supported}); delete the stale file and regenerate it with `qob --snapshot \
                     <path>` or re-ingest your CSV data with `qob ingest`"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::UnknownTable("title".into());
        assert!(e.to_string().contains("title"));
        let e = StorageError::UnknownColumn { table: "t".into(), column: "c".into() };
        assert!(e.to_string().contains("`c`"));
        assert!(e.to_string().contains("`t`"));
        let e = StorageError::TypeMismatch { column: "id".into(), expected: "Int", got: "Str" };
        assert!(e.to_string().contains("Int"));
        let e = StorageError::ArityMismatch { expected: 3, got: 2 };
        assert!(e.to_string().contains('3'));
        let e = StorageError::UnsupportedIndexColumn { column: "name".into() };
        assert!(e.to_string().contains("name"));
        let e = StorageError::DuplicateTable("x".into());
        assert!(e.to_string().contains('x'));
        let e = StorageError::Invariant("boom".into());
        assert!(e.to_string().contains("boom"));
        let e = StorageError::Io("disk full".into());
        assert!(e.to_string().contains("disk full"));
        let e = StorageError::SnapshotCorrupt("bad checksum".into());
        assert!(e.to_string().contains("bad checksum"));
        let e = StorageError::SnapshotVersion { found: 9, supported: 1 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('1'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<T: std::error::Error>() {}
        assert_err::<StorageError>();
    }
}
