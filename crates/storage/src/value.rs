//! Scalar values and data types.

use std::fmt;

/// The data types supported by the storage engine.
///
/// The JOB schema only requires 64-bit integers (surrogate keys, years,
/// ordinal attributes) and strings (names, titles, free-form info values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// Variable-length UTF-8 string, dictionary encoded in columns.
    Str,
}

impl DataType {
    /// Human readable name, used in error messages.
    pub fn name(&self) -> &'static str {
        match self {
            DataType::Int => "Int",
            DataType::Str => "Str",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single scalar value used when constructing rows and expressing literals
/// in predicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// An integer value.
    Int(i64),
    /// A string value.
    Str(String),
}

impl Value {
    /// The data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Human readable type name, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Int(_) => "Int",
            Value::Str(_) => "Str",
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extracts the integer value if present.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts the string value if present.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// Quotes `s` as a SQL string literal: wraps it in single quotes and doubles
/// embedded quotes (`it's` → `'it''s'`), so emitted SQL re-lexes to the same
/// string.
pub fn sql_string_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for ch in s.chars() {
        if ch == '\'' {
            out.push('\'');
        }
        out.push(ch);
    }
    out.push('\'');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_of_values() {
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Str("a".into()).data_type(), Some(DataType::Str));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(42i64), Value::Int(42));
        assert_eq!(Value::from("abc"), Value::Str("abc".into()));
        assert_eq!(Value::from(String::from("x")), Value::Str("x".into()));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
        assert_eq!(Value::from(Some(7i64)), Value::Int(7));
    }

    #[test]
    fn accessors() {
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Str("s".into()).as_int(), None);
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
        assert_eq!(Value::Int(5).as_str(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Str("movie".into()).to_string(), "'movie'");
        assert_eq!(DataType::Int.to_string(), "Int");
        assert_eq!(DataType::Str.to_string(), "Str");
    }

    #[test]
    fn sql_literals_quote_and_escape() {
        assert_eq!(sql_string_literal("movie"), "'movie'");
        assert_eq!(sql_string_literal("it's"), "'it''s'");
        assert_eq!(sql_string_literal(""), "''");
        assert_eq!(sql_string_literal("o'brien"), "'o''brien'");
    }
}
