//! Columnar storage: encoded columns, the column builder, and string
//! dictionaries.
//!
//! A column is a sequence of fixed-capacity encoded pages
//! ([`crate::encoding`]) plus a validity bitmap; string columns add a
//! dictionary mapping `u32` codes to distinct strings.  Columns are built
//! through [`ColumnBuilder`], which buffers at most one page of raw values
//! at a time — ingestion never holds a full-table `Vec<i64>` — and encodes
//! each page as it fills.  Pages loaded from a snapshot may be **lazy**:
//! the first access faults the page in through a [`PageStore`] so load cost
//! is O(touched data).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::bitmap::Bitmap;
use crate::encoding::{fnv1a64, CodePage, EncodingPolicy, IntPage, PageData, PageStore, PAGE_ROWS};
use crate::value::{DataType, Value};

/// A per-column string dictionary.
///
/// String columns store a `u32` code per row; the dictionary maps codes to
/// the distinct strings that occur in the column.  Equality, `IN` and `LIKE`
/// predicates are evaluated once against the dictionary and then reduced to
/// integer comparisons on codes, which keeps string-heavy workloads fast.
///
/// Interning is O(1) amortized and stores each distinct string **once**:
/// the reverse lookup is a hash→codes bucket map probed against the forward
/// `strings` vector, not a second `HashMap<String, u32>` copy.  At
/// ingestion scale (millions of rows, hundreds of thousands of distinct
/// strings) this halves dictionary memory and keeps builds linear.
#[derive(Debug, Clone, Default)]
pub struct StringDict {
    strings: Vec<String>,
    /// FNV-1a hash of a string → codes of strings with that hash (almost
    /// always one entry; collisions chain).
    buckets: HashMap<u64, Vec<u32>>,
    /// Total bytes of interned string content, maintained incrementally.
    content_bytes: usize,
}

impl StringDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a dictionary from its strings in code order (string `i` gets
    /// code `i`), the inverse of collecting [`StringDict::iter`].  Codes must
    /// be preserved exactly when a column is deserialised, because row data
    /// stores codes, not strings.  Returns `None` if the strings are not
    /// distinct (duplicate strings cannot round-trip to unique codes).
    pub fn from_strings(strings: Vec<String>) -> Option<Self> {
        let mut dict = StringDict {
            strings: Vec::with_capacity(strings.len()),
            buckets: HashMap::with_capacity(strings.len()),
            content_bytes: 0,
        };
        for s in strings {
            let before = dict.strings.len();
            dict.intern(&s);
            if dict.strings.len() == before {
                return None;
            }
        }
        Some(dict)
    }

    /// Interns `s`, returning its code.  O(1) amortized.
    pub fn intern(&mut self, s: &str) -> u32 {
        let hash = fnv1a64(s.as_bytes());
        if let Some(codes) = self.buckets.get(&hash) {
            for &code in codes {
                if self.strings[code as usize] == s {
                    return code;
                }
            }
        }
        let code = self.strings.len() as u32;
        self.strings.push(s.to_owned());
        self.buckets.entry(hash).or_default().push(code);
        self.content_bytes += s.len();
        code
    }

    /// Returns the code of `s` if it is present, without interning.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        let hash = fnv1a64(s.as_bytes());
        let codes = self.buckets.get(&hash)?;
        codes.iter().copied().find(|&code| self.strings[code as usize] == s)
    }

    /// The string for `code`.
    ///
    /// # Panics
    /// Panics if `code` is not a valid dictionary code.
    pub fn string(&self, code: u32) -> &str {
        &self.strings[code as usize]
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(code, string)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (i as u32, s.as_str()))
    }

    /// Approximate heap bytes held by the dictionary (string content plus
    /// per-entry bookkeeping).
    pub fn heap_bytes(&self) -> usize {
        // 24 bytes String header + ~16 bytes bucket entry per string.
        self.content_bytes + self.strings.len() * 40
    }
}

// ---------------------------------------------------------------------------
// Page slots (ready or lazily faulted)
// ---------------------------------------------------------------------------

/// Where a lazy page's bytes live in the snapshot file.
#[derive(Debug, Clone)]
pub(crate) struct PageFetch {
    pub(crate) store: Arc<PageStore>,
    pub(crate) offset: u64,
    pub(crate) len: u32,
    pub(crate) checksum: u64,
}

/// One page of a column: either decoded in memory or a fetch recipe plus a
/// once-cell the first reader fills.
#[derive(Debug, Clone, Default)]
struct PageSlot {
    cell: OnceLock<PageData>,
    fetch: Option<PageFetch>,
}

impl PageSlot {
    fn ready(page: PageData) -> Self {
        let cell = OnceLock::new();
        cell.set(page).expect("fresh cell");
        PageSlot { cell, fetch: None }
    }

    fn lazy(fetch: PageFetch) -> Self {
        PageSlot { cell: OnceLock::new(), fetch: Some(fetch) }
    }

    /// Returns the decoded page, faulting it in on first touch.
    ///
    /// # Panics
    /// A lazy page that fails to read, checksum, or decode panics with
    /// context: once a snapshot is opened lazily, a vanishing or corrupted
    /// backing file mid-query is unrecoverable, exactly like a SIGBUS on an
    /// mmap'ed region.  Eager loads ([`crate::catalog::Database::load_snapshot`])
    /// verify everything up front and never take this path.
    fn get(&self) -> &PageData {
        self.cell.get_or_init(|| {
            let fetch = self.fetch.as_ref().expect("page slot is ready or has a fetch recipe");
            let bytes = fetch.store.read_at(fetch.offset, fetch.len as usize).unwrap_or_else(|e| {
                panic!(
                    "lazy snapshot page read failed ({} bytes at offset {}): {e}",
                    fetch.len, fetch.offset
                )
            });
            if fnv1a64(&bytes) != fetch.checksum {
                panic!(
                    "lazy snapshot page at offset {} failed its checksum — the snapshot file \
                     changed or corrupted after open",
                    fetch.offset
                );
            }
            PageData::from_bytes(&bytes).unwrap_or_else(|e| {
                panic!("lazy snapshot page at offset {} is malformed: {e}", fetch.offset)
            })
        })
    }

    /// The page if it is already resident (never faults).
    fn resident(&self) -> Option<&PageData> {
        self.cell.get()
    }
}

// ---------------------------------------------------------------------------
// EncodedColumn
// ---------------------------------------------------------------------------

/// The physical representation of one column: a validity bitmap, an
/// optional string dictionary, and a sequence of encoded pages of
/// [`PAGE_ROWS`] rows each.
///
/// Null rows occupy a slot in the page (holding a copy of the last non-null
/// value, so they never widen a frame or break a run) and are masked by the
/// validity bitmap; the slot value must never be read directly.
#[derive(Debug, Clone)]
pub struct EncodedColumn {
    dtype: DataType,
    len: usize,
    validity: Bitmap,
    dict: Option<StringDict>,
    pages: Vec<PageSlot>,
    /// Sum of encoded page byte sizes, tracked so metrics never fault lazy
    /// pages in.
    encoded_data_bytes: usize,
}

impl EncodedColumn {
    /// Creates an empty column of the given type.
    pub fn empty(dtype: DataType) -> Self {
        ColumnBuilder::new(dtype).finish()
    }

    /// Assembles a column from already-encoded parts (the snapshot loader's
    /// constructor).  `pages` pairs each page with its row count so `len`
    /// can be validated against the directory.
    pub(crate) fn from_encoded_parts(
        dtype: DataType,
        len: usize,
        validity: Bitmap,
        dict: Option<StringDict>,
        pages: Vec<PageData>,
        encoded_data_bytes: usize,
    ) -> Self {
        EncodedColumn {
            dtype,
            len,
            validity,
            dict,
            pages: pages.into_iter().map(PageSlot::ready).collect(),
            encoded_data_bytes,
        }
    }

    /// Assembles a column whose pages fault in lazily from a snapshot file.
    pub(crate) fn from_lazy_parts(
        dtype: DataType,
        len: usize,
        validity: Bitmap,
        dict: Option<StringDict>,
        fetches: Vec<PageFetch>,
        encoded_data_bytes: usize,
    ) -> Self {
        EncodedColumn {
            dtype,
            len,
            validity,
            dict,
            pages: fetches.into_iter().map(PageSlot::lazy).collect(),
            encoded_data_bytes,
        }
    }

    /// The data type of this column.
    pub fn data_type(&self) -> DataType {
        self.dtype
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The row range covered by page `p`.
    pub fn page_rows(&self, p: usize) -> std::ops::Range<usize> {
        let start = p * PAGE_ROWS;
        start..(start + PAGE_ROWS).min(self.len)
    }

    /// The decoded page `p` (faulting it in if lazy).
    #[inline]
    pub fn page(&self, p: usize) -> &PageData {
        self.pages[p].get()
    }

    /// Page `p` as an integer page.
    ///
    /// # Panics
    /// Panics if this is not an integer column.
    #[inline]
    pub fn int_page(&self, p: usize) -> &IntPage {
        match self.pages[p].get() {
            PageData::Int(page) => page,
            PageData::Code(_) => panic!("int_page on a string column"),
        }
    }

    /// Page `p` as a dictionary-code page.
    ///
    /// # Panics
    /// Panics if this is not a string column.
    #[inline]
    pub fn code_page(&self, p: usize) -> &CodePage {
        match self.pages[p].get() {
            PageData::Code(page) => page,
            PageData::Int(_) => panic!("code_page on an int column"),
        }
    }

    /// True if the row at `row` is NULL.
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        !self.validity.get(row)
    }

    /// The integer value at `row`, or `None` if the row is NULL or the column
    /// is not an integer column.
    #[inline]
    pub fn int_at(&self, row: usize) -> Option<i64> {
        if self.dtype != DataType::Int {
            return None;
        }
        assert!(row < self.len, "row {row} out of bounds ({} rows)", self.len);
        if !self.validity.get(row) {
            return None;
        }
        Some(self.int_page(row / PAGE_ROWS).get(row % PAGE_ROWS))
    }

    /// The string value at `row`, or `None` if the row is NULL or the column
    /// is not a string column.
    #[inline]
    pub fn str_at(&self, row: usize) -> Option<&str> {
        let code = self.code_at(row)?;
        Some(self.dict.as_ref().expect("str column has dict").string(code))
    }

    /// The dictionary code at `row` for string columns (`None` if null or not
    /// a string column).
    #[inline]
    pub fn code_at(&self, row: usize) -> Option<u32> {
        if self.dtype != DataType::Str {
            return None;
        }
        assert!(row < self.len, "row {row} out of bounds ({} rows)", self.len);
        if !self.validity.get(row) {
            return None;
        }
        Some(self.code_page(row / PAGE_ROWS).get(row % PAGE_ROWS))
    }

    /// The value at `row` as an owned [`Value`].
    pub fn value_at(&self, row: usize) -> Value {
        match self.dtype {
            DataType::Int => self.int_at(row).map(Value::Int).unwrap_or(Value::Null),
            DataType::Str => {
                self.str_at(row).map(|s| Value::Str(s.to_owned())).unwrap_or(Value::Null)
            }
        }
    }

    /// Number of non-null rows.
    pub fn non_null_count(&self) -> usize {
        self.validity.count_ones()
    }

    /// Exact number of distinct non-null values, computed in one decode pass
    /// over the pages.
    pub fn distinct_count_exact(&self) -> usize {
        match self.dtype {
            DataType::Int => {
                let mut set = std::collections::HashSet::new();
                let mut scratch = Vec::with_capacity(PAGE_ROWS.min(self.len));
                for p in 0..self.page_count() {
                    scratch.clear();
                    self.int_page(p).decode_into(&mut scratch);
                    let base = p * PAGE_ROWS;
                    for (i, &v) in scratch.iter().enumerate() {
                        if self.validity.get(base + i) {
                            set.insert(v);
                        }
                    }
                }
                set.len()
            }
            DataType::Str => {
                let mut set = std::collections::HashSet::new();
                let mut scratch = Vec::with_capacity(PAGE_ROWS.min(self.len));
                for p in 0..self.page_count() {
                    scratch.clear();
                    self.code_page(p).decode_into(&mut scratch);
                    let base = p * PAGE_ROWS;
                    for (i, &c) in scratch.iter().enumerate() {
                        if self.validity.get(base + i) {
                            set.insert(c);
                        }
                    }
                }
                set.len()
            }
        }
    }

    /// Column-wide min/max over non-null rows for integer columns, folded
    /// from per-page metadata without decoding (`None` for string columns,
    /// all-null or unresolved-lazy columns).
    pub fn int_min_max(&self) -> Option<(i64, i64)> {
        if self.dtype != DataType::Int {
            return None;
        }
        let mut acc: Option<(i64, i64)> = None;
        for slot in &self.pages {
            let page = slot.resident()?;
            if let PageData::Int(p) = page {
                if let Some((lo, hi)) = p.min_max() {
                    acc = Some(match acc {
                        Some((alo, ahi)) => (alo.min(lo), ahi.max(hi)),
                        None => (lo, hi),
                    });
                }
            }
        }
        acc
    }

    /// The string dictionary for string columns.
    pub fn dict(&self) -> Option<&StringDict> {
        self.dict.as_ref()
    }

    /// The validity bitmap.
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }

    /// Encoded bytes of the page data (excluding dictionary and validity).
    /// Never faults lazy pages.
    pub fn encoded_data_bytes(&self) -> usize {
        self.encoded_data_bytes
    }

    /// Bytes the same rows would occupy un-encoded (8 per int row, 4 per
    /// dictionary-code row) — the denominator of the compression ratio.
    pub fn plain_data_bytes(&self) -> usize {
        match self.dtype {
            DataType::Int => self.len * 8,
            DataType::Str => self.len * 4,
        }
    }

    /// Approximate heap bytes of the dictionary (0 for int columns).
    pub fn dict_bytes(&self) -> usize {
        self.dict.as_ref().map(StringDict::heap_bytes).unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// ColumnBuilder
// ---------------------------------------------------------------------------

/// Builds an [`EncodedColumn`] value by value with bounded memory: at most
/// one page of raw values is buffered; full pages are encoded and the raw
/// buffer recycled.  This is the single write path shared by datagen, CSV
/// ingestion, and tests.
#[derive(Debug)]
pub struct ColumnBuilder {
    dtype: DataType,
    policy: EncodingPolicy,
    validity: Bitmap,
    dict: Option<StringDict>,
    pending_ints: Vec<i64>,
    pending_codes: Vec<u32>,
    pending_valid: Vec<bool>,
    /// Last non-null value, copied into null slots so they never widen a
    /// frame or break a run.
    last_int: i64,
    last_code: u32,
    pages: Vec<PageSlot>,
    len: usize,
    encoded_data_bytes: usize,
}

impl ColumnBuilder {
    /// Creates a builder with the default (auto) encoding policy.
    pub fn new(dtype: DataType) -> Self {
        Self::with_policy(dtype, EncodingPolicy::Auto)
    }

    /// Creates a builder with an explicit encoding policy.
    pub fn with_policy(dtype: DataType, policy: EncodingPolicy) -> Self {
        ColumnBuilder {
            dtype,
            policy,
            validity: Bitmap::new(),
            dict: (dtype == DataType::Str).then(StringDict::new),
            pending_ints: Vec::new(),
            pending_codes: Vec::new(),
            pending_valid: Vec::new(),
            last_int: 0,
            last_code: 0,
            pages: Vec::new(),
            len: 0,
            encoded_data_bytes: 0,
        }
    }

    /// The column type being built.
    pub fn data_type(&self) -> DataType {
        self.dtype
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one value.  Returns `false` on a type mismatch.
    pub fn push(&mut self, value: &Value) -> bool {
        match (self.dtype, value) {
            (DataType::Int, Value::Int(v)) => {
                self.last_int = *v;
                self.pending_ints.push(*v);
                self.pending_valid.push(true);
                self.validity.push(true);
            }
            (DataType::Int, Value::Null) => {
                self.pending_ints.push(self.last_int);
                self.pending_valid.push(false);
                self.validity.push(false);
            }
            (DataType::Str, Value::Str(s)) => {
                let code = self.dict.as_mut().expect("str builder has dict").intern(s);
                self.last_code = code;
                self.pending_codes.push(code);
                self.pending_valid.push(true);
                self.validity.push(true);
            }
            (DataType::Str, Value::Null) => {
                self.pending_codes.push(self.last_code);
                self.pending_valid.push(false);
                self.validity.push(false);
            }
            _ => return false,
        }
        self.len += 1;
        if self.pending_valid.len() == PAGE_ROWS {
            self.flush_page();
        }
        true
    }

    fn flush_page(&mut self) {
        // Null slots copy the *last* non-null value so they never widen the
        // page's frame — but nulls at the start of a page carry a value from
        // the previous page (or the initial 0), which can lie far outside
        // this page's range.  Backfill them from the first non-null value of
        // the page instead; all-null pages keep their placeholder runs,
        // which encode compactly regardless.
        if let Some(first) = self.pending_valid.iter().position(|&v| v) {
            if first > 0 {
                match self.dtype {
                    DataType::Int => {
                        let fill = self.pending_ints[first];
                        self.pending_ints[..first].fill(fill);
                    }
                    DataType::Str => {
                        let fill = self.pending_codes[first];
                        self.pending_codes[..first].fill(fill);
                    }
                }
            }
        }
        let page = match self.dtype {
            DataType::Int => {
                PageData::Int(IntPage::encode(&self.pending_ints, &self.pending_valid, self.policy))
            }
            DataType::Str => PageData::Code(CodePage::encode(
                &self.pending_codes,
                &self.pending_valid,
                self.policy,
            )),
        };
        self.encoded_data_bytes += page.encoded_bytes();
        self.pages.push(PageSlot::ready(page));
        self.pending_ints.clear();
        self.pending_codes.clear();
        self.pending_valid.clear();
    }

    /// Finalises the column, encoding any partial trailing page.
    pub fn finish(mut self) -> EncodedColumn {
        if !self.pending_valid.is_empty() {
            self.flush_page();
        }
        EncodedColumn {
            dtype: self.dtype,
            len: self.len,
            validity: self.validity,
            dict: self.dict,
            pages: self.pages,
            encoded_data_bytes: self.encoded_data_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::IntEncoding;

    #[test]
    fn string_dict_rebuilds_from_code_ordered_strings() {
        let mut original = StringDict::new();
        original.intern("us");
        original.intern("de");
        original.intern("fr");
        let strings: Vec<String> = original.iter().map(|(_, s)| s.to_owned()).collect();
        let rebuilt = StringDict::from_strings(strings).unwrap();
        assert_eq!(rebuilt.len(), 3);
        for (code, s) in original.iter() {
            assert_eq!(rebuilt.code_of(s), Some(code));
            assert_eq!(rebuilt.string(code), s);
        }
        assert!(StringDict::from_strings(vec!["a".into(), "a".into()]).is_none());
    }

    #[test]
    fn string_dict_interning_is_idempotent() {
        let mut d = StringDict::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        let a2 = d.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.string(a), "alpha");
        assert_eq!(d.code_of("beta"), Some(b));
        assert_eq!(d.code_of("missing"), None);
        let all: Vec<_> = d.iter().map(|(_, s)| s.to_owned()).collect();
        assert_eq!(all, vec!["alpha", "beta"]);
        assert!(d.heap_bytes() > 0);
    }

    /// The satellite bench guard: interning must stay O(1) amortized at
    /// ingestion scale.  200k distinct strings take well under a second
    /// with hash lookups; an accidental O(n) probe per intern would be
    /// ~2·10^10 comparisons and blow far past the generous bound.
    #[test]
    fn string_dict_interning_scales_linearly() {
        let n = 200_000u32;
        let started = std::time::Instant::now();
        let mut d = StringDict::new();
        for i in 0..n {
            d.intern(&format!("distinct-string-{i}"));
        }
        // Re-intern everything: the hot (hit) path must be O(1) too.
        for i in 0..n {
            assert_eq!(d.intern(&format!("distinct-string-{i}")), i);
        }
        assert_eq!(d.len(), n as usize);
        let elapsed = started.elapsed();
        assert!(
            elapsed < std::time::Duration::from_secs(20),
            "interning 200k strings took {elapsed:?} — lookup has regressed from O(1)"
        );
    }

    fn int_col(values: &[Option<i64>]) -> EncodedColumn {
        let mut b = ColumnBuilder::new(DataType::Int);
        for v in values {
            assert!(b.push(&v.map(Value::Int).unwrap_or(Value::Null)));
        }
        b.finish()
    }

    #[test]
    fn int_column_roundtrip_with_nulls() {
        let col = int_col(&[Some(10), None, Some(-5)]);
        assert_eq!(col.len(), 3);
        assert_eq!(col.int_at(0), Some(10));
        assert_eq!(col.int_at(1), None);
        assert_eq!(col.int_at(2), Some(-5));
        assert!(col.is_null(1));
        assert!(!col.is_null(0));
        assert_eq!(col.non_null_count(), 2);
        assert_eq!(col.value_at(1), Value::Null);
        assert_eq!(col.value_at(2), Value::Int(-5));
        assert_eq!(col.data_type(), DataType::Int);
        assert_eq!(col.int_min_max(), Some((-5, 10)));
    }

    #[test]
    fn str_column_roundtrip_with_nulls() {
        let mut b = ColumnBuilder::new(DataType::Str);
        assert!(b.push(&Value::Str("us".into())));
        assert!(b.push(&Value::Str("de".into())));
        assert!(b.push(&Value::Null));
        assert!(b.push(&Value::Str("us".into())));
        let col = b.finish();
        assert_eq!(col.len(), 4);
        assert_eq!(col.str_at(0), Some("us"));
        assert_eq!(col.str_at(2), None);
        assert_eq!(col.str_at(3), Some("us"));
        assert_eq!(col.code_at(0), col.code_at(3));
        assert_ne!(col.code_at(0), col.code_at(1));
        assert_eq!(col.distinct_count_exact(), 2);
        assert_eq!(col.dict().unwrap().len(), 2);
        assert_eq!(col.value_at(0), Value::Str("us".into()));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut b = ColumnBuilder::new(DataType::Int);
        assert!(!b.push(&Value::Str("oops".into())));
        let mut b = ColumnBuilder::new(DataType::Str);
        assert!(!b.push(&Value::Int(1)));
    }

    #[test]
    fn distinct_count_ignores_nulls() {
        let col = int_col(&[Some(1), Some(2), Some(2), Some(3), Some(3), Some(3), None, None]);
        assert_eq!(col.distinct_count_exact(), 3);
        assert_eq!(col.non_null_count(), 6);
    }

    #[test]
    fn cross_type_accessors_return_none() {
        let int_col = int_col(&[Some(1)]);
        assert_eq!(int_col.str_at(0), None);
        assert_eq!(int_col.code_at(0), None);
        assert!(int_col.dict().is_none());

        let mut b = ColumnBuilder::new(DataType::Str);
        b.push(&Value::Str("x".into()));
        let str_col = b.finish();
        assert_eq!(str_col.int_at(0), None);
    }

    #[test]
    fn columns_span_multiple_pages() {
        let n = PAGE_ROWS + PAGE_ROWS / 2;
        let mut b = ColumnBuilder::new(DataType::Int);
        for i in 0..n {
            let v = if i % 97 == 0 { Value::Null } else { Value::Int(i as i64) };
            assert!(b.push(&v));
        }
        let col = b.finish();
        assert_eq!(col.len(), n);
        assert_eq!(col.page_count(), 2);
        assert_eq!(col.page_rows(0), 0..PAGE_ROWS);
        assert_eq!(col.page_rows(1), PAGE_ROWS..n);
        for i in 0..n {
            let expected = if i % 97 == 0 { None } else { Some(i as i64) };
            assert_eq!(col.int_at(i), expected, "row {i}");
        }
        assert!(col.encoded_data_bytes() < col.plain_data_bytes());
    }

    #[test]
    fn null_slots_do_not_widen_the_frame() {
        // Nulls between large values copy the last value: the page stays a
        // narrow FOR frame instead of spanning down to zero.
        let mut b = ColumnBuilder::new(DataType::Int);
        for i in 0..1000 {
            if i % 3 == 0 {
                b.push(&Value::Null);
            } else {
                b.push(&Value::Int(1_000_000 + (i % 50) as i64));
            }
        }
        let col = b.finish();
        match col.int_page(0).encoding() {
            IntEncoding::For { width, .. } => {
                assert!(*width <= 6, "nulls widened the frame to {width} bits")
            }
            other => panic!("expected FOR encoding, got {other:?}"),
        }
        // i = 50 is non-null (50 % 3 != 0) and contributes 1_000_000.
        assert_eq!(col.int_min_max(), Some((1_000_000, 1_000_049)));
    }

    #[test]
    fn empty_column_works() {
        let col = EncodedColumn::empty(DataType::Int);
        assert!(col.is_empty());
        assert_eq!(col.page_count(), 0);
        assert_eq!(col.distinct_count_exact(), 0);
        assert_eq!(col.int_min_max(), None);
        let col = EncodedColumn::empty(DataType::Str);
        assert!(col.dict().unwrap().is_empty());
    }
}
