//! Columnar storage: typed column data and string dictionaries.

use std::collections::HashMap;

use crate::bitmap::Bitmap;
use crate::value::{DataType, Value};

/// A per-column string dictionary.
///
/// String columns store a `u32` code per row; the dictionary maps codes to
/// the distinct strings that occur in the column.  Equality, `IN` and `LIKE`
/// predicates are evaluated once against the dictionary and then reduced to
/// integer comparisons on codes, which keeps string-heavy workloads fast.
#[derive(Debug, Clone, Default)]
pub struct StringDict {
    strings: Vec<String>,
    lookup: HashMap<String, u32>,
}

impl StringDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a dictionary from its strings in code order (string `i` gets
    /// code `i`), the inverse of collecting [`StringDict::iter`].  Codes must
    /// be preserved exactly when a column is deserialised, because row data
    /// stores codes, not strings.  Returns `None` if the strings are not
    /// distinct (duplicate strings cannot round-trip to unique codes).
    pub fn from_strings(strings: Vec<String>) -> Option<Self> {
        let mut lookup = HashMap::with_capacity(strings.len());
        for (code, s) in strings.iter().enumerate() {
            if lookup.insert(s.clone(), code as u32).is_some() {
                return None;
            }
        }
        Some(StringDict { strings, lookup })
    }

    /// Interns `s`, returning its code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.lookup.get(s) {
            return code;
        }
        let code = self.strings.len() as u32;
        self.strings.push(s.to_owned());
        self.lookup.insert(s.to_owned(), code);
        code
    }

    /// Returns the code of `s` if it is present, without interning.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.lookup.get(s).copied()
    }

    /// The string for `code`.
    ///
    /// # Panics
    /// Panics if `code` is not a valid dictionary code.
    pub fn string(&self, code: u32) -> &str {
        &self.strings[code as usize]
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(code, string)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (i as u32, s.as_str()))
    }
}

/// The physical representation of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Integer column: dense values plus a validity bitmap (`true` = non-null).
    Int {
        /// Row values; the entry for a null row is 0 and must not be read.
        values: Vec<i64>,
        /// Validity bitmap, one bit per row.
        validity: Bitmap,
    },
    /// Dictionary-encoded string column.
    Str {
        /// Dictionary code per row; the entry for a null row is 0 and must not be read.
        codes: Vec<u32>,
        /// The dictionary of distinct strings.
        dict: StringDict,
        /// Validity bitmap, one bit per row.
        validity: Bitmap,
    },
}

impl ColumnData {
    /// Creates an empty column of the given type.
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => ColumnData::Int { values: Vec::new(), validity: Bitmap::new() },
            DataType::Str => ColumnData::Str {
                codes: Vec::new(),
                dict: StringDict::new(),
                validity: Bitmap::new(),
            },
        }
    }

    /// The data type of this column.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int { .. } => DataType::Int,
            ColumnData::Str { .. } => DataType::Str,
        }
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int { values, .. } => values.len(),
            ColumnData::Str { codes, .. } => codes.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one value.  Returns `false` on a type mismatch.
    pub fn push(&mut self, value: &Value) -> bool {
        match (self, value) {
            (ColumnData::Int { values, validity }, Value::Int(v)) => {
                values.push(*v);
                validity.push(true);
                true
            }
            (ColumnData::Int { values, validity }, Value::Null) => {
                values.push(0);
                validity.push(false);
                true
            }
            (ColumnData::Str { codes, dict, validity }, Value::Str(s)) => {
                let code = dict.intern(s);
                codes.push(code);
                validity.push(true);
                true
            }
            (ColumnData::Str { codes, validity, .. }, Value::Null) => {
                codes.push(0);
                validity.push(false);
                true
            }
            _ => false,
        }
    }

    /// True if the row at `row` is NULL.
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        match self {
            ColumnData::Int { validity, .. } | ColumnData::Str { validity, .. } => {
                !validity.get(row)
            }
        }
    }

    /// The integer value at `row`, or `None` if the row is NULL or the column
    /// is not an integer column.
    #[inline]
    pub fn int_at(&self, row: usize) -> Option<i64> {
        match self {
            ColumnData::Int { values, validity } => {
                if validity.get(row) {
                    Some(values[row])
                } else {
                    None
                }
            }
            ColumnData::Str { .. } => None,
        }
    }

    /// The string value at `row`, or `None` if the row is NULL or the column
    /// is not a string column.
    #[inline]
    pub fn str_at(&self, row: usize) -> Option<&str> {
        match self {
            ColumnData::Str { codes, dict, validity } => {
                if validity.get(row) {
                    Some(dict.string(codes[row]))
                } else {
                    None
                }
            }
            ColumnData::Int { .. } => None,
        }
    }

    /// The dictionary code at `row` for string columns (`None` if null or not
    /// a string column).
    #[inline]
    pub fn code_at(&self, row: usize) -> Option<u32> {
        match self {
            ColumnData::Str { codes, validity, .. } => {
                if validity.get(row) {
                    Some(codes[row])
                } else {
                    None
                }
            }
            ColumnData::Int { .. } => None,
        }
    }

    /// The value at `row` as an owned [`Value`].
    pub fn value_at(&self, row: usize) -> Value {
        if self.is_null(row) {
            return Value::Null;
        }
        match self {
            ColumnData::Int { values, .. } => Value::Int(values[row]),
            ColumnData::Str { codes, dict, .. } => Value::Str(dict.string(codes[row]).to_owned()),
        }
    }

    /// Number of non-null rows.
    pub fn non_null_count(&self) -> usize {
        match self {
            ColumnData::Int { validity, .. } | ColumnData::Str { validity, .. } => {
                validity.count_ones()
            }
        }
    }

    /// Exact number of distinct non-null values.
    pub fn distinct_count_exact(&self) -> usize {
        match self {
            ColumnData::Int { values, validity } => {
                let mut set = std::collections::HashSet::new();
                for (i, v) in values.iter().enumerate() {
                    if validity.get(i) {
                        set.insert(*v);
                    }
                }
                set.len()
            }
            ColumnData::Str { codes, validity, .. } => {
                let mut set = std::collections::HashSet::new();
                for (i, c) in codes.iter().enumerate() {
                    if validity.get(i) {
                        set.insert(*c);
                    }
                }
                set.len()
            }
        }
    }

    /// The string dictionary for string columns.
    pub fn dict(&self) -> Option<&StringDict> {
        match self {
            ColumnData::Str { dict, .. } => Some(dict),
            ColumnData::Int { .. } => None,
        }
    }

    /// Raw integer values (including slots for null rows); only for Int columns.
    pub fn int_values(&self) -> Option<&[i64]> {
        match self {
            ColumnData::Int { values, .. } => Some(values),
            ColumnData::Str { .. } => None,
        }
    }

    /// Raw dictionary codes (including slots for null rows); only for Str columns.
    pub fn str_codes(&self) -> Option<&[u32]> {
        match self {
            ColumnData::Str { codes, .. } => Some(codes),
            ColumnData::Int { .. } => None,
        }
    }

    /// The validity bitmap.
    pub fn validity(&self) -> &Bitmap {
        match self {
            ColumnData::Int { validity, .. } | ColumnData::Str { validity, .. } => validity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_dict_rebuilds_from_code_ordered_strings() {
        let mut original = StringDict::new();
        original.intern("us");
        original.intern("de");
        original.intern("fr");
        let strings: Vec<String> = original.iter().map(|(_, s)| s.to_owned()).collect();
        let rebuilt = StringDict::from_strings(strings).unwrap();
        assert_eq!(rebuilt.len(), 3);
        for (code, s) in original.iter() {
            assert_eq!(rebuilt.code_of(s), Some(code));
            assert_eq!(rebuilt.string(code), s);
        }
        assert!(StringDict::from_strings(vec!["a".into(), "a".into()]).is_none());
    }

    #[test]
    fn string_dict_interning_is_idempotent() {
        let mut d = StringDict::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        let a2 = d.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.string(a), "alpha");
        assert_eq!(d.code_of("beta"), Some(b));
        assert_eq!(d.code_of("missing"), None);
        let all: Vec<_> = d.iter().map(|(_, s)| s.to_owned()).collect();
        assert_eq!(all, vec!["alpha", "beta"]);
    }

    #[test]
    fn int_column_roundtrip_with_nulls() {
        let mut col = ColumnData::new(DataType::Int);
        assert!(col.push(&Value::Int(10)));
        assert!(col.push(&Value::Null));
        assert!(col.push(&Value::Int(-5)));
        assert_eq!(col.len(), 3);
        assert_eq!(col.int_at(0), Some(10));
        assert_eq!(col.int_at(1), None);
        assert_eq!(col.int_at(2), Some(-5));
        assert!(col.is_null(1));
        assert!(!col.is_null(0));
        assert_eq!(col.non_null_count(), 2);
        assert_eq!(col.value_at(1), Value::Null);
        assert_eq!(col.value_at(2), Value::Int(-5));
        assert_eq!(col.data_type(), DataType::Int);
    }

    #[test]
    fn str_column_roundtrip_with_nulls() {
        let mut col = ColumnData::new(DataType::Str);
        assert!(col.push(&Value::Str("us".into())));
        assert!(col.push(&Value::Str("de".into())));
        assert!(col.push(&Value::Null));
        assert!(col.push(&Value::Str("us".into())));
        assert_eq!(col.len(), 4);
        assert_eq!(col.str_at(0), Some("us"));
        assert_eq!(col.str_at(2), None);
        assert_eq!(col.str_at(3), Some("us"));
        assert_eq!(col.code_at(0), col.code_at(3));
        assert_ne!(col.code_at(0), col.code_at(1));
        assert_eq!(col.distinct_count_exact(), 2);
        assert_eq!(col.dict().unwrap().len(), 2);
        assert_eq!(col.value_at(0), Value::Str("us".into()));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut col = ColumnData::new(DataType::Int);
        assert!(!col.push(&Value::Str("oops".into())));
        let mut col = ColumnData::new(DataType::Str);
        assert!(!col.push(&Value::Int(1)));
    }

    #[test]
    fn distinct_count_ignores_nulls() {
        let mut col = ColumnData::new(DataType::Int);
        for v in [1, 2, 2, 3, 3, 3] {
            col.push(&Value::Int(v));
        }
        col.push(&Value::Null);
        col.push(&Value::Null);
        assert_eq!(col.distinct_count_exact(), 3);
        assert_eq!(col.non_null_count(), 6);
    }

    #[test]
    fn cross_type_accessors_return_none() {
        let mut int_col = ColumnData::new(DataType::Int);
        int_col.push(&Value::Int(1));
        assert_eq!(int_col.str_at(0), None);
        assert_eq!(int_col.code_at(0), None);
        assert!(int_col.dict().is_none());
        assert!(int_col.str_codes().is_none());
        assert!(int_col.int_values().is_some());

        let mut str_col = ColumnData::new(DataType::Str);
        str_col.push(&Value::Str("x".into()));
        assert_eq!(str_col.int_at(0), None);
        assert!(str_col.int_values().is_none());
        assert!(str_col.str_codes().is_some());
    }
}
