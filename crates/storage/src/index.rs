//! Unclustered secondary indexes.
//!
//! The paper's experiments hinge on the available *access paths*: only
//! primary-key indexes, or primary plus foreign-key indexes.  Joins in JOB are
//! always on integer surrogate keys, so indexes are built over integer
//! columns only.  Two flavours are provided:
//!
//! * [`HashIndex`] — equality lookups, used by index-nested-loop joins;
//! * [`OrderedIndex`] — a sorted `(key, row)` vector supporting range scans,
//!   the in-memory analogue of PostgreSQL's unclustered B+-trees.

use std::collections::HashMap;

use crate::error::StorageError;
use crate::table::{ColumnId, RowId, Table};
use crate::value::DataType;
use crate::Result;

/// The role an index plays in the physical design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Index on a primary key column (unique).
    PrimaryKey,
    /// Index on a foreign key column (non-unique).
    ForeignKey,
}

/// An equality index mapping key values to the row ids containing them.
#[derive(Debug, Clone)]
pub struct HashIndex {
    column: ColumnId,
    kind: IndexKind,
    map: HashMap<i64, Vec<RowId>>,
    entry_count: usize,
}

impl HashIndex {
    /// Builds an index over the integer column `column` of `table`.
    pub fn build(table: &Table, column: ColumnId, kind: IndexKind) -> Result<Self> {
        let data = table.column(column);
        if data.data_type() != DataType::Int {
            return Err(StorageError::UnsupportedIndexColumn {
                column: table.column_meta(column).name.clone(),
            });
        }
        let mut map: HashMap<i64, Vec<RowId>> = HashMap::new();
        let mut entry_count = 0usize;
        for row in table.row_ids() {
            if let Some(v) = data.int_at(row as usize) {
                map.entry(v).or_default().push(row);
                entry_count += 1;
            }
        }
        Ok(HashIndex { column, kind, map, entry_count })
    }

    /// The indexed column.
    pub fn column(&self) -> ColumnId {
        self.column
    }

    /// Whether this is a primary- or foreign-key index.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Row ids whose key equals `key` (empty slice if none).
    #[inline]
    pub fn lookup(&self, key: i64) -> &[RowId] {
        self.map.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Number of indexed (non-null) entries.
    pub fn entry_count(&self) -> usize {
        self.entry_count
    }

    /// Average number of rows per key; 0.0 for an empty index.
    pub fn avg_rows_per_key(&self) -> f64 {
        if self.map.is_empty() {
            0.0
        } else {
            self.entry_count as f64 / self.map.len() as f64
        }
    }

    /// True if every key maps to exactly one row.
    pub fn is_unique(&self) -> bool {
        self.map.values().all(|rows| rows.len() == 1)
    }
}

/// A sorted `(key, row)` index supporting range lookups.
#[derive(Debug, Clone)]
pub struct OrderedIndex {
    column: ColumnId,
    entries: Vec<(i64, RowId)>,
}

impl OrderedIndex {
    /// Builds an ordered index over the integer column `column` of `table`.
    pub fn build(table: &Table, column: ColumnId) -> Result<Self> {
        let data = table.column(column);
        if data.data_type() != DataType::Int {
            return Err(StorageError::UnsupportedIndexColumn {
                column: table.column_meta(column).name.clone(),
            });
        }
        let mut entries: Vec<(i64, RowId)> =
            table.row_ids().filter_map(|row| data.int_at(row as usize).map(|v| (v, row))).collect();
        entries.sort_unstable();
        Ok(OrderedIndex { column, entries })
    }

    /// The indexed column.
    pub fn column(&self) -> ColumnId {
        self.column
    }

    /// Number of indexed (non-null) entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Row ids whose key lies in `[low, high]` (inclusive), in key order.
    pub fn range(&self, low: i64, high: i64) -> Vec<RowId> {
        if low > high {
            return Vec::new();
        }
        let start = self.entries.partition_point(|(k, _)| *k < low);
        let end = self.entries.partition_point(|(k, _)| *k <= high);
        self.entries[start..end].iter().map(|(_, r)| *r).collect()
    }

    /// Row ids whose key equals `key`.
    pub fn lookup(&self, key: i64) -> Vec<RowId> {
        self.range(key, key)
    }

    /// Smallest and largest key, if the index is non-empty.
    pub fn key_bounds(&self) -> Option<(i64, i64)> {
        match (self.entries.first(), self.entries.last()) {
            (Some((lo, _)), Some((hi, _))) => Some((*lo, *hi)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnMeta, TableBuilder};
    use crate::value::{DataType, Value};

    fn fk_table() -> Table {
        let mut b = TableBuilder::new(
            "movie_companies",
            vec![
                ColumnMeta::new("id", DataType::Int),
                ColumnMeta::new("movie_id", DataType::Int),
                ColumnMeta::new("note", DataType::Str),
            ],
        );
        // movie_id fan-out: movie 10 has three rows, movie 20 has one, one null.
        let rows = [(1, Some(10)), (2, Some(10)), (3, Some(20)), (4, Some(10)), (5, None)];
        for (id, mid) in rows {
            b.push_row(vec![
                Value::Int(id),
                mid.map(Value::Int).unwrap_or(Value::Null),
                Value::Str(format!("note{id}")),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn hash_index_lookup_and_stats() {
        let t = fk_table();
        let col = t.column_id("movie_id").unwrap();
        let idx = HashIndex::build(&t, col, IndexKind::ForeignKey).unwrap();
        assert_eq!(idx.lookup(10), &[0, 1, 3]);
        assert_eq!(idx.lookup(20), &[2]);
        assert!(idx.lookup(99).is_empty());
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.entry_count(), 4);
        assert!(!idx.is_unique());
        assert!((idx.avg_rows_per_key() - 2.0).abs() < 1e-9);
        assert_eq!(idx.kind(), IndexKind::ForeignKey);
        assert_eq!(idx.column(), col);
    }

    #[test]
    fn hash_index_on_pk_is_unique() {
        let t = fk_table();
        let col = t.column_id("id").unwrap();
        let idx = HashIndex::build(&t, col, IndexKind::PrimaryKey).unwrap();
        assert!(idx.is_unique());
        assert_eq!(idx.distinct_keys(), 5);
    }

    #[test]
    fn hash_index_rejects_string_column() {
        let t = fk_table();
        let col = t.column_id("note").unwrap();
        let err = HashIndex::build(&t, col, IndexKind::ForeignKey).unwrap_err();
        assert!(matches!(err, StorageError::UnsupportedIndexColumn { .. }));
    }

    #[test]
    fn ordered_index_ranges() {
        let t = fk_table();
        let col = t.column_id("movie_id").unwrap();
        let idx = OrderedIndex::build(&t, col).unwrap();
        assert_eq!(idx.entry_count(), 4);
        assert_eq!(idx.lookup(10), vec![0, 1, 3]);
        assert_eq!(idx.range(10, 20), vec![0, 1, 3, 2]);
        assert_eq!(idx.range(11, 19), Vec::<RowId>::new());
        assert_eq!(idx.range(21, 5), Vec::<RowId>::new());
        assert_eq!(idx.key_bounds(), Some((10, 20)));
        assert_eq!(idx.column(), col);
    }

    #[test]
    fn ordered_index_rejects_string_column() {
        let t = fk_table();
        let col = t.column_id("note").unwrap();
        assert!(OrderedIndex::build(&t, col).is_err());
    }

    #[test]
    fn empty_table_indexes() {
        let b = TableBuilder::new("empty", vec![ColumnMeta::new("id", DataType::Int)]);
        let t = b.finish();
        let idx = HashIndex::build(&t, ColumnId(0), IndexKind::PrimaryKey).unwrap();
        assert_eq!(idx.entry_count(), 0);
        assert_eq!(idx.avg_rows_per_key(), 0.0);
        let oidx = OrderedIndex::build(&t, ColumnId(0)).unwrap();
        assert_eq!(oidx.key_bounds(), None);
    }
}
