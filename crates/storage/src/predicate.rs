//! Base-table predicates and their evaluation.
//!
//! JOB queries restrict base tables with equality, range, `IN`, `LIKE`,
//! disjunctive and null predicates.  This module represents those predicates
//! and evaluates them against a [`Table`], producing either a selection
//! vector of matching [`RowId`]s or a per-row boolean.

use crate::column::EncodedColumn;
use crate::table::{ColumnId, RowId, Table};
use crate::value::DataType;

/// Comparison operators on integer columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to `(lhs, rhs)`.
    #[inline]
    pub fn apply(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A predicate over a single base table.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `col <op> literal` on an integer column.
    IntCmp {
        /// Column operand.
        column: ColumnId,
        /// Comparison operator.
        op: CmpOp,
        /// Literal operand.
        value: i64,
    },
    /// `col BETWEEN low AND high` (inclusive) on an integer column.
    IntBetween {
        /// Column operand.
        column: ColumnId,
        /// Inclusive lower bound.
        low: i64,
        /// Inclusive upper bound.
        high: i64,
    },
    /// `col = 'literal'` on a string column.
    StrEq {
        /// Column operand.
        column: ColumnId,
        /// Literal operand.
        value: String,
    },
    /// `col IN ('a', 'b', ...)` on a string column.
    StrIn {
        /// Column operand.
        column: ColumnId,
        /// Literal set.
        values: Vec<String>,
    },
    /// `col LIKE 'pattern'` where `%` matches any sequence and `_` any single
    /// character.
    Like {
        /// Column operand.
        column: ColumnId,
        /// LIKE pattern.
        pattern: String,
    },
    /// `col IS NULL`.
    IsNull {
        /// Column operand.
        column: ColumnId,
    },
    /// `col IS NOT NULL`.
    IsNotNull {
        /// Column operand.
        column: ColumnId,
    },
    /// Conjunction of predicates.
    And(Vec<Predicate>),
    /// Disjunction of predicates.
    Or(Vec<Predicate>),
    /// Negation of a predicate.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Evaluates the predicate for one row of `table`.
    pub fn matches(&self, table: &Table, row: RowId) -> bool {
        let r = row as usize;
        match self {
            Predicate::IntCmp { column, op, value } => match table.column(*column).int_at(r) {
                Some(v) => op.apply(v, *value),
                None => false,
            },
            Predicate::IntBetween { column, low, high } => match table.column(*column).int_at(r) {
                Some(v) => v >= *low && v <= *high,
                None => false,
            },
            Predicate::StrEq { column, value } => match table.column(*column).str_at(r) {
                Some(s) => s == value,
                None => false,
            },
            Predicate::StrIn { column, values } => match table.column(*column).str_at(r) {
                Some(s) => values.iter().any(|v| v == s),
                None => false,
            },
            Predicate::Like { column, pattern } => match table.column(*column).str_at(r) {
                Some(s) => like_match(pattern, s),
                None => false,
            },
            Predicate::IsNull { column } => table.column(*column).is_null(r),
            Predicate::IsNotNull { column } => !table.column(*column).is_null(r),
            Predicate::And(preds) => preds.iter().all(|p| p.matches(table, row)),
            Predicate::Or(preds) => preds.iter().any(|p| p.matches(table, row)),
            Predicate::Not(p) => !p.matches(table, row),
        }
    }

    /// Evaluates the predicate against a whole table, returning the matching
    /// row ids in order.
    ///
    /// String equality / IN / LIKE predicates are evaluated once against the
    /// column dictionary and then as integer code comparisons; integer
    /// comparisons and ranges evaluate directly on the encoded pages.  Both
    /// paths skip whole pages whose non-null min/max is disjoint from the
    /// wanted values, and evaluate RLE pages once per run rather than once
    /// per row.
    pub fn filter(&self, table: &Table) -> Vec<RowId> {
        // Fast paths for the common leaf predicates.
        match self {
            Predicate::StrEq { column, value } => {
                return filter_str_codes(table.column(*column), |dict| {
                    dict.code_of(value).map(|c| vec![c]).unwrap_or_default()
                });
            }
            Predicate::StrIn { column, values } => {
                return filter_str_codes(table.column(*column), |dict| {
                    values.iter().filter_map(|v| dict.code_of(v)).collect()
                });
            }
            Predicate::Like { column, pattern } => {
                return filter_str_codes(table.column(*column), |dict| {
                    dict.iter().filter(|(_, s)| like_match(pattern, s)).map(|(c, _)| c).collect()
                });
            }
            Predicate::IntCmp { column, op, value } if *op != CmpOp::Ne => {
                // `Ne` has no contiguous match range, so it stays row-wise.
                let (low, high) = match op {
                    CmpOp::Eq => (*value, *value),
                    CmpOp::Lt => match value.checked_sub(1) {
                        Some(high) => (i64::MIN, high),
                        None => return Vec::new(),
                    },
                    CmpOp::Le => (i64::MIN, *value),
                    CmpOp::Gt => match value.checked_add(1) {
                        Some(low) => (low, i64::MAX),
                        None => return Vec::new(),
                    },
                    CmpOp::Ge => (*value, i64::MAX),
                    CmpOp::Ne => unreachable!("guarded above"),
                };
                return filter_int_range(table.column(*column), low, high);
            }
            Predicate::IntBetween { column, low, high } => {
                return filter_int_range(table.column(*column), *low, *high);
            }
            _ => {}
        }
        table.row_ids().filter(|&row| self.matches(table, row)).collect()
    }

    /// Counts the matching rows without materialising the selection.
    pub fn count(&self, table: &Table) -> usize {
        table.row_ids().filter(|&row| self.matches(table, row)).count()
    }

    /// All columns referenced by the predicate (with duplicates removed).
    pub fn referenced_columns(&self) -> Vec<ColumnId> {
        let mut cols = Vec::new();
        self.collect_columns(&mut cols);
        cols.sort();
        cols.dedup();
        cols
    }

    fn collect_columns(&self, out: &mut Vec<ColumnId>) {
        match self {
            Predicate::IntCmp { column, .. }
            | Predicate::IntBetween { column, .. }
            | Predicate::StrEq { column, .. }
            | Predicate::StrIn { column, .. }
            | Predicate::Like { column, .. }
            | Predicate::IsNull { column }
            | Predicate::IsNotNull { column } => out.push(*column),
            Predicate::And(preds) | Predicate::Or(preds) => {
                for p in preds {
                    p.collect_columns(out);
                }
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }

    /// True if the predicate is a plain equality (integer or string) — the
    /// kind of predicate histograms and most-common-value lists handle well.
    pub fn is_simple_equality(&self) -> bool {
        matches!(self, Predicate::StrEq { .. } | Predicate::IntCmp { op: CmpOp::Eq, .. })
    }
}

/// Evaluates the selected dictionary codes against a string column, page by
/// page: pages whose code min/max is disjoint from the wanted codes are
/// skipped without decoding, and RLE pages are tested once per run.
fn filter_str_codes<F>(col: &EncodedColumn, select_codes: F) -> Vec<RowId>
where
    F: FnOnce(&crate::column::StringDict) -> Vec<u32>,
{
    // A string predicate over an int column never matches (the schema-level
    // type check happens upstream).
    let Some(dict) = col.dict() else { return Vec::new() };
    let wanted = select_codes(dict);
    if wanted.is_empty() {
        return Vec::new();
    }
    let (lo, hi) =
        (*wanted.iter().min().expect("non-empty"), *wanted.iter().max().expect("non-empty"));
    let single = (wanted.len() == 1).then(|| wanted[0]);
    let set: std::collections::HashSet<u32> =
        if single.is_some() { Default::default() } else { wanted.into_iter().collect() };
    let validity = col.validity();
    let mut out = Vec::new();
    for p in 0..col.page_count() {
        let page = col.code_page(p);
        if page.disjoint_with(lo, hi) {
            continue;
        }
        let base = col.page_rows(p).start;
        page.for_each_run(|start, end, code| {
            let hit = match single {
                Some(target) => code == target,
                None => set.contains(&code),
            };
            if hit {
                for i in start..end {
                    let row = base + i;
                    if validity.get(row) {
                        out.push(row as RowId);
                    }
                }
            }
        });
    }
    out
}

/// Collects rows of an integer column whose value lies in `[low, high]`
/// (inclusive), skipping pages whose non-null min/max is disjoint from the
/// range and testing RLE pages once per run.
fn filter_int_range(col: &EncodedColumn, low: i64, high: i64) -> Vec<RowId> {
    if col.data_type() != DataType::Int || low > high {
        return Vec::new();
    }
    let validity = col.validity();
    let mut out = Vec::new();
    for p in 0..col.page_count() {
        let page = col.int_page(p);
        if page.disjoint_with(low, high) {
            continue;
        }
        let base = col.page_rows(p).start;
        page.for_each_run(|start, end, v| {
            if v >= low && v <= high {
                for i in start..end {
                    let row = base + i;
                    if validity.get(row) {
                        out.push(row as RowId);
                    }
                }
            }
        });
    }
    out
}

/// SQL `LIKE` matching with `%` (any sequence) and `_` (any single char).
///
/// Matching is case sensitive, as in PostgreSQL.
pub fn like_match(pattern: &str, value: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let v: Vec<char> = value.chars().collect();
    like_rec(&p, &v)
}

fn like_rec(p: &[char], v: &[char]) -> bool {
    // Iterative greedy matcher with backtracking for '%'.
    let (mut pi, mut vi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while vi < v.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == v[vi]) {
            pi += 1;
            vi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi, vi));
            pi += 1;
        } else if let Some((sp, sv)) = star {
            pi = sp + 1;
            vi = sv + 1;
            star = Some((sp, sv + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnMeta, TableBuilder};
    use crate::value::{DataType, Value};

    fn movies() -> Table {
        let mut b = TableBuilder::new(
            "title",
            vec![
                ColumnMeta::new("id", DataType::Int),
                ColumnMeta::new("title", DataType::Str),
                ColumnMeta::new("production_year", DataType::Int),
                ColumnMeta::new("kind", DataType::Str),
            ],
        );
        let rows: Vec<(i64, &str, Option<i64>, &str)> = vec![
            (1, "The Matrix", Some(1999), "movie"),
            (2, "The Matrix Reloaded", Some(2003), "movie"),
            (3, "Some Documentary", Some(2003), "documentary"),
            (4, "Old Short", Some(1950), "short"),
            (5, "Unknown Year", None, "movie"),
            (6, "matrix lowercase", Some(2010), "movie"),
        ];
        for (id, title, year, kind) in rows {
            b.push_row(vec![
                Value::Int(id),
                Value::Str(title.into()),
                year.map(Value::Int).unwrap_or(Value::Null),
                Value::Str(kind.into()),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Eq.apply(3, 3));
        assert!(CmpOp::Ne.apply(3, 4));
        assert!(CmpOp::Lt.apply(3, 4));
        assert!(CmpOp::Le.apply(4, 4));
        assert!(CmpOp::Gt.apply(5, 4));
        assert!(CmpOp::Ge.apply(4, 4));
        assert_eq!(CmpOp::Eq.sql(), "=");
        assert_eq!(CmpOp::Ge.sql(), ">=");
    }

    #[test]
    fn int_cmp_and_between() {
        let t = movies();
        let year = t.column_id("production_year").unwrap();
        let p = Predicate::IntCmp { column: year, op: CmpOp::Gt, value: 2000 };
        assert_eq!(p.filter(&t), vec![1, 2, 5]);
        let p = Predicate::IntBetween { column: year, low: 1999, high: 2003 };
        assert_eq!(p.filter(&t), vec![0, 1, 2]);
        assert_eq!(p.count(&t), 3);
    }

    #[test]
    fn null_handling_in_comparisons() {
        let t = movies();
        let year = t.column_id("production_year").unwrap();
        // The NULL year row never matches a comparison, like in SQL.
        let p = Predicate::IntCmp { column: year, op: CmpOp::Ne, value: 1999 };
        assert!(!p.filter(&t).contains(&4));
        let p = Predicate::IsNull { column: year };
        assert_eq!(p.filter(&t), vec![4]);
        let p = Predicate::IsNotNull { column: year };
        assert_eq!(p.count(&t), 5);
    }

    #[test]
    fn string_equality_and_in() {
        let t = movies();
        let kind = t.column_id("kind").unwrap();
        let p = Predicate::StrEq { column: kind, value: "movie".into() };
        assert_eq!(p.filter(&t), vec![0, 1, 4, 5]);
        let p =
            Predicate::StrIn { column: kind, values: vec!["short".into(), "documentary".into()] };
        assert_eq!(p.filter(&t), vec![2, 3]);
        let p = Predicate::StrEq { column: kind, value: "does not exist".into() };
        assert!(p.filter(&t).is_empty());
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("%Matrix%", "The Matrix Reloaded"));
        assert!(like_match("The %", "The Matrix"));
        assert!(!like_match("The %", "A Matrix"));
        assert!(like_match("%trix", "The Matrix"));
        assert!(like_match("_he Matrix", "The Matrix"));
        assert!(!like_match("_he Matrix", "TThe Matrix"));
        assert!(like_match("%", ""));
        assert!(like_match("%%", "anything"));
        assert!(!like_match("", "x"));
        assert!(like_match("", ""));
        assert!(like_match("a%b%c", "a-x-b-y-c"));
        assert!(!like_match("a%b%c", "a-x-c"));
    }

    #[test]
    fn like_predicate_filters_via_dictionary() {
        let t = movies();
        let title = t.column_id("title").unwrap();
        let p = Predicate::Like { column: title, pattern: "%Matrix%".into() };
        assert_eq!(p.filter(&t), vec![0, 1]);
        // per-row evaluation agrees with the dictionary fast path
        let slow: Vec<RowId> = t.row_ids().filter(|&r| p.matches(&t, r)).collect();
        assert_eq!(p.filter(&t), slow);
    }

    #[test]
    fn and_or_not_composition() {
        let t = movies();
        let kind = t.column_id("kind").unwrap();
        let year = t.column_id("production_year").unwrap();
        let p = Predicate::And(vec![
            Predicate::StrEq { column: kind, value: "movie".into() },
            Predicate::IntCmp { column: year, op: CmpOp::Ge, value: 2003 },
        ]);
        assert_eq!(p.filter(&t), vec![1, 5]);
        let p = Predicate::Or(vec![
            Predicate::StrEq { column: kind, value: "short".into() },
            Predicate::StrEq { column: kind, value: "documentary".into() },
        ]);
        assert_eq!(p.filter(&t), vec![2, 3]);
        let p = Predicate::Not(Box::new(Predicate::StrEq { column: kind, value: "movie".into() }));
        assert_eq!(p.filter(&t), vec![2, 3]);
    }

    #[test]
    fn referenced_columns_deduplicated() {
        let t = movies();
        let kind = t.column_id("kind").unwrap();
        let year = t.column_id("production_year").unwrap();
        let p = Predicate::And(vec![
            Predicate::StrEq { column: kind, value: "movie".into() },
            Predicate::Or(vec![
                Predicate::IntCmp { column: year, op: CmpOp::Ge, value: 2000 },
                Predicate::IntCmp { column: year, op: CmpOp::Lt, value: 1960 },
            ]),
        ]);
        let mut expected = vec![kind, year];
        expected.sort();
        assert_eq!(p.referenced_columns(), expected);
    }

    #[test]
    fn int_fast_paths_agree_with_row_wise_evaluation() {
        let t = movies();
        let year = t.column_id("production_year").unwrap();
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for value in [1950, 1999, 2003, 2004, i64::MIN, i64::MAX] {
                let p = Predicate::IntCmp { column: year, op, value };
                let slow: Vec<RowId> = t.row_ids().filter(|&r| p.matches(&t, r)).collect();
                assert_eq!(p.filter(&t), slow, "op {op:?} value {value}");
            }
        }
        let p = Predicate::IntBetween { column: year, low: 2003, high: 1999 };
        assert!(p.filter(&t).is_empty(), "inverted range matches nothing");
    }

    #[test]
    fn string_predicate_on_int_column_matches_nothing() {
        let t = movies();
        let id = t.column_id("id").unwrap();
        let p = Predicate::StrEq { column: id, value: "movie".into() };
        assert!(p.filter(&t).is_empty());
    }

    #[test]
    fn simple_equality_detection() {
        let t = movies();
        let kind = t.column_id("kind").unwrap();
        let year = t.column_id("production_year").unwrap();
        assert!(Predicate::StrEq { column: kind, value: "movie".into() }.is_simple_equality());
        assert!(Predicate::IntCmp { column: year, op: CmpOp::Eq, value: 1999 }.is_simple_equality());
        assert!(
            !Predicate::IntCmp { column: year, op: CmpOp::Gt, value: 1999 }.is_simple_equality()
        );
        assert!(!Predicate::Like { column: kind, pattern: "%m%".into() }.is_simple_equality());
    }
}
