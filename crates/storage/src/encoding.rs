//! Compressed page encodings for column data.
//!
//! Columns are stored as a sequence of fixed-capacity **pages** of
//! [`PAGE_ROWS`] rows.  Each page is encoded independently with the cheapest
//! encoding its values admit:
//!
//! * **RLE** — run-length encoding, chosen when the average run length is at
//!   least [`RLE_MIN_AVG_RUN`] (sorted keys, low-cardinality attributes,
//!   long NULL stretches);
//! * **FOR + bit-packing** — frame-of-reference: values are stored as
//!   `value - min` in the smallest bit width that holds `max - min`
//!   (surrogate keys, years, dictionary codes);
//! * **Plain** — verbatim values, the fallback when the value range spans
//!   (nearly) the full 64-bit domain, or when [`EncodingPolicy::Plain`]
//!   forces it (the differential-testing baseline).
//!
//! Every page carries its min/max over **non-null** rows, so range and
//! equality predicates can skip whole pages without decoding
//! (`min > max` is the sentinel for an all-null page, which no predicate
//! matches).  Pages serialise to a self-describing checksummed byte format
//! ([`PageData::to_bytes`] / [`PageData::from_bytes`]) so the snapshot layer
//! can store them with per-page offsets and fault them in lazily through a
//! [`PageStore`].

use std::fs::File;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::StorageError;
use crate::Result;

/// Rows per column page.  A power of two so `row / PAGE_ROWS` and
/// `row % PAGE_ROWS` compile to shift/mask on the scan hot path.
pub const PAGE_ROWS: usize = 1 << 16;

/// Minimum average run length before RLE is preferred over bit-packing.
pub const RLE_MIN_AVG_RUN: usize = 8;

/// How encodings are selected when a column is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncodingPolicy {
    /// Pick the cheapest encoding per page (the production default).
    #[default]
    Auto,
    /// Force plain (uncompressed) pages everywhere.  Exists so differential
    /// tests can pin encoded execution tuple-identical to an uncompressed
    /// baseline.
    Plain,
}

/// FNV-1a 64-bit hash, the checksum used for snapshot pages and metadata.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Bit-packing primitives
// ---------------------------------------------------------------------------

/// Packs `values` (each `< 2^width`) into little-endian bit order.
fn pack_bits(values: impl ExactSizeIterator<Item = u64>, width: u8) -> Vec<u64> {
    debug_assert!(width <= 64);
    if width == 0 {
        return Vec::new();
    }
    let total_bits = values.len() * width as usize;
    let mut packed = vec![0u64; total_bits.div_ceil(64)];
    let mut bit = 0usize;
    for v in values {
        let word = bit / 64;
        let off = (bit % 64) as u32;
        packed[word] |= v << off;
        if off as usize + width as usize > 64 {
            packed[word + 1] |= v >> (64 - off);
        }
        bit += width as usize;
    }
    packed
}

/// Extracts the `i`-th `width`-bit value from `packed`.
#[inline]
fn unpack_bit(packed: &[u64], width: u8, i: usize) -> u64 {
    if width == 0 {
        return 0;
    }
    let bit = i * width as usize;
    let word = bit / 64;
    let off = (bit % 64) as u32;
    let mut v = packed[word] >> off;
    if off as usize + width as usize > 64 {
        v |= packed[word + 1] << (64 - off);
    }
    if width == 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

/// Smallest bit width that can hold `delta`.
fn width_for(delta: u64) -> u8 {
    (64 - delta.leading_zeros()) as u8
}

// ---------------------------------------------------------------------------
// Integer pages
// ---------------------------------------------------------------------------

/// The physical encoding of one integer page.
#[derive(Debug, Clone, PartialEq)]
pub enum IntEncoding {
    /// Verbatim values.
    Plain(Vec<i64>),
    /// Frame-of-reference: `value = base + unpack(packed, width, i)`.
    For {
        /// The reference frame (page minimum over stored slots).
        base: i64,
        /// Bit width of each packed delta.
        width: u8,
        /// Bit-packed deltas, little-endian bit order.
        packed: Vec<u64>,
    },
    /// Run-length encoding: run `r` holds `values[r]` for rows
    /// `run_ends[r-1]..run_ends[r]`.
    Rle {
        /// One value per run.
        values: Vec<i64>,
        /// Exclusive end row of each run (strictly increasing, last = len).
        run_ends: Vec<u32>,
    },
}

/// One encoded page of up to [`PAGE_ROWS`] integer rows.
#[derive(Debug, Clone, PartialEq)]
pub struct IntPage {
    len: u32,
    /// Min/max over non-null rows; `min > max` means the page is all-null.
    min: i64,
    max: i64,
    encoding: IntEncoding,
}

impl IntPage {
    /// Encodes `values` under `policy`.  `valid[i]` marks non-null rows;
    /// null slots participate in the encoding (their stored value is
    /// whatever the builder wrote there) but not in min/max.
    pub fn encode(values: &[i64], valid: &[bool], policy: EncodingPolicy) -> Self {
        debug_assert_eq!(values.len(), valid.len());
        debug_assert!(values.len() <= PAGE_ROWS);
        let len = values.len() as u32;
        let (mut min, mut max) = (i64::MAX, i64::MIN);
        let mut runs = 0usize;
        for (i, &v) in values.iter().enumerate() {
            if valid[i] {
                min = min.min(v);
                max = max.max(v);
            }
            if i == 0 || values[i - 1] != v {
                runs += 1;
            }
        }
        let encoding = match policy {
            EncodingPolicy::Plain => IntEncoding::Plain(values.to_vec()),
            EncodingPolicy::Auto => Self::select_auto(values, runs),
        };
        IntPage { len, min, max, encoding }
    }

    fn select_auto(values: &[i64], runs: usize) -> IntEncoding {
        if values.is_empty() {
            return IntEncoding::Plain(Vec::new());
        }
        if runs * RLE_MIN_AVG_RUN <= values.len() {
            let mut rle_values = Vec::with_capacity(runs);
            let mut run_ends = Vec::with_capacity(runs);
            for (i, &v) in values.iter().enumerate() {
                if i == 0 || values[i - 1] != v {
                    rle_values.push(v);
                    run_ends.push(i as u32);
                }
            }
            // Convert run starts to exclusive run ends.
            run_ends.remove(0);
            run_ends.push(values.len() as u32);
            return IntEncoding::Rle { values: rle_values, run_ends };
        }
        // FOR over *stored* slot values (null slots included — the builder
        // stores a copy of the previous value there, so they never widen
        // the frame).
        let lo = *values.iter().min().expect("non-empty");
        let hi = *values.iter().max().expect("non-empty");
        match hi.checked_sub(lo) {
            Some(delta) => {
                let width = width_for(delta as u64);
                if width >= 60 {
                    // Nearly incompressible; plain is simpler and as small.
                    IntEncoding::Plain(values.to_vec())
                } else {
                    let packed =
                        pack_bits(values.iter().map(|&v| (v.wrapping_sub(lo)) as u64), width);
                    IntEncoding::For { base: lo, width, packed }
                }
            }
            // Range spans more than i64::MAX — cannot frame.
            None => IntEncoding::Plain(values.to_vec()),
        }
    }

    /// Rows in this page.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if the page holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Min/max over non-null rows, or `None` for an all-null page.
    #[inline]
    pub fn min_max(&self) -> Option<(i64, i64)> {
        (self.min <= self.max).then_some((self.min, self.max))
    }

    /// True if no non-null row in this page can lie in `[low, high]` — the
    /// FOR-range pruning test evaluated on page metadata alone.
    #[inline]
    pub fn disjoint_with(&self, low: i64, high: i64) -> bool {
        match self.min_max() {
            Some((min, max)) => high < min || low > max,
            None => true,
        }
    }

    /// The stored slot value at `i` (callers mask nulls via the column
    /// validity bitmap).
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        match &self.encoding {
            IntEncoding::Plain(values) => values[i],
            IntEncoding::For { base, width, packed } => {
                base.wrapping_add(unpack_bit(packed, *width, i) as i64)
            }
            IntEncoding::Rle { values, run_ends } => {
                let run = run_ends.partition_point(|&end| end <= i as u32);
                values[run]
            }
        }
    }

    /// Appends every stored slot value (one per row) to `out`.
    pub fn decode_into(&self, out: &mut Vec<i64>) {
        match &self.encoding {
            IntEncoding::Plain(values) => out.extend_from_slice(values),
            IntEncoding::For { base, width, packed } => {
                out.extend(
                    (0..self.len())
                        .map(|i| base.wrapping_add(unpack_bit(packed, *width, i) as i64)),
                );
            }
            IntEncoding::Rle { values, run_ends } => {
                let mut start = 0u32;
                for (v, &end) in values.iter().zip(run_ends) {
                    out.extend(std::iter::repeat_n(*v, (end - start) as usize));
                    start = end;
                }
            }
        }
    }

    /// Calls `f(start_row, end_row, value)` for each maximal run of equal
    /// stored values (a single pass that never materialises the page).
    pub fn for_each_run(&self, mut f: impl FnMut(usize, usize, i64)) {
        match &self.encoding {
            IntEncoding::Rle { values, run_ends } => {
                let mut start = 0usize;
                for (v, &end) in values.iter().zip(run_ends) {
                    f(start, end as usize, *v);
                    start = end as usize;
                }
            }
            _ => {
                for i in 0..self.len() {
                    let v = self.get(i);
                    f(i, i + 1, v);
                }
            }
        }
    }

    /// The encoding variant, for introspection and tests.
    pub fn encoding(&self) -> &IntEncoding {
        &self.encoding
    }

    /// Heap bytes used by the encoded representation.
    pub fn encoded_bytes(&self) -> usize {
        match &self.encoding {
            IntEncoding::Plain(values) => values.len() * 8,
            IntEncoding::For { packed, .. } => 16 + packed.len() * 8,
            IntEncoding::Rle { values, run_ends } => values.len() * 8 + run_ends.len() * 4,
        }
    }
}

// ---------------------------------------------------------------------------
// Dictionary-code pages
// ---------------------------------------------------------------------------

/// The physical encoding of one dictionary-code page.
#[derive(Debug, Clone, PartialEq)]
pub enum CodeEncoding {
    /// Verbatim codes.
    Plain(Vec<u32>),
    /// Bit-packed codes (frame base 0 — codes are already dense).
    Packed {
        /// Bit width of each packed code.
        width: u8,
        /// Bit-packed codes, little-endian bit order.
        packed: Vec<u64>,
    },
    /// Run-length encoding, as in [`IntEncoding::Rle`].
    Rle {
        /// One code per run.
        values: Vec<u32>,
        /// Exclusive end row of each run.
        run_ends: Vec<u32>,
    },
}

/// One encoded page of up to [`PAGE_ROWS`] dictionary-code rows.
#[derive(Debug, Clone, PartialEq)]
pub struct CodePage {
    len: u32,
    /// Min/max over non-null rows; `min > max` means the page is all-null.
    min: u32,
    max: u32,
    encoding: CodeEncoding,
}

impl CodePage {
    /// Encodes `codes` under `policy`; `valid` as in [`IntPage::encode`].
    pub fn encode(codes: &[u32], valid: &[bool], policy: EncodingPolicy) -> Self {
        debug_assert_eq!(codes.len(), valid.len());
        debug_assert!(codes.len() <= PAGE_ROWS);
        let len = codes.len() as u32;
        let (mut min, mut max) = (u32::MAX, u32::MIN);
        let mut runs = 0usize;
        for (i, &c) in codes.iter().enumerate() {
            if valid[i] {
                min = min.min(c);
                max = max.max(c);
            }
            if i == 0 || codes[i - 1] != c {
                runs += 1;
            }
        }
        let all_null = min > max;
        let encoding = match policy {
            EncodingPolicy::Plain => CodeEncoding::Plain(codes.to_vec()),
            EncodingPolicy::Auto if codes.is_empty() => CodeEncoding::Plain(Vec::new()),
            EncodingPolicy::Auto => {
                if runs * RLE_MIN_AVG_RUN <= codes.len() {
                    let mut rle_values = Vec::with_capacity(runs);
                    let mut run_ends = Vec::with_capacity(runs);
                    for (i, &c) in codes.iter().enumerate() {
                        if i == 0 || codes[i - 1] != c {
                            rle_values.push(c);
                            run_ends.push(i as u32);
                        }
                    }
                    run_ends.remove(0);
                    run_ends.push(codes.len() as u32);
                    CodeEncoding::Rle { values: rle_values, run_ends }
                } else {
                    let top = *codes.iter().max().expect("non-empty");
                    let width = width_for(top as u64);
                    CodeEncoding::Packed {
                        width,
                        packed: pack_bits(codes.iter().map(|&c| c as u64), width),
                    }
                }
            }
        };
        let (min, max) = if all_null { (1, 0) } else { (min, max) };
        CodePage { len, min, max, encoding }
    }

    /// Rows in this page.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if the page holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Min/max over non-null rows, or `None` for an all-null page.
    #[inline]
    pub fn min_max(&self) -> Option<(u32, u32)> {
        (self.min <= self.max).then_some((self.min, self.max))
    }

    /// True if no non-null row in this page can hold a code in
    /// `[low, high]`.
    #[inline]
    pub fn disjoint_with(&self, low: u32, high: u32) -> bool {
        match self.min_max() {
            Some((min, max)) => high < min || low > max,
            None => true,
        }
    }

    /// The stored slot code at `i` (callers mask nulls via validity).
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match &self.encoding {
            CodeEncoding::Plain(codes) => codes[i],
            CodeEncoding::Packed { width, packed } => unpack_bit(packed, *width, i) as u32,
            CodeEncoding::Rle { values, run_ends } => {
                let run = run_ends.partition_point(|&end| end <= i as u32);
                values[run]
            }
        }
    }

    /// Appends every stored slot code to `out`.
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        match &self.encoding {
            CodeEncoding::Plain(codes) => out.extend_from_slice(codes),
            CodeEncoding::Packed { width, packed } => {
                out.extend((0..self.len()).map(|i| unpack_bit(packed, *width, i) as u32));
            }
            CodeEncoding::Rle { values, run_ends } => {
                let mut start = 0u32;
                for (c, &end) in values.iter().zip(run_ends) {
                    out.extend(std::iter::repeat_n(*c, (end - start) as usize));
                    start = end;
                }
            }
        }
    }

    /// Calls `f(start_row, end_row, code)` for each maximal run of equal
    /// stored codes.
    pub fn for_each_run(&self, mut f: impl FnMut(usize, usize, u32)) {
        match &self.encoding {
            CodeEncoding::Rle { values, run_ends } => {
                let mut start = 0usize;
                for (c, &end) in values.iter().zip(run_ends) {
                    f(start, end as usize, *c);
                    start = end as usize;
                }
            }
            _ => {
                for i in 0..self.len() {
                    let c = self.get(i);
                    f(i, i + 1, c);
                }
            }
        }
    }

    /// The encoding variant, for introspection and tests.
    pub fn encoding(&self) -> &CodeEncoding {
        &self.encoding
    }

    /// Heap bytes used by the encoded representation.
    pub fn encoded_bytes(&self) -> usize {
        match &self.encoding {
            CodeEncoding::Plain(codes) => codes.len() * 4,
            CodeEncoding::Packed { packed, .. } => 8 + packed.len() * 8,
            CodeEncoding::Rle { values, run_ends } => values.len() * 4 + run_ends.len() * 4,
        }
    }
}

// ---------------------------------------------------------------------------
// Page serialisation
// ---------------------------------------------------------------------------

/// A decoded page of either column type — the unit the snapshot format
/// stores, checksums, and faults in lazily.
#[derive(Debug, Clone, PartialEq)]
pub enum PageData {
    /// An integer page.
    Int(IntPage),
    /// A dictionary-code page.
    Code(CodePage),
}

const TAG_INT_PLAIN: u8 = 0;
const TAG_INT_FOR: u8 = 1;
const TAG_INT_RLE: u8 = 2;
const TAG_CODE_PLAIN: u8 = 3;
const TAG_CODE_PACKED: u8 = 4;
const TAG_CODE_RLE: u8 = 5;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct PageCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PageCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| StorageError::SnapshotCorrupt("truncated page".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn u32_vec(&mut self, count: usize) -> Result<Vec<u32>> {
        let bytes = self.take(count.checked_mul(4).ok_or_else(overflow)?)?;
        Ok(bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4"))).collect())
    }

    fn u64_vec(&mut self, count: usize) -> Result<Vec<u64>> {
        let bytes = self.take(count.checked_mul(8).ok_or_else(overflow)?)?;
        Ok(bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8"))).collect())
    }

    fn i64_vec(&mut self, count: usize) -> Result<Vec<i64>> {
        let bytes = self.take(count.checked_mul(8).ok_or_else(overflow)?)?;
        Ok(bytes.chunks_exact(8).map(|c| i64::from_le_bytes(c.try_into().expect("8"))).collect())
    }
}

fn overflow() -> StorageError {
    StorageError::SnapshotCorrupt("page length overflow".into())
}

impl PageData {
    /// Rows in the page.
    pub fn len(&self) -> usize {
        match self {
            PageData::Int(p) => p.len(),
            PageData::Code(p) => p.len(),
        }
    }

    /// True if the page holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes used by the encoded representation.
    pub fn encoded_bytes(&self) -> usize {
        match self {
            PageData::Int(p) => p.encoded_bytes(),
            PageData::Code(p) => p.encoded_bytes(),
        }
    }

    /// Serialises the page to its snapshot byte format:
    /// `[tag u8][len u32][min][max][encoding payload]` (min/max are i64 for
    /// int pages, u32 for code pages — the tag disambiguates).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_bytes() + 32);
        match self {
            PageData::Int(p) => {
                let tag = match &p.encoding {
                    IntEncoding::Plain(_) => TAG_INT_PLAIN,
                    IntEncoding::For { .. } => TAG_INT_FOR,
                    IntEncoding::Rle { .. } => TAG_INT_RLE,
                };
                out.push(tag);
                put_u32(&mut out, p.len);
                put_i64(&mut out, p.min);
                put_i64(&mut out, p.max);
                match &p.encoding {
                    IntEncoding::Plain(values) => {
                        for v in values {
                            put_i64(&mut out, *v);
                        }
                    }
                    IntEncoding::For { base, width, packed } => {
                        put_i64(&mut out, *base);
                        out.push(*width);
                        for w in packed {
                            put_u64(&mut out, *w);
                        }
                    }
                    IntEncoding::Rle { values, run_ends } => {
                        put_u32(&mut out, values.len() as u32);
                        for v in values {
                            put_i64(&mut out, *v);
                        }
                        for e in run_ends {
                            put_u32(&mut out, *e);
                        }
                    }
                }
            }
            PageData::Code(p) => {
                let tag = match &p.encoding {
                    CodeEncoding::Plain(_) => TAG_CODE_PLAIN,
                    CodeEncoding::Packed { .. } => TAG_CODE_PACKED,
                    CodeEncoding::Rle { .. } => TAG_CODE_RLE,
                };
                out.push(tag);
                put_u32(&mut out, p.len);
                put_u32(&mut out, p.min);
                put_u32(&mut out, p.max);
                match &p.encoding {
                    CodeEncoding::Plain(codes) => {
                        for c in codes {
                            put_u32(&mut out, *c);
                        }
                    }
                    CodeEncoding::Packed { width, packed } => {
                        out.push(*width);
                        for w in packed {
                            put_u64(&mut out, *w);
                        }
                    }
                    CodeEncoding::Rle { values, run_ends } => {
                        put_u32(&mut out, values.len() as u32);
                        for c in values {
                            put_u32(&mut out, *c);
                        }
                        for e in run_ends {
                            put_u32(&mut out, *e);
                        }
                    }
                }
            }
        }
        out
    }

    /// Deserialises a page written by [`PageData::to_bytes`].  Every length
    /// is bounds-checked; a malformed page is a [`StorageError::SnapshotCorrupt`].
    pub fn from_bytes(bytes: &[u8]) -> Result<PageData> {
        let mut c = PageCursor { bytes, pos: 0 };
        let tag = c.u8()?;
        let len = c.u32()?;
        if len as usize > PAGE_ROWS {
            return Err(StorageError::SnapshotCorrupt(format!(
                "page claims {len} rows (max {PAGE_ROWS})"
            )));
        }
        if tag <= TAG_INT_RLE {
            let min = c.i64()?;
            let max = c.i64()?;
            let encoding = match tag {
                TAG_INT_PLAIN => IntEncoding::Plain(c.i64_vec(len as usize)?),
                TAG_INT_FOR => {
                    let base = c.i64()?;
                    let width = c.u8()?;
                    if width > 64 {
                        return Err(StorageError::SnapshotCorrupt(format!(
                            "int page width {width} exceeds 64"
                        )));
                    }
                    let words = (len as usize * width as usize).div_ceil(64);
                    IntEncoding::For { base, width, packed: c.u64_vec(words)? }
                }
                _ => {
                    let runs = c.u32()? as usize;
                    if runs > len as usize {
                        return Err(StorageError::SnapshotCorrupt(format!(
                            "int page claims {runs} runs over {len} rows"
                        )));
                    }
                    let values = c.i64_vec(runs)?;
                    let run_ends = c.u32_vec(runs)?;
                    validate_run_ends(&run_ends, len)?;
                    IntEncoding::Rle { values, run_ends }
                }
            };
            Ok(PageData::Int(IntPage { len, min, max, encoding }))
        } else if tag <= TAG_CODE_RLE {
            let min = c.u32()?;
            let max = c.u32()?;
            let encoding = match tag {
                TAG_CODE_PLAIN => CodeEncoding::Plain(c.u32_vec(len as usize)?),
                TAG_CODE_PACKED => {
                    let width = c.u8()?;
                    if width > 32 {
                        return Err(StorageError::SnapshotCorrupt(format!(
                            "code page width {width} exceeds 32"
                        )));
                    }
                    let words = (len as usize * width as usize).div_ceil(64);
                    CodeEncoding::Packed { width, packed: c.u64_vec(words)? }
                }
                _ => {
                    let runs = c.u32()? as usize;
                    if runs > len as usize {
                        return Err(StorageError::SnapshotCorrupt(format!(
                            "code page claims {runs} runs over {len} rows"
                        )));
                    }
                    let values = c.u32_vec(runs)?;
                    let run_ends = c.u32_vec(runs)?;
                    validate_run_ends(&run_ends, len)?;
                    CodeEncoding::Rle { values, run_ends }
                }
            };
            Ok(PageData::Code(CodePage { len, min, max, encoding }))
        } else {
            Err(StorageError::SnapshotCorrupt(format!("unknown page tag {tag}")))
        }
    }
}

fn validate_run_ends(run_ends: &[u32], len: u32) -> Result<()> {
    let mut prev = 0u32;
    for &end in run_ends {
        if end <= prev {
            return Err(StorageError::SnapshotCorrupt(
                "page run ends are not strictly increasing".into(),
            ));
        }
        prev = end;
    }
    if prev != len {
        return Err(StorageError::SnapshotCorrupt("page run ends do not cover the page".into()));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Lazy page store
// ---------------------------------------------------------------------------

/// A read handle on a snapshot file that serves page byte ranges on demand
/// and counts the bytes it actually reads — the observable that proves lazy
/// loads are O(touched data), not O(database).
#[derive(Debug)]
pub struct PageStore {
    file: File,
    bytes_read: AtomicU64,
}

impl PageStore {
    /// Wraps an open snapshot file.
    pub fn new(file: File) -> Self {
        PageStore { file, bytes_read: AtomicU64::new(0) }
    }

    /// Reads exactly `len` bytes at `offset`, counting them.
    pub fn read_at(&self, offset: u64, len: usize) -> std::io::Result<Vec<u8>> {
        use std::os::unix::fs::FileExt;
        let mut buf = vec![0u8; len];
        self.file.read_exact_at(&mut buf, offset)?;
        self.bytes_read.fetch_add(len as u64, Ordering::Relaxed);
        Ok(buf)
    }

    /// Total bytes read through this store so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_valid(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    #[test]
    fn bit_packing_roundtrips_edge_widths() {
        for width in [0u8, 1, 7, 31, 32, 33, 63, 64] {
            let max = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let values: Vec<u64> = (0..300)
                .map(|i| if width == 0 { 0 } else { (i as u64 * 2654435761) & max })
                .collect();
            let packed = pack_bits(values.iter().copied(), width);
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(unpack_bit(&packed, width, i), v, "width {width} index {i}");
            }
        }
    }

    #[test]
    fn int_page_for_encoding_roundtrips() {
        let values: Vec<i64> = (0..1000).map(|i| 1900 + (i % 120)).collect();
        let page = IntPage::encode(&values, &all_valid(values.len()), EncodingPolicy::Auto);
        assert!(matches!(page.encoding(), IntEncoding::For { .. }));
        assert_eq!(page.min_max(), Some((1900, 2019)));
        let mut decoded = Vec::new();
        page.decode_into(&mut decoded);
        assert_eq!(decoded, values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(page.get(i), v);
        }
        assert!(page.encoded_bytes() < values.len() * 8 / 4, "7-bit FOR beats 64-bit plain");
    }

    #[test]
    fn int_page_rle_encoding_roundtrips() {
        let mut values = Vec::new();
        for run in 0..20i64 {
            values.extend(std::iter::repeat_n(run * 3, 50));
        }
        let page = IntPage::encode(&values, &all_valid(values.len()), EncodingPolicy::Auto);
        assert!(matches!(page.encoding(), IntEncoding::Rle { .. }));
        let mut decoded = Vec::new();
        page.decode_into(&mut decoded);
        assert_eq!(decoded, values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(page.get(i), v);
        }
        let mut runs = 0;
        page.for_each_run(|start, end, v| {
            assert!(end > start);
            assert_eq!(v, values[start]);
            runs += 1;
        });
        assert_eq!(runs, 20);
    }

    #[test]
    fn int_page_extreme_range_falls_back_to_plain() {
        let values = vec![i64::MIN, i64::MAX, 0, -1, 1];
        let page = IntPage::encode(&values, &all_valid(values.len()), EncodingPolicy::Auto);
        assert!(matches!(page.encoding(), IntEncoding::Plain(_)));
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(page.get(i), v);
        }
    }

    #[test]
    fn plain_policy_forces_plain() {
        let values: Vec<i64> = vec![7; 500];
        let page = IntPage::encode(&values, &all_valid(values.len()), EncodingPolicy::Plain);
        assert!(matches!(page.encoding(), IntEncoding::Plain(_)));
        let codes: Vec<u32> = vec![3; 500];
        let page = CodePage::encode(&codes, &all_valid(codes.len()), EncodingPolicy::Plain);
        assert!(matches!(page.encoding(), CodeEncoding::Plain(_)));
    }

    #[test]
    fn all_null_page_prunes_everything() {
        let values = vec![0i64; 10];
        let page = IntPage::encode(&values, &[false; 10], EncodingPolicy::Auto);
        assert_eq!(page.min_max(), None);
        assert!(page.disjoint_with(i64::MIN, i64::MAX));
    }

    #[test]
    fn disjoint_with_uses_non_null_min_max() {
        let values = vec![100, 0, 200]; // slot 1 is a null slot holding 0
        let valid = vec![true, false, true];
        let page = IntPage::encode(&values, &valid, EncodingPolicy::Auto);
        assert_eq!(page.min_max(), Some((100, 200)));
        assert!(page.disjoint_with(0, 99));
        assert!(page.disjoint_with(201, i64::MAX));
        assert!(!page.disjoint_with(150, 150));
    }

    #[test]
    fn code_page_packed_roundtrips_max_code() {
        let codes = vec![0u32, 1, u32::MAX, 7, u32::MAX - 1];
        let page = CodePage::encode(&codes, &all_valid(codes.len()), EncodingPolicy::Auto);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(page.get(i), c);
        }
        let mut decoded = Vec::new();
        page.decode_into(&mut decoded);
        assert_eq!(decoded, codes);
    }

    #[test]
    fn code_page_rle_roundtrips() {
        let mut codes = Vec::new();
        for run in 0..10u32 {
            codes.extend(std::iter::repeat_n(run, 100));
        }
        let page = CodePage::encode(&codes, &all_valid(codes.len()), EncodingPolicy::Auto);
        assert!(matches!(page.encoding(), CodeEncoding::Rle { .. }));
        let mut decoded = Vec::new();
        page.decode_into(&mut decoded);
        assert_eq!(decoded, codes);
        assert_eq!(page.min_max(), Some((0, 9)));
        assert!(page.disjoint_with(10, 100));
    }

    #[test]
    fn pages_serialise_and_deserialise() {
        let ints: Vec<i64> = (0..500).map(|i| i * 17 - 3000).collect();
        let codes: Vec<u32> = (0..500).map(|i| (i % 37) as u32).collect();
        let mut rle = Vec::new();
        for run in 0..5i64 {
            rle.extend(std::iter::repeat_n(run - 2, 99));
        }
        for page in [
            PageData::Int(IntPage::encode(&ints, &all_valid(ints.len()), EncodingPolicy::Auto)),
            PageData::Int(IntPage::encode(&ints, &all_valid(ints.len()), EncodingPolicy::Plain)),
            PageData::Int(IntPage::encode(&rle, &all_valid(rle.len()), EncodingPolicy::Auto)),
            PageData::Code(CodePage::encode(&codes, &all_valid(codes.len()), EncodingPolicy::Auto)),
            PageData::Code(CodePage::encode(
                &codes,
                &all_valid(codes.len()),
                EncodingPolicy::Plain,
            )),
        ] {
            let bytes = page.to_bytes();
            let back = PageData::from_bytes(&bytes).unwrap();
            assert_eq!(back, page);
        }
    }

    #[test]
    fn malformed_page_bytes_are_rejected() {
        assert!(PageData::from_bytes(&[]).is_err());
        assert!(PageData::from_bytes(&[1, 2, 3]).is_err());
        let page = PageData::Int(IntPage::encode(
            &(0..100).collect::<Vec<i64>>(),
            &all_valid(100),
            EncodingPolicy::Auto,
        ));
        let bytes = page.to_bytes();
        // Truncation at every prefix is caught, never panics.
        for cut in 0..bytes.len() {
            assert!(PageData::from_bytes(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
