//! Property-based tests for the storage primitives.

use proptest::prelude::*;
use qob_storage::encoding::{CodePage, IntPage};
use qob_storage::predicate::like_match;
use qob_storage::{
    Bitmap, CmpOp, ColumnBuilder, ColumnMeta, DataType, EncodingPolicy, PageData, Predicate,
    TableBuilder, Value,
};

/// Values likely to exercise every int encoding: negatives, dense ranges
/// (frame-of-reference), repeats (RLE), and the extremes.
fn int_slot() -> impl Strategy<Value = i64> {
    prop_oneof![
        5 => -50i64..50,
        2 => 1_000_000i64..1_000_100,
        1 => any::<i64>(),
        1 => Just(i64::MIN),
        1 => Just(i64::MAX),
    ]
}

/// Codes likely to exercise every code encoding, including the widest
/// possible dictionary code.
fn code_slot() -> impl Strategy<Value = u32> {
    prop_oneof![
        5 => 0u32..8,
        2 => 0u32..100_000,
        1 => Just(u32::MAX),
    ]
}

proptest! {
    /// A bitmap built from a boolean vector reproduces it exactly.
    #[test]
    fn bitmap_roundtrip(bits in prop::collection::vec(any::<bool>(), 0..512)) {
        let bm: Bitmap = bits.iter().copied().collect();
        prop_assert_eq!(bm.len(), bits.len());
        prop_assert_eq!(bm.count_ones(), bits.iter().filter(|b| **b).count());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(bm.get(i), b);
        }
        let expected_indices: Vec<usize> =
            bits.iter().enumerate().filter(|(_, b)| **b).map(|(i, _)| i).collect();
        prop_assert_eq!(bm.set_indices(), expected_indices);
    }

    /// AND/OR/NOT on bitmaps agree with element-wise boolean logic.
    #[test]
    fn bitmap_boolean_algebra(
        pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 0..300)
    ) {
        let a: Bitmap = pairs.iter().map(|(x, _)| *x).collect();
        let b: Bitmap = pairs.iter().map(|(_, y)| *y).collect();
        let mut and = a.clone();
        and.and_with(&b);
        let mut or = a.clone();
        or.or_with(&b);
        let mut not_a = a.clone();
        not_a.negate();
        for (i, (x, y)) in pairs.iter().enumerate() {
            prop_assert_eq!(and.get(i), *x && *y);
            prop_assert_eq!(or.get(i), *x || *y);
            prop_assert_eq!(not_a.get(i), !*x);
        }
        prop_assert_eq!(not_a.count_ones(), pairs.len() - a.count_ones());
    }

    /// An exact-match LIKE pattern (no wildcards) behaves like equality, and
    /// a pattern wrapped in % behaves like substring containment.
    #[test]
    fn like_matches_equality_and_containment(
        needle in "[a-z]{0,6}",
        hay in "[a-z]{0,12}",
    ) {
        prop_assert_eq!(like_match(&needle, &hay), needle == hay);
        let contains_pattern = format!("%{needle}%");
        prop_assert_eq!(like_match(&contains_pattern, &hay), hay.contains(&needle));
        let prefix_pattern = format!("{needle}%");
        prop_assert_eq!(like_match(&prefix_pattern, &hay), hay.starts_with(&needle));
        let suffix_pattern = format!("%{needle}");
        prop_assert_eq!(like_match(&suffix_pattern, &hay), hay.ends_with(&needle));
    }

    /// Filtering a table with an integer comparison matches a scan with the
    /// same comparison applied per row, and counts agree.
    #[test]
    fn int_filter_agrees_with_scan(values in prop::collection::vec(proptest::option::of(-50i64..50), 1..200), threshold in -50i64..50) {
        let mut b = TableBuilder::new("t", vec![ColumnMeta::new("v", DataType::Int)]);
        for v in &values {
            b.push_row(vec![v.map(Value::Int).unwrap_or(Value::Null)]).unwrap();
        }
        let t = b.finish();
        let col = t.column_id("v").unwrap();
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let pred = Predicate::IntCmp { column: col, op, value: threshold };
            let filtered = pred.filter(&t);
            let expected: Vec<u32> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| v.map(|v| op.apply(v, threshold)).unwrap_or(false))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(&filtered, &expected);
            prop_assert_eq!(pred.count(&t), expected.len());
        }
    }

    /// Dictionary-encoded string columns return exactly the pushed strings.
    #[test]
    fn string_column_roundtrip(strings in prop::collection::vec(proptest::option::of("[a-c]{0,3}"), 0..100)) {
        let mut builder = ColumnBuilder::new(DataType::Str);
        for s in &strings {
            let v = s.clone().map(Value::Str).unwrap_or(Value::Null);
            prop_assert!(builder.push(&v));
        }
        let col = builder.finish();
        prop_assert_eq!(col.len(), strings.len());
        for (i, s) in strings.iter().enumerate() {
            prop_assert_eq!(col.str_at(i), s.as_deref());
        }
        let distinct_expected: std::collections::HashSet<&String> =
            strings.iter().flatten().collect();
        prop_assert_eq!(col.distinct_count_exact(), distinct_expected.len());
    }

    /// Every int-page encoding is an identity on its stored slot values —
    /// per-slot `get`, bulk `decode_into`, and the snapshot byte format all
    /// reproduce the input exactly, under both policies.
    #[test]
    fn int_page_roundtrip(
        slots in prop::collection::vec((int_slot(), any::<bool>()), 0..300),
        policy in prop_oneof![Just(EncodingPolicy::Auto), Just(EncodingPolicy::Plain)],
    ) {
        let values: Vec<i64> = slots.iter().map(|(v, _)| *v).collect();
        let valid: Vec<bool> = slots.iter().map(|(_, ok)| *ok).collect();
        let page = IntPage::encode(&values, &valid, policy);
        prop_assert_eq!(page.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(page.get(i), v, "slot {} diverges", i);
        }
        let mut decoded = Vec::new();
        page.decode_into(&mut decoded);
        prop_assert_eq!(&decoded, &values);
        let expected = values.iter().zip(&valid).filter(|(_, ok)| **ok).map(|(v, _)| *v);
        prop_assert_eq!(page.min_max(), expected.clone().map(|v| (v, v)).reduce(
            |(lo, hi), (v, _)| (lo.min(v), hi.max(v))
        ));
        let bytes = PageData::Int(page.clone()).to_bytes();
        prop_assert_eq!(PageData::from_bytes(&bytes).unwrap(), PageData::Int(page));
    }

    /// Long runs of one value (the shape NULL backfilling produces) always
    /// survive the round-trip — the RLE path specifically.
    #[test]
    fn int_page_roundtrip_on_null_runs(
        runs in prop::collection::vec((int_slot(), 1usize..40, any::<bool>()), 0..12),
    ) {
        let mut values = Vec::new();
        let mut valid = Vec::new();
        for (v, n, ok) in &runs {
            values.extend(std::iter::repeat_n(*v, *n));
            valid.extend(std::iter::repeat_n(*ok, *n));
        }
        let page = IntPage::encode(&values, &valid, EncodingPolicy::Auto);
        let mut decoded = Vec::new();
        page.decode_into(&mut decoded);
        prop_assert_eq!(&decoded, &values);
        let bytes = PageData::Int(page.clone()).to_bytes();
        prop_assert_eq!(PageData::from_bytes(&bytes).unwrap(), PageData::Int(page));
    }

    /// Every code-page encoding is an identity on its stored codes,
    /// including `u32::MAX` (the widest packable width).
    #[test]
    fn code_page_roundtrip(
        slots in prop::collection::vec((code_slot(), any::<bool>()), 0..300),
        policy in prop_oneof![Just(EncodingPolicy::Auto), Just(EncodingPolicy::Plain)],
    ) {
        let codes: Vec<u32> = slots.iter().map(|(c, _)| *c).collect();
        let valid: Vec<bool> = slots.iter().map(|(_, ok)| *ok).collect();
        let page = CodePage::encode(&codes, &valid, policy);
        prop_assert_eq!(page.len(), codes.len());
        for (i, &c) in codes.iter().enumerate() {
            prop_assert_eq!(page.get(i), c, "slot {} diverges", i);
        }
        let mut decoded = Vec::new();
        page.decode_into(&mut decoded);
        prop_assert_eq!(&decoded, &codes);
        let bytes = PageData::Code(page.clone()).to_bytes();
        prop_assert_eq!(PageData::from_bytes(&bytes).unwrap(), PageData::Code(page));
    }

    /// An int *column* built from arbitrary optional values (NULL runs,
    /// negatives, extremes) reads back exactly, under both policies — the
    /// builder's null-slot fill values never leak into visible rows.
    #[test]
    fn int_column_roundtrip(
        values in prop::collection::vec(proptest::option::of(int_slot()), 0..300),
        policy in prop_oneof![Just(EncodingPolicy::Auto), Just(EncodingPolicy::Plain)],
    ) {
        let mut builder = ColumnBuilder::with_policy(DataType::Int, policy);
        for v in &values {
            prop_assert!(builder.push(&v.map(Value::Int).unwrap_or(Value::Null)));
        }
        let col = builder.finish();
        prop_assert_eq!(col.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(col.int_at(i), *v, "row {} diverges", i);
            prop_assert_eq!(col.is_null(i), v.is_none());
        }
    }
}
