//! Property-based tests for the storage primitives.

use proptest::prelude::*;
use qob_storage::predicate::like_match;
use qob_storage::{
    Bitmap, CmpOp, ColumnData, ColumnMeta, DataType, Predicate, TableBuilder, Value,
};

proptest! {
    /// A bitmap built from a boolean vector reproduces it exactly.
    #[test]
    fn bitmap_roundtrip(bits in prop::collection::vec(any::<bool>(), 0..512)) {
        let bm: Bitmap = bits.iter().copied().collect();
        prop_assert_eq!(bm.len(), bits.len());
        prop_assert_eq!(bm.count_ones(), bits.iter().filter(|b| **b).count());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(bm.get(i), b);
        }
        let expected_indices: Vec<usize> =
            bits.iter().enumerate().filter(|(_, b)| **b).map(|(i, _)| i).collect();
        prop_assert_eq!(bm.set_indices(), expected_indices);
    }

    /// AND/OR/NOT on bitmaps agree with element-wise boolean logic.
    #[test]
    fn bitmap_boolean_algebra(
        pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 0..300)
    ) {
        let a: Bitmap = pairs.iter().map(|(x, _)| *x).collect();
        let b: Bitmap = pairs.iter().map(|(_, y)| *y).collect();
        let mut and = a.clone();
        and.and_with(&b);
        let mut or = a.clone();
        or.or_with(&b);
        let mut not_a = a.clone();
        not_a.negate();
        for (i, (x, y)) in pairs.iter().enumerate() {
            prop_assert_eq!(and.get(i), *x && *y);
            prop_assert_eq!(or.get(i), *x || *y);
            prop_assert_eq!(not_a.get(i), !*x);
        }
        prop_assert_eq!(not_a.count_ones(), pairs.len() - a.count_ones());
    }

    /// An exact-match LIKE pattern (no wildcards) behaves like equality, and
    /// a pattern wrapped in % behaves like substring containment.
    #[test]
    fn like_matches_equality_and_containment(
        needle in "[a-z]{0,6}",
        hay in "[a-z]{0,12}",
    ) {
        prop_assert_eq!(like_match(&needle, &hay), needle == hay);
        let contains_pattern = format!("%{needle}%");
        prop_assert_eq!(like_match(&contains_pattern, &hay), hay.contains(&needle));
        let prefix_pattern = format!("{needle}%");
        prop_assert_eq!(like_match(&prefix_pattern, &hay), hay.starts_with(&needle));
        let suffix_pattern = format!("%{needle}");
        prop_assert_eq!(like_match(&suffix_pattern, &hay), hay.ends_with(&needle));
    }

    /// Filtering a table with an integer comparison matches a scan with the
    /// same comparison applied per row, and counts agree.
    #[test]
    fn int_filter_agrees_with_scan(values in prop::collection::vec(proptest::option::of(-50i64..50), 1..200), threshold in -50i64..50) {
        let mut b = TableBuilder::new("t", vec![ColumnMeta::new("v", DataType::Int)]);
        for v in &values {
            b.push_row(vec![v.map(Value::Int).unwrap_or(Value::Null)]).unwrap();
        }
        let t = b.finish();
        let col = t.column_id("v").unwrap();
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let pred = Predicate::IntCmp { column: col, op, value: threshold };
            let filtered = pred.filter(&t);
            let expected: Vec<u32> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| v.map(|v| op.apply(v, threshold)).unwrap_or(false))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(&filtered, &expected);
            prop_assert_eq!(pred.count(&t), expected.len());
        }
    }

    /// Dictionary-encoded string columns return exactly the pushed strings.
    #[test]
    fn string_column_roundtrip(strings in prop::collection::vec(proptest::option::of("[a-c]{0,3}"), 0..100)) {
        let mut col = ColumnData::new(DataType::Str);
        for s in &strings {
            let v = s.clone().map(Value::Str).unwrap_or(Value::Null);
            prop_assert!(col.push(&v));
        }
        prop_assert_eq!(col.len(), strings.len());
        for (i, s) in strings.iter().enumerate() {
            prop_assert_eq!(col.str_at(i), s.as_deref());
        }
        let distinct_expected: std::collections::HashSet<&String> =
            strings.iter().flatten().collect();
        prop_assert_eq!(col.distinct_count_exact(), distinct_expected.len());
    }
}
