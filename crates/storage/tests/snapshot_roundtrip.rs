//! Property-based tests for snapshot persistence: save → load is the
//! identity on databases, and corrupted or mis-versioned files are rejected.

use proptest::prelude::*;
use qob_storage::snapshot::{self, SNAPSHOT_VERSION};
use qob_storage::{
    ColumnId, ColumnMeta, DataType, Database, IndexConfig, StorageError, TableBuilder, Value,
};

/// Generated data for one table: optional ints (one per row — the row count)
/// and a pool of optional strings cycled across the rows.
type TableData = (Vec<Option<i64>>, Vec<Option<String>>);

/// Builds a database from generated table data.  Table `i` is named `t<i>`
/// with a dense `id` primary-key column, one int and one str data column,
/// and — for every table after the first — a foreign key `ref0 -> t0`.
fn build_db(tables: &[TableData], config: IndexConfig) -> Database {
    let mut db = Database::new();
    let mut ids = Vec::new();
    for (t, (ints, strs)) in tables.iter().enumerate() {
        let mut metas = vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("ci", DataType::Int),
            ColumnMeta::new("cs", DataType::Str),
        ];
        if t > 0 {
            metas.push(ColumnMeta::new("ref0", DataType::Int));
        }
        let mut builder = TableBuilder::new(format!("t{t}"), metas);
        for (row, int_value) in ints.iter().enumerate() {
            let str_value = strs[row % strs.len()].clone();
            let mut values = vec![
                Value::Int(row as i64),
                int_value.map(Value::Int).unwrap_or(Value::Null),
                str_value.map(Value::Str).unwrap_or(Value::Null),
            ];
            if t > 0 {
                values.push(Value::Int(row as i64 % 7));
            }
            builder.push_row(values).unwrap();
        }
        ids.push(db.add_table(builder.finish()).unwrap());
    }
    for (t, &tid) in ids.iter().enumerate() {
        db.declare_primary_key(tid, "id").unwrap();
        if t > 0 {
            db.declare_foreign_key(tid, "ref0", ids[0]).unwrap();
        }
    }
    db.build_indexes(config).unwrap();
    db
}

/// Asserts that two databases are observably identical: catalog shape, keys,
/// index design, and every cell of every table (including dictionary codes,
/// which the estimators depend on).
fn assert_identical(a: &Database, b: &Database) {
    assert_eq!(a.table_count(), b.table_count());
    assert_eq!(a.total_rows(), b.total_rows());
    assert_eq!(a.index_config(), b.index_config());
    assert_eq!(a.index_count(), b.index_count());
    for (tid, ta) in a.tables() {
        let tb = b.table(tid);
        assert_eq!(ta.name(), tb.name());
        assert_eq!(ta.schema(), tb.schema());
        assert_eq!(ta.row_count(), tb.row_count());
        for col in 0..ta.column_count() {
            let cid = ColumnId(col as u32);
            let (ca, cb) = (ta.column(cid), tb.column(cid));
            assert_eq!(ca.validity(), cb.validity());
            for row in ta.row_ids() {
                assert_eq!(ta.value(row, cid), tb.value(row, cid));
                // Dictionary codes (not just strings) must survive: the
                // estimators key sketches on codes.
                assert_eq!(ca.code_at(row as usize), cb.code_at(row as usize));
            }
        }
        assert_eq!(a.keys(tid).primary_key, b.keys(tid).primary_key);
        assert_eq!(a.keys(tid).foreign_keys, b.keys(tid).foreign_keys);
    }
}

fn table_strategy() -> impl Strategy<Value = TableData> {
    (
        prop::collection::vec(proptest::option::of(-1000i64..1000), 1..40),
        prop::collection::vec(proptest::option::of("[a-d]{0,4}"), 1..8),
    )
}

proptest! {
    /// encode → decode is the identity on arbitrary databases, whatever the
    /// column mix, null pattern, or physical design.
    #[test]
    fn snapshot_roundtrip_is_identity(
        tables in prop::collection::vec(table_strategy(), 1..4),
        config_seed in any::<u8>(),
        meta_value in any::<i64>(),
    ) {
        let config = IndexConfig::all()[config_seed as usize % 3];
        let db = build_db(&tables, config);
        let meta = vec![("k".to_owned(), meta_value)];
        let bytes = snapshot::encode(&db, &meta);
        let (reloaded, meta2) = snapshot::decode(&bytes).unwrap();
        prop_assert_eq!(&meta, &meta2);
        assert_identical(&db, &reloaded);
    }

    /// Flipping any single byte of a snapshot is detected: decode either
    /// fails the checksum or a structural validation — it never silently
    /// yields a database from corrupt bytes.
    #[test]
    fn corruption_anywhere_is_rejected(
        table in table_strategy(),
        pos_seed in any::<u64>(),
        flip in 1u8..255,
    ) {
        let db = build_db(std::slice::from_ref(&table), IndexConfig::PrimaryKeyOnly);
        let mut bytes = snapshot::encode(&db, &[]);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        prop_assert!(snapshot::decode(&bytes).is_err(), "flip {flip:#x} at {pos} undetected");
    }

    /// Truncation at any point is detected.
    #[test]
    fn truncation_anywhere_is_rejected(
        table in table_strategy(),
        cut_seed in any::<u64>(),
    ) {
        let db = build_db(std::slice::from_ref(&table), IndexConfig::NoIndexes);
        let bytes = snapshot::encode(&db, &[]);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(snapshot::decode(&bytes[..cut]).is_err(), "truncation to {cut} undetected");
    }
}

#[test]
fn future_version_is_rejected_with_version_error() {
    let table = (vec![Some(1), None], vec![Some("x".to_owned())]);
    let db = build_db(std::slice::from_ref(&table), IndexConfig::PrimaryKeyOnly);
    let mut bytes = snapshot::encode(&db, &[]);
    bytes[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    match snapshot::decode(&bytes) {
        Err(StorageError::SnapshotVersion { found, supported }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        other => panic!("expected a version error, got {other:?}"),
    }
}

#[test]
fn foreign_key_snapshots_rebuild_fk_indexes() {
    let tables = vec![
        (vec![Some(5); 10], vec![Some("a".to_owned())]),
        (vec![Some(9); 20], vec![None, Some("b".to_owned())]),
    ];
    let db = build_db(&tables, IndexConfig::PrimaryAndForeignKey);
    let (reloaded, _) = snapshot::decode(&snapshot::encode(&db, &[])).unwrap();
    assert_eq!(reloaded.index_config(), IndexConfig::PrimaryAndForeignKey);
    let t1 = reloaded.table_id("t1").unwrap();
    let ref0 = reloaded.table(t1).column_id("ref0").unwrap();
    assert!(reloaded.has_index(t1, ref0), "FK index must be rebuilt on load");
}
