//! Hand-written lexer for the JOB SQL dialect.
//!
//! Whitespace and `--` line comments are skipped.  The lexer never panics:
//! every malformed input (stray character, unterminated string, overflowing
//! integer) becomes a spanned [`SqlError`].

use crate::error::{ErrorKind, Span, SqlError};
use crate::token::{Tok, Token};

/// Tokenizes `src`, appending a final [`Tok::Eof`] token.
pub fn tokenize(src: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        // Whitespace.
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // `--` line comment.
        if b == b'-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // String literal with '' escaping.
        if b == b'\'' {
            let mut value = String::new();
            i += 1;
            loop {
                match bytes.get(i) {
                    None => {
                        return Err(SqlError::new(
                            ErrorKind::Lex,
                            "unterminated string literal",
                            Span::new(start, src.len()),
                        ));
                    }
                    Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                        value.push('\'');
                        i += 2;
                    }
                    Some(b'\'') => {
                        i += 1;
                        break;
                    }
                    Some(_) => {
                        // Consume one whole UTF-8 character.
                        let rest = &src[i..];
                        let ch = rest.chars().next().expect("in-bounds char");
                        value.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            tokens.push(Token { tok: Tok::Str(value), span: Span::new(start, i) });
            continue;
        }
        // Integer literal.
        if b.is_ascii_digit() {
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let text = &src[start..i];
            let value: i64 = text.parse().map_err(|_| {
                SqlError::new(
                    ErrorKind::Lex,
                    format!("integer literal `{text}` does not fit in 64 bits"),
                    Span::new(start, i),
                )
            })?;
            tokens.push(Token { tok: Tok::Int(value), span: Span::new(start, i) });
            continue;
        }
        // Parameter placeholders: `?` and `$n`.
        if b == b'?' {
            tokens.push(Token { tok: Tok::Param(None), span: Span::new(start, start + 1) });
            i += 1;
            continue;
        }
        if b == b'$' {
            i += 1;
            let digits_start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let text = &src[digits_start..i];
            if text.is_empty() {
                return Err(SqlError::new(
                    ErrorKind::Lex,
                    "`$` must be followed by a parameter number (e.g. `$1`)",
                    Span::new(start, i),
                ));
            }
            let n: u32 = text.parse().map_err(|_| {
                SqlError::new(
                    ErrorKind::Lex,
                    format!("parameter number `${text}` is out of range"),
                    Span::new(start, i),
                )
            })?;
            tokens.push(Token { tok: Tok::Param(Some(n)), span: Span::new(start, i) });
            continue;
        }
        // Identifier or keyword.
        if b.is_ascii_alphabetic() || b == b'_' {
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &src[start..i];
            let tok = Tok::keyword(word).unwrap_or_else(|| Tok::Ident(word.to_owned()));
            tokens.push(Token { tok, span: Span::new(start, i) });
            continue;
        }
        // Operators and punctuation.
        let (tok, len) = match b {
            b',' => (Tok::Comma, 1),
            b'.' => (Tok::Dot, 1),
            b'(' => (Tok::LParen, 1),
            b')' => (Tok::RParen, 1),
            b';' => (Tok::Semi, 1),
            b'*' => (Tok::Star, 1),
            b'-' => (Tok::Minus, 1),
            b'=' => (Tok::Eq, 1),
            b'<' if bytes.get(i + 1) == Some(&b'>') => (Tok::Ne, 2),
            b'<' if bytes.get(i + 1) == Some(&b'=') => (Tok::Le, 2),
            b'<' => (Tok::Lt, 1),
            b'>' if bytes.get(i + 1) == Some(&b'=') => (Tok::Ge, 2),
            b'>' => (Tok::Gt, 1),
            b'!' if bytes.get(i + 1) == Some(&b'=') => (Tok::Ne, 2),
            _ => {
                let ch = src[i..].chars().next().expect("in-bounds char");
                return Err(SqlError::new(
                    ErrorKind::Lex,
                    format!("unexpected character `{ch}`"),
                    Span::new(start, start + ch.len_utf8()),
                ));
            }
        };
        tokens.push(Token { tok, span: Span::new(start, start + len) });
        i += len;
    }
    tokens.push(Token { tok: Tok::Eof, span: Span::new(src.len(), src.len()) });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_a_small_query() {
        let toks = kinds("SELECT COUNT(*) FROM title AS t WHERE t.id = 3;");
        assert_eq!(
            toks,
            vec![
                Tok::Select,
                Tok::Ident("COUNT".into()),
                Tok::LParen,
                Tok::Star,
                Tok::RParen,
                Tok::From,
                Tok::Ident("title".into()),
                Tok::As,
                Tok::Ident("t".into()),
                Tok::Where,
                Tok::Ident("t".into()),
                Tok::Dot,
                Tok::Ident("id".into()),
                Tok::Eq,
                Tok::Int(3),
                Tok::Semi,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn string_escapes_and_unicode() {
        let toks = kinds("'it''s' 'naïve'");
        assert_eq!(toks, vec![Tok::Str("it's".into()), Tok::Str("naïve".into()), Tok::Eof]);
    }

    #[test]
    fn operators_and_comments() {
        let toks = kinds("<= >= <> != < > = - -- comment to end\n,");
        assert_eq!(
            toks,
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::Ne,
                Tok::Ne,
                Tok::Lt,
                Tok::Gt,
                Tok::Eq,
                Tok::Minus,
                Tok::Comma,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let src = "WHERE x = 'ab'";
        let toks = tokenize(src).unwrap();
        let lit = &toks[3];
        assert_eq!(lit.tok, Tok::Str("ab".into()));
        assert_eq!(&src[lit.span.start..lit.span.end], "'ab'");
    }

    #[test]
    fn errors_are_spanned_not_panics() {
        let err = tokenize("SELECT ~").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Lex);
        assert!(err.message.contains('~'));

        let err = tokenize("'unterminated").unwrap_err();
        assert!(err.message.contains("unterminated"));

        let err = tokenize("99999999999999999999999").unwrap_err();
        assert!(err.message.contains("64 bits"));
    }

    #[test]
    fn parameter_placeholders_lex() {
        let toks = kinds("x = ? AND y = $12");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("x".into()),
                Tok::Eq,
                Tok::Param(None),
                Tok::And,
                Tok::Ident("y".into()),
                Tok::Eq,
                Tok::Param(Some(12)),
                Tok::Eof,
            ]
        );
        let err = tokenize("$").unwrap_err();
        assert!(err.message.contains("parameter number"), "{}", err.message);
        let err = tokenize("$x").unwrap_err();
        assert!(err.message.contains("parameter number"), "{}", err.message);
        let err = tokenize("$99999999999").unwrap_err();
        assert!(err.message.contains("out of range"), "{}", err.message);
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![Tok::Eof]);
        assert_eq!(kinds("  -- only a comment"), vec![Tok::Eof]);
    }
}
