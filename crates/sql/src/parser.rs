//! Recursive-descent parser for the JOB SQL dialect.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! script     := script_stmt (';' script_stmt)* [';']
//! script_stmt:= statement
//!             | PREPARE ident AS statement
//!             | EXECUTE ident ['(' [const (',' const)*] ')']
//!             | DEALLOCATE ident
//!             | EXPLAIN [ANALYZE] statement
//! statement  := SELECT items FROM tables [WHERE expr]
//! items      := item (',' item)*
//! item       := '*' | ident '(' ('*' | colref) ')' [AS ident] | colref [AS ident]
//! tables     := factor (',' factor)*
//! factor     := table (join)*
//! join       := [INNER] JOIN table ON expr | CROSS JOIN table
//! table      := ident [AS] [ident]
//! expr       := and_expr (OR and_expr)*
//! and_expr   := unary (AND unary)*
//! unary      := NOT unary | '(' expr ')' | predicate
//! predicate  := operand cmp_op operand
//!             | colref [NOT] BETWEEN literal AND literal
//!             | colref [NOT] IN '(' literal (',' literal)* ')'
//!             | colref [NOT] LIKE literal
//!             | colref IS [NOT] NULL
//! operand    := colref | literal
//! literal    := const | '?' | '$' int
//! const      := ['-'] int | string | NULL
//! ```
//!
//! `INNER JOIN ... ON` and `CROSS JOIN` are normalised at parse time: the
//! joined tables are appended to the `FROM` list in text order and the `ON`
//! conditions are conjoined in front of the `WHERE` clause, so the statement
//! binds to exactly the spec its comma-separated form would.
//!
//! Parameter placeholders are positional `?` (slots assigned left to right)
//! or numbered `$1`, `$2`, … — the two styles cannot be mixed in one
//! statement.

use qob_storage::CmpOp;

use crate::ast::{
    ColumnRef, Expr, Literal, LiteralValue, Operand, ScriptStatement, SelectExpr, SelectItem,
    SelectStatement, TableRef,
};
use crate::error::{ErrorKind, Span, SqlError};
use crate::lexer::tokenize;
use crate::token::{Tok, Token};

/// Parses a single statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<SelectStatement, SqlError> {
    let mut parser = Parser::new(sql)?;
    let stmt = parser.statement()?;
    parser.eat_if(&Tok::Semi);
    parser.expect_eof()?;
    Ok(stmt)
}

/// Parses a `;`-separated script of statements (empty statements are
/// skipped, so trailing semicolons and comment-only segments are fine).
pub fn parse_statements(sql: &str) -> Result<Vec<SelectStatement>, SqlError> {
    let mut parser = Parser::new(sql)?;
    let mut statements = Vec::new();
    loop {
        while parser.eat_if(&Tok::Semi) {}
        if parser.peek() == &Tok::Eof {
            break;
        }
        statements.push(parser.statement()?);
        if !parser.eat_if(&Tok::Semi) {
            parser.expect_eof()?;
            break;
        }
    }
    Ok(statements)
}

/// Parses one script statement: a `SELECT`, or one of the
/// prepared-statement commands (`PREPARE name AS ...`, `EXECUTE name(...)`,
/// `DEALLOCATE name`).  A trailing `;` is allowed.
pub fn parse_script_statement(sql: &str) -> Result<ScriptStatement, SqlError> {
    let mut parser = Parser::new(sql)?;
    let stmt = parser.script_statement()?;
    parser.eat_if(&Tok::Semi);
    parser.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// `?` placeholders seen in the current statement (slots assigned in
    /// text order).
    positional_params: u32,
    /// Highest `$n` seen in the current statement.
    max_numbered_param: u32,
}

impl Parser {
    fn new(sql: &str) -> Result<Self, SqlError> {
        Ok(Parser { tokens: tokenize(sql)?, pos: 0, positional_params: 0, max_numbered_param: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn advance(&mut self) -> Token {
        let token = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        token
    }

    fn eat_if(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok, context: &str) -> Result<Token, SqlError> {
        if self.peek() == &tok {
            Ok(self.advance())
        } else {
            Err(self.unexpected(context))
        }
    }

    fn expect_eof(&self) -> Result<(), SqlError> {
        if self.peek() == &Tok::Eof {
            Ok(())
        } else {
            Err(self.unexpected("end of statement"))
        }
    }

    fn unexpected(&self, context: &str) -> SqlError {
        SqlError::new(
            ErrorKind::Parse,
            format!("expected {context}, found {}", self.peek().describe()),
            self.span(),
        )
    }

    fn ident(&mut self, context: &str) -> Result<(String, Span), SqlError> {
        match self.peek() {
            Tok::Ident(_) => {
                let token = self.advance();
                let Tok::Ident(name) = token.tok else { unreachable!() };
                Ok((name, token.span))
            }
            _ => Err(self.unexpected(context)),
        }
    }

    // -- statement ---------------------------------------------------------

    fn script_statement(&mut self) -> Result<ScriptStatement, SqlError> {
        match self.peek() {
            Tok::Prepare => {
                self.advance();
                let (name, _) = self.ident("a statement name after `PREPARE`")?;
                self.expect(Tok::As, "`AS` after the statement name")?;
                let statement = self.statement()?;
                let params = self.param_slots();
                Ok(ScriptStatement::Prepare { name, statement, params })
            }
            Tok::Execute => {
                self.advance();
                let (name, _) = self.ident("a statement name after `EXECUTE`")?;
                let mut args = Vec::new();
                if self.eat_if(&Tok::LParen) {
                    if self.peek() != &Tok::RParen {
                        args.push(self.const_literal()?);
                        while self.eat_if(&Tok::Comma) {
                            args.push(self.const_literal()?);
                        }
                    }
                    self.expect(Tok::RParen, "`)` closing the argument list")?;
                }
                Ok(ScriptStatement::Execute { name, args })
            }
            Tok::Deallocate => {
                self.advance();
                let (name, _) = self.ident("a statement name after `DEALLOCATE`")?;
                Ok(ScriptStatement::Deallocate { name })
            }
            Tok::Explain => {
                self.advance();
                let analyze = self.eat_if(&Tok::Analyze);
                let statement = self.statement()?;
                Ok(ScriptStatement::Explain { analyze, statement })
            }
            _ => Ok(ScriptStatement::Select(self.statement()?)),
        }
    }

    /// Number of parameter slots the just-parsed statement uses.
    fn param_slots(&self) -> usize {
        self.positional_params.max(self.max_numbered_param) as usize
    }

    fn statement(&mut self) -> Result<SelectStatement, SqlError> {
        // Parameter slots are per-statement state.
        self.positional_params = 0;
        self.max_numbered_param = 0;
        self.expect(Tok::Select, "`SELECT`")?;
        let mut items = vec![self.select_item()?];
        while self.eat_if(&Tok::Comma) {
            items.push(self.select_item()?);
        }
        self.expect(Tok::From, "`FROM`")?;
        let mut from = Vec::new();
        let mut on_conditions: Vec<Expr> = Vec::new();
        loop {
            self.table_factor(&mut from, &mut on_conditions)?;
            if !self.eat_if(&Tok::Comma) {
                break;
            }
        }
        let where_expr = if self.eat_if(&Tok::Where) { Some(self.expr()?) } else { None };
        // `ON` conditions are WHERE conjuncts in everything but position:
        // conjoin them (in text order) in front of the WHERE expression so
        // the bound form matches the comma-separated equivalent.
        let mut selection: Option<Expr> = None;
        for condition in on_conditions.into_iter().chain(where_expr) {
            selection = Some(match selection {
                None => condition,
                Some(acc) => Expr::And(Box::new(acc), Box::new(condition)),
            });
        }
        Ok(SelectStatement { items, from, selection })
    }

    /// One `FROM` factor: a table followed by any chain of explicit joins.
    fn table_factor(
        &mut self,
        from: &mut Vec<TableRef>,
        on_conditions: &mut Vec<Expr>,
    ) -> Result<(), SqlError> {
        from.push(self.table_ref()?);
        loop {
            match self.peek() {
                Tok::Cross => {
                    self.advance();
                    self.expect(Tok::Join, "`JOIN` after `CROSS`")?;
                    from.push(self.table_ref()?);
                }
                Tok::Inner | Tok::Join => {
                    if self.eat_if(&Tok::Inner) {
                        self.expect(Tok::Join, "`JOIN` after `INNER`")?;
                    } else {
                        self.advance();
                    }
                    from.push(self.table_ref()?);
                    self.expect(Tok::On, "`ON` after the joined table")?;
                    on_conditions.push(self.expr()?);
                }
                _ => return Ok(()),
            }
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.eat_if(&Tok::Star) {
            return Ok(SelectItem { expr: SelectExpr::Star, alias: None });
        }
        // `ident (` is an aggregate call; otherwise a column reference.
        let expr = if matches!(self.peek(), Tok::Ident(_)) && self.peek2() == &Tok::LParen {
            let (func, func_span) = self.ident("aggregate function")?;
            self.expect(Tok::LParen, "`(`")?;
            let expr = if self.eat_if(&Tok::Star) {
                let upper = func.to_ascii_uppercase();
                if upper != "COUNT" {
                    return Err(SqlError::new(
                        ErrorKind::Parse,
                        format!("`*` is only valid inside COUNT, not {func}"),
                        func_span,
                    ));
                }
                SelectExpr::CountStar
            } else {
                let arg = self.column_ref()?;
                SelectExpr::Aggregate { func: func.to_ascii_uppercase(), arg }
            };
            self.expect(Tok::RParen, "`)`")?;
            expr
        } else {
            SelectExpr::Column(self.column_ref()?)
        };
        let alias = if self.eat_if(&Tok::As) {
            Some(self.ident("output alias after `AS`")?.0)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let (table, span) = self.ident("table name")?;
        let explicit_as = self.eat_if(&Tok::As);
        let alias = match self.peek() {
            Tok::Ident(_) => {
                let (alias, alias_span) = self.ident("alias")?;
                return Ok(TableRef { table, alias: Some(alias), span: span.merge(alias_span) });
            }
            _ if explicit_as => return Err(self.unexpected("alias after `AS`")),
            _ => None,
        };
        Ok(TableRef { table, alias, span })
    }

    // -- expressions -------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_if(&Tok::Or) {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.unary()?;
        while self.eat_if(&Tok::And) {
            let right = self.unary()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat_if(&Tok::Not) {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        if self.eat_if(&Tok::LParen) {
            let inner = self.expr()?;
            self.expect(Tok::RParen, "`)`")?;
            return Ok(Expr::Paren(Box::new(inner)));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr, SqlError> {
        let left = self.operand()?;
        // Column-only suffix predicates.
        if let Operand::Column(column) = &left {
            let negated = matches!(self.peek(), Tok::Not)
                && matches!(self.peek2(), Tok::Between | Tok::In | Tok::Like);
            if negated {
                self.advance();
            }
            match self.peek() {
                Tok::Between => {
                    self.advance();
                    let low = self.literal()?;
                    self.expect(Tok::And, "`AND` in BETWEEN")?;
                    let high = self.literal()?;
                    return Ok(Expr::Between { column: column.clone(), negated, low, high });
                }
                Tok::In => {
                    self.advance();
                    self.expect(Tok::LParen, "`(` after IN")?;
                    let mut items = vec![self.literal()?];
                    while self.eat_if(&Tok::Comma) {
                        items.push(self.literal()?);
                    }
                    self.expect(Tok::RParen, "`)` closing the IN list")?;
                    return Ok(Expr::InList { column: column.clone(), negated, items });
                }
                Tok::Like => {
                    self.advance();
                    let pattern = self.literal()?;
                    return Ok(Expr::Like { column: column.clone(), negated, pattern });
                }
                Tok::Is => {
                    self.advance();
                    let negated = self.eat_if(&Tok::Not);
                    self.expect(Tok::Null, "`NULL` after IS")?;
                    return Ok(Expr::IsNull { column: column.clone(), negated });
                }
                Tok::Not => return Err(self.unexpected("`BETWEEN`, `IN` or `LIKE` after `NOT`")),
                _ => {}
            }
        }
        // Plain comparison.
        let op = match self.peek() {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => return Err(self.unexpected("a comparison operator")),
        };
        self.advance();
        let right = self.operand()?;
        Ok(Expr::Cmp { left, op, right })
    }

    fn operand(&mut self) -> Result<Operand, SqlError> {
        match self.peek() {
            Tok::Ident(_) => Ok(Operand::Column(self.column_ref()?)),
            _ => Ok(Operand::Literal(self.literal()?)),
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef, SqlError> {
        let (first, first_span) = self.ident("column reference")?;
        if self.eat_if(&Tok::Dot) {
            let (column, col_span) = self.ident("column name after `.`")?;
            Ok(ColumnRef { qualifier: Some(first), column, span: first_span.merge(col_span) })
        } else {
            Ok(ColumnRef { qualifier: None, column: first, span: first_span })
        }
    }

    fn literal(&mut self) -> Result<Literal, SqlError> {
        if let Tok::Param(numbered) = self.peek() {
            let numbered = *numbered;
            let span = self.span();
            self.advance();
            let index = match numbered {
                None => {
                    if self.max_numbered_param > 0 {
                        return Err(SqlError::new(
                            ErrorKind::Parse,
                            "cannot mix `?` and `$n` parameters in one statement",
                            span,
                        ));
                    }
                    let index = self.positional_params;
                    self.positional_params += 1;
                    index
                }
                Some(n) => {
                    if self.positional_params > 0 {
                        return Err(SqlError::new(
                            ErrorKind::Parse,
                            "cannot mix `?` and `$n` parameters in one statement",
                            span,
                        ));
                    }
                    if n == 0 {
                        return Err(SqlError::new(
                            ErrorKind::Parse,
                            "parameters are numbered from `$1`",
                            span,
                        ));
                    }
                    self.max_numbered_param = self.max_numbered_param.max(n);
                    n - 1
                }
            };
            return Ok(Literal { value: LiteralValue::Param(index), span });
        }
        self.const_literal()
    }

    /// A literal that must be a concrete value (no parameter placeholders) —
    /// the only form allowed as an `EXECUTE` argument.
    fn const_literal(&mut self) -> Result<Literal, SqlError> {
        let start = self.span();
        if self.eat_if(&Tok::Minus) {
            return match self.peek() {
                Tok::Int(v) => {
                    let v = *v;
                    let span = start.merge(self.span());
                    self.advance();
                    Ok(Literal { value: LiteralValue::Int(-v), span })
                }
                _ => Err(self.unexpected("an integer after `-`")),
            };
        }
        match self.peek().clone() {
            Tok::Int(v) => {
                let span = self.advance().span;
                Ok(Literal { value: LiteralValue::Int(v), span })
            }
            Tok::Str(s) => {
                let span = self.advance().span;
                Ok(Literal { value: LiteralValue::Str(s), span })
            }
            Tok::Null => {
                let span = self.advance().span;
                Ok(Literal { value: LiteralValue::Null, span })
            }
            _ => Err(self.unexpected("a literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_job_shaped_query() {
        let stmt = parse_statement(
            "SELECT MIN(t.title) AS movie_title, COUNT(*) \
             FROM title AS t, movie_companies mc, company_name cn \
             WHERE mc.movie_id = t.id AND mc.company_id = cn.id \
               AND cn.country_code = '[us]' AND t.production_year > 2000;",
        )
        .unwrap();
        assert_eq!(stmt.items.len(), 2);
        assert_eq!(stmt.items[0].alias.as_deref(), Some("movie_title"));
        assert!(matches!(stmt.items[1].expr, SelectExpr::CountStar));
        assert_eq!(stmt.from.len(), 3);
        assert_eq!(stmt.from[0].alias.as_deref(), Some("t"));
        assert_eq!(stmt.from[1].alias.as_deref(), Some("mc"), "alias without AS");
        let selection = stmt.selection.unwrap();
        // Left-associative AND chain.
        assert!(matches!(selection, Expr::And(..)));
    }

    #[test]
    fn parses_every_predicate_form() {
        let stmt = parse_statement(
            "SELECT * FROM t x WHERE x.a BETWEEN 1990 AND -5 \
             AND x.b IN ('p', 'q') AND x.c NOT IN ('r') \
             AND x.d LIKE '%seq%' AND x.e NOT LIKE 'a_' \
             AND x.f IS NULL AND x.g IS NOT NULL \
             AND x.h NOT BETWEEN 1 AND 2 \
             AND NOT (x.i = 3 OR x.j <> 4)",
        )
        .unwrap();
        let mut conjuncts = Vec::new();
        fn flatten(e: Expr, out: &mut Vec<Expr>) {
            if let Expr::And(l, r) = e {
                flatten(*l, out);
                flatten(*r, out);
            } else {
                out.push(e);
            }
        }
        flatten(stmt.selection.unwrap(), &mut conjuncts);
        assert_eq!(conjuncts.len(), 9);
        assert!(matches!(
            &conjuncts[0],
            Expr::Between { negated: false, low, .. }
                if low.value == LiteralValue::Int(1990)
        ));
        assert!(matches!(&conjuncts[2], Expr::InList { negated: true, .. }));
        assert!(matches!(&conjuncts[4], Expr::Like { negated: true, .. }));
        assert!(matches!(&conjuncts[5], Expr::IsNull { negated: false, .. }));
        assert!(matches!(&conjuncts[6], Expr::IsNull { negated: true, .. }));
        assert!(matches!(&conjuncts[7], Expr::Between { negated: true, .. }));
        assert!(matches!(&conjuncts[8], Expr::Not(inner) if matches!(**inner, Expr::Paren(_))));
    }

    #[test]
    fn or_has_lower_precedence_than_and() {
        let stmt = parse_statement("SELECT * FROM t WHERE t.a = 1 AND t.b = 2 OR t.c = 3").unwrap();
        // (a AND b) OR c
        assert!(matches!(stmt.selection.unwrap(), Expr::Or(l, _) if matches!(*l, Expr::And(..))));
    }

    #[test]
    fn parses_multi_statement_scripts() {
        let script = "-- two queries\nSELECT * FROM a;\n\nSELECT * FROM b x;;\n";
        let stmts = parse_statements(script).unwrap();
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[1].from[0].alias.as_deref(), Some("x"));
        assert!(parse_statements("  -- nothing\n").unwrap().is_empty());
    }

    #[test]
    fn error_paths_are_spanned() {
        for (sql, needle) in [
            ("FROM t", "expected `SELECT`"),
            ("SELECT FROM t", "column reference"),
            ("SELECT * FROM", "table name"),
            ("SELECT * FROM t WHERE", "a literal"),
            ("SELECT * FROM t WHERE t.a >", "a literal"),
            ("SELECT * FROM t WHERE t.a BETWEEN 1 OR 2", "`AND` in BETWEEN"),
            ("SELECT * FROM t WHERE t.a IN 'x'", "`(` after IN"),
            ("SELECT * FROM t WHERE t.a NOT NULL", "after `NOT`"),
            ("SELECT * FROM t WHERE t.a IS 3", "`NULL` after IS"),
            ("SELECT MIN(*) FROM t", "only valid inside COUNT"),
            ("SELECT * FROM t AS WHERE", "alias after `AS`"),
            ("SELECT * FROM t extra junk", "end of statement"),
            ("SELECT * FROM t WHERE t.a = - 'x'", "an integer after `-`"),
        ] {
            let err = parse_statement(sql).unwrap_err();
            assert!(
                err.message.contains(needle),
                "for `{sql}` expected message containing `{needle}`, got `{}`",
                err.message
            );
            assert!(err.span.is_some(), "error for `{sql}` should be spanned");
        }
    }

    #[test]
    fn explicit_join_syntax_normalises_to_the_comma_form() {
        // ASTs carry source spans, so compare the span-free shape: the FROM
        // order and the flattened conjunct sequence.  (Bound-spec equality
        // against the comma form is pinned in the crate-level tests.)
        let shape = |sql: &str| {
            let stmt = parse_statement(sql).unwrap();
            let from: Vec<String> = stmt
                .from
                .iter()
                .map(|t| format!("{} {}", t.table, t.alias.clone().unwrap_or_default()))
                .collect();
            let mut conjuncts = Vec::new();
            fn flatten(e: Expr, out: &mut Vec<String>) {
                if let Expr::And(l, r) = e {
                    flatten(*l, out);
                    flatten(*r, out);
                } else if let Expr::Cmp { left, right, op } = e {
                    out.push(format!(
                        "{:?} {op:?} {:?}",
                        operand_name(&left),
                        operand_name(&right)
                    ));
                } else {
                    out.push(format!("{e:?}").split('{').next().unwrap_or_default().to_owned());
                }
            }
            fn operand_name(op: &Operand) -> String {
                match op {
                    Operand::Column(c) => c.display_name(),
                    Operand::Literal(l) => format!("{:?}", l.value),
                }
            }
            let mut conjs = Vec::new();
            if let Some(selection) = stmt.selection {
                flatten(selection, &mut conjs);
            }
            conjuncts.extend(conjs);
            (from, conjuncts)
        };
        let comma = shape(
            "SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn \
             WHERE mc.movie_id = t.id AND mc.company_id = cn.id AND cn.country_code = '[us]'",
        );
        for sql in [
            // INNER JOIN ... ON with the WHERE carrying the base predicate.
            "SELECT COUNT(*) FROM title t INNER JOIN movie_companies mc ON mc.movie_id = t.id \
             INNER JOIN company_name cn ON mc.company_id = cn.id \
             WHERE cn.country_code = '[us]'",
            // Bare JOIN is INNER JOIN.
            "SELECT COUNT(*) FROM title t JOIN movie_companies mc ON mc.movie_id = t.id \
             JOIN company_name cn ON mc.company_id = cn.id WHERE cn.country_code = '[us]'",
        ] {
            assert_eq!(shape(sql), comma, "for `{sql}`");
        }
    }

    #[test]
    fn cross_join_and_multi_condition_on_parse() {
        let stmt = parse_statement(
            "SELECT * FROM a x CROSS JOIN b y \
             INNER JOIN c z ON z.id = x.id AND z.b_id = y.id AND z.kind = 'k'",
        )
        .unwrap();
        assert_eq!(stmt.from.len(), 3);
        assert_eq!(stmt.from[1].alias.as_deref(), Some("y"));
        // The three ON conjuncts land as a left-associative AND chain.
        let mut conjuncts = Vec::new();
        fn flatten(e: Expr, out: &mut Vec<Expr>) {
            if let Expr::And(l, r) = e {
                flatten(*l, out);
                flatten(*r, out);
            } else {
                out.push(e);
            }
        }
        flatten(stmt.selection.unwrap(), &mut conjuncts);
        assert_eq!(conjuncts.len(), 3);

        // Joins chain after a comma factor too.
        let stmt = parse_statement("SELECT * FROM a, b JOIN c ON c.id = b.id WHERE a.id = b.a_id")
            .unwrap();
        assert_eq!(stmt.from.len(), 3);
        let mut conjuncts = Vec::new();
        flatten(stmt.selection.unwrap(), &mut conjuncts);
        assert_eq!(conjuncts.len(), 2, "ON condition precedes the WHERE conjunct");
        assert!(
            matches!(&conjuncts[0], Expr::Cmp { left: Operand::Column(c), .. } if c.qualifier.as_deref() == Some("c"))
        );
    }

    #[test]
    fn join_syntax_error_paths() {
        for (sql, needle) in [
            ("SELECT * FROM a CROSS b", "`JOIN` after `CROSS`"),
            ("SELECT * FROM a CROSS JOIN", "table name"),
            ("SELECT * FROM a JOIN b", "`ON` after the joined table"),
            ("SELECT * FROM a INNER b ON a.x = b.y", "`JOIN` after `INNER`"),
            ("SELECT * FROM a JOIN b ON", "a literal"),
        ] {
            let err = parse_statement(sql).unwrap_err();
            assert!(
                err.message.contains(needle),
                "for `{sql}` expected `{needle}`, got `{}`",
                err.message
            );
        }
    }

    #[test]
    fn positional_and_numbered_params_assign_slots() {
        let stmt = parse_statement(
            "SELECT COUNT(*) FROM t x WHERE x.a > ? AND x.b = ? AND x.c BETWEEN ? AND ?",
        )
        .unwrap();
        let mut params = Vec::new();
        fn collect(e: &Expr, out: &mut Vec<u32>) {
            match e {
                Expr::And(l, r) | Expr::Or(l, r) => {
                    collect(l, out);
                    collect(r, out);
                }
                Expr::Not(i) | Expr::Paren(i) => collect(i, out),
                Expr::Cmp { left, right, .. } => {
                    for op in [left, right] {
                        if let Operand::Literal(Literal { value: LiteralValue::Param(i), .. }) = op
                        {
                            out.push(*i);
                        }
                    }
                }
                Expr::Between { low, high, .. } => {
                    for l in [low, high] {
                        if let LiteralValue::Param(i) = l.value {
                            out.push(i);
                        }
                    }
                }
                Expr::InList { items, .. } => {
                    for l in items {
                        if let LiteralValue::Param(i) = l.value {
                            out.push(i);
                        }
                    }
                }
                Expr::Like { pattern, .. } => {
                    if let LiteralValue::Param(i) = pattern.value {
                        out.push(i);
                    }
                }
                Expr::IsNull { .. } => {}
            }
        }
        collect(stmt.selection.as_ref().unwrap(), &mut params);
        assert_eq!(params, vec![0, 1, 2, 3], "`?` slots assign left to right");

        let stmt =
            parse_statement("SELECT * FROM t x WHERE x.a = $2 AND x.b LIKE $1 AND x.c IN ($2)")
                .unwrap();
        let mut params = Vec::new();
        collect(stmt.selection.as_ref().unwrap(), &mut params);
        assert_eq!(params, vec![1, 0, 1], "`$n` is 1-based and reusable");
    }

    #[test]
    fn param_misuse_is_rejected() {
        for (sql, needle) in [
            ("SELECT * FROM t x WHERE x.a = ? AND x.b = $1", "cannot mix"),
            ("SELECT * FROM t x WHERE x.a = $1 AND x.b = ?", "cannot mix"),
            ("SELECT * FROM t x WHERE x.a = $0", "numbered from `$1`"),
        ] {
            let err = parse_statement(sql).unwrap_err();
            assert!(err.message.contains(needle), "for `{sql}`: {}", err.message);
        }
        // Param slots reset between statements of one script.
        let stmts =
            parse_statements("SELECT * FROM t x WHERE x.a = ?; SELECT * FROM t x WHERE x.a = $1;")
                .unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn prepared_statement_commands_parse() {
        let stmt =
            parse_script_statement("PREPARE by_year AS SELECT COUNT(*) FROM t x WHERE x.a > ?;")
                .unwrap();
        match stmt {
            ScriptStatement::Prepare { name, params, .. } => {
                assert_eq!(name, "by_year");
                assert_eq!(params, 1);
            }
            other => panic!("expected PREPARE, got {other:?}"),
        }
        let stmt = parse_script_statement("PREPARE two AS SELECT COUNT(*) FROM t x WHERE x.a = $3")
            .unwrap();
        assert!(matches!(stmt, ScriptStatement::Prepare { params: 3, .. }));

        let stmt = parse_script_statement("EXECUTE by_year(2000, 'x', NULL, -5)").unwrap();
        match stmt {
            ScriptStatement::Execute { name, args } => {
                assert_eq!(name, "by_year");
                let values: Vec<LiteralValue> = args.into_iter().map(|a| a.value).collect();
                assert_eq!(
                    values,
                    vec![
                        LiteralValue::Int(2000),
                        LiteralValue::Str("x".into()),
                        LiteralValue::Null,
                        LiteralValue::Int(-5),
                    ]
                );
            }
            other => panic!("expected EXECUTE, got {other:?}"),
        }
        assert!(matches!(
            parse_script_statement("EXECUTE noargs").unwrap(),
            ScriptStatement::Execute { args, .. } if args.is_empty()
        ));
        assert!(matches!(
            parse_script_statement("EXECUTE noargs()").unwrap(),
            ScriptStatement::Execute { args, .. } if args.is_empty()
        ));
        assert!(matches!(
            parse_script_statement("DEALLOCATE by_year;").unwrap(),
            ScriptStatement::Deallocate { name } if name == "by_year"
        ));
        assert!(matches!(
            parse_script_statement("SELECT * FROM t").unwrap(),
            ScriptStatement::Select(_)
        ));

        for (sql, needle) in [
            ("PREPARE AS SELECT * FROM t", "statement name after `PREPARE`"),
            ("PREPARE q SELECT * FROM t", "`AS` after the statement name"),
            ("EXECUTE q(?)", "a literal"),
            ("EXECUTE q(1", "`)` closing the argument list"),
            ("DEALLOCATE", "statement name after `DEALLOCATE`"),
        ] {
            let err = parse_script_statement(sql).unwrap_err();
            assert!(err.message.contains(needle), "for `{sql}`: {}", err.message);
        }
    }

    #[test]
    fn explain_statements_parse() {
        let stmt = parse_script_statement("EXPLAIN SELECT COUNT(*) FROM t x;").unwrap();
        assert!(matches!(stmt, ScriptStatement::Explain { analyze: false, .. }), "{stmt:?}");
        let stmt = parse_script_statement("explain analyze SELECT COUNT(*) FROM t x WHERE x.a > 3")
            .unwrap();
        match stmt {
            ScriptStatement::Explain { analyze, statement } => {
                assert!(analyze);
                assert!(statement.selection.is_some());
            }
            other => panic!("expected EXPLAIN ANALYZE, got {other:?}"),
        }
        // ANALYZE alone is not a statement; EXPLAIN requires a SELECT body.
        assert!(parse_script_statement("ANALYZE SELECT * FROM t").is_err());
        let err = parse_script_statement("EXPLAIN ANALYZE").unwrap_err();
        assert!(err.message.contains("SELECT"), "{}", err.message);
    }

    #[test]
    fn unary_minus_binds_to_integer_literals() {
        let stmt = parse_statement("SELECT * FROM t WHERE t.a = -42").unwrap();
        match stmt.selection.unwrap() {
            Expr::Cmp { right: Operand::Literal(lit), .. } => {
                assert_eq!(lit.value, LiteralValue::Int(-42));
            }
            other => panic!("expected comparison, got {other:?}"),
        }
    }
}
