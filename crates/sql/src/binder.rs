//! Name resolution and lowering: AST → [`QuerySpec`].
//!
//! The binder resolves `FROM` range variables against the catalog, resolves
//! qualified and unqualified column references (reporting unknown and
//! ambiguous names with spans), classifies `WHERE` conjuncts into equality
//! join edges and single-relation base predicates, type-checks literals
//! against column types and finally validates the whole query (connected
//! join graph, no duplicate aliases).
//!
//! Lowering preserves the conjunct structure of the text: parenthesised
//! groups become [`Predicate::And`] / [`Predicate::Or`] nodes, which is what
//! makes `emit → parse → bind` round-trip to a structurally identical spec.
//!
//! NULL handling follows SQL three-valued logic for the negated forms the
//! binder itself constructs (`<>` on strings, `NOT BETWEEN/IN/LIKE` get an
//! `IS NOT NULL` guard — see `negate_if`); an explicit user-written
//! `NOT (...)` stays plain boolean negation, matching the engine's
//! two-valued predicate evaluation.

use qob_plan::{BaseRelation, JoinEdge, QuerySpec, QueryValidationError};
use qob_storage::{CmpOp, ColumnId, DataType, Database, Predicate};

use crate::ast::{
    ColumnRef, Expr, Literal, LiteralValue, Operand, SelectExpr, SelectStatement, TableRef,
};
use crate::error::{ErrorKind, SqlError};

/// Binds a parsed statement against `db`, producing a validated
/// [`QuerySpec`] named `name`.
pub fn bind(
    db: &Database,
    stmt: &SelectStatement,
    name: impl Into<String>,
) -> Result<QuerySpec, SqlError> {
    let binder = Binder { db };
    binder.bind(stmt, name.into())
}

struct Binder<'a> {
    db: &'a Database,
}

/// A resolved column: which relation it belongs to and its column id.
#[derive(Debug, Clone, Copy)]
struct BoundColumn {
    rel: usize,
    column: ColumnId,
    dtype: DataType,
}

impl<'a> Binder<'a> {
    fn bind(&self, stmt: &SelectStatement, name: String) -> Result<QuerySpec, SqlError> {
        if let Some(span) = crate::params::first_param_span(stmt) {
            return Err(SqlError::new(
                ErrorKind::Parameter,
                "statement has unbound parameter placeholders; PREPARE it and EXECUTE it with values",
                span,
            ));
        }
        let mut relations = self.bind_from(&stmt.from)?;
        self.check_select_items(stmt, &relations)?;

        let mut joins = Vec::new();
        if let Some(selection) = &stmt.selection {
            let mut conjuncts = Vec::new();
            flatten_and(selection, &mut conjuncts);
            for conjunct in conjuncts {
                self.bind_conjunct(conjunct, &mut relations, &mut joins)?;
            }
        }

        let query = QuerySpec::new(name, relations, joins);
        query.validate(self.db).map_err(|e| {
            let kind = match e {
                QueryValidationError::DuplicateAlias(_) => ErrorKind::DuplicateAlias,
                _ => ErrorKind::Validation,
            };
            SqlError::spanless(kind, e.to_string())
        })?;
        Ok(query)
    }

    // -- FROM --------------------------------------------------------------

    fn bind_from(&self, from: &[TableRef]) -> Result<Vec<BaseRelation>, SqlError> {
        let mut relations: Vec<BaseRelation> = Vec::with_capacity(from.len());
        for table_ref in from {
            let table_id = self.db.table_id(&table_ref.table).ok_or_else(|| {
                SqlError::new(
                    ErrorKind::UnknownTable,
                    format!("no table `{}` in the catalog", table_ref.table),
                    table_ref.span,
                )
            })?;
            let alias = table_ref.alias.clone().unwrap_or_else(|| table_ref.table.clone());
            if relations.iter().any(|r| r.alias == alias) {
                return Err(SqlError::new(
                    ErrorKind::DuplicateAlias,
                    format!("alias `{alias}` is used by more than one FROM entry"),
                    table_ref.span,
                ));
            }
            relations.push(BaseRelation::unfiltered(table_id, alias));
        }
        Ok(relations)
    }

    // -- SELECT list -------------------------------------------------------

    fn check_select_items(
        &self,
        stmt: &SelectStatement,
        relations: &[BaseRelation],
    ) -> Result<(), SqlError> {
        for item in &stmt.items {
            match &item.expr {
                SelectExpr::Star | SelectExpr::CountStar => {}
                SelectExpr::Aggregate { func, arg } => {
                    if !matches!(func.as_str(), "MIN" | "MAX" | "COUNT") {
                        return Err(SqlError::new(
                            ErrorKind::Unsupported,
                            format!("unsupported aggregate function `{func}` (MIN, MAX and COUNT are available)"),
                            arg.span,
                        ));
                    }
                    self.resolve_column(arg, relations)?;
                }
                SelectExpr::Column(column) => {
                    self.resolve_column(column, relations)?;
                }
            }
        }
        Ok(())
    }

    // -- column resolution -------------------------------------------------

    fn resolve_column(
        &self,
        column: &ColumnRef,
        relations: &[BaseRelation],
    ) -> Result<BoundColumn, SqlError> {
        match &column.qualifier {
            Some(alias) => {
                let rel = relations.iter().position(|r| &r.alias == alias).ok_or_else(|| {
                    SqlError::new(
                        ErrorKind::UnknownAlias,
                        format!("no FROM entry with alias `{alias}`"),
                        column.span,
                    )
                })?;
                let table = self.db.table(relations[rel].table);
                let column_id = table.column_id(&column.column).ok_or_else(|| {
                    SqlError::new(
                        ErrorKind::UnknownColumn,
                        format!("table `{}` has no column `{}`", table.name(), column.column),
                        column.span,
                    )
                })?;
                Ok(BoundColumn {
                    rel,
                    column: column_id,
                    dtype: table.column_meta(column_id).dtype,
                })
            }
            None => {
                let mut matches = Vec::new();
                for (rel, relation) in relations.iter().enumerate() {
                    let table = self.db.table(relation.table);
                    if let Some(column_id) = table.column_id(&column.column) {
                        matches.push(BoundColumn {
                            rel,
                            column: column_id,
                            dtype: table.column_meta(column_id).dtype,
                        });
                    }
                }
                match matches.len() {
                    0 => Err(SqlError::new(
                        ErrorKind::UnknownColumn,
                        format!("no FROM table has a column `{}`", column.column),
                        column.span,
                    )),
                    1 => Ok(matches[0]),
                    n => Err(SqlError::new(
                        ErrorKind::AmbiguousColumn,
                        format!(
                            "column `{}` is ambiguous: it exists in {n} FROM tables; qualify it with an alias",
                            column.column
                        ),
                        column.span,
                    )),
                }
            }
        }
    }

    // -- WHERE -------------------------------------------------------------

    /// Classifies one top-level conjunct as a join edge or a base predicate.
    fn bind_conjunct(
        &self,
        conjunct: &Expr,
        relations: &mut [BaseRelation],
        joins: &mut Vec<JoinEdge>,
    ) -> Result<(), SqlError> {
        if let Expr::Cmp { left: Operand::Column(left), op, right: Operand::Column(right) } =
            conjunct
        {
            let l = self.resolve_column(left, relations)?;
            let r = self.resolve_column(right, relations)?;
            if l.rel == r.rel {
                return Err(SqlError::new(
                    ErrorKind::Unsupported,
                    format!(
                        "comparison between two columns of `{}` is not supported",
                        relations[l.rel].alias
                    ),
                    conjunct.span(),
                ));
            }
            if *op != CmpOp::Eq {
                return Err(SqlError::new(
                    ErrorKind::Unsupported,
                    "only equality joins are supported",
                    conjunct.span(),
                ));
            }
            if l.dtype != r.dtype {
                return Err(SqlError::new(
                    ErrorKind::TypeMismatch,
                    format!(
                        "join compares {} column `{}` with {} column `{}`",
                        l.dtype,
                        left.display_name(),
                        r.dtype,
                        right.display_name()
                    ),
                    conjunct.span(),
                ));
            }
            joins.push(JoinEdge {
                left: l.rel,
                left_column: l.column,
                right: r.rel,
                right_column: r.column,
            });
            return Ok(());
        }
        let (rel, predicate) = self.lower(conjunct, relations)?;
        relations[rel].predicates.push(predicate);
        Ok(())
    }

    /// Lowers a single-relation boolean expression to a [`Predicate`],
    /// returning the relation it restricts.
    fn lower(
        &self,
        expr: &Expr,
        relations: &[BaseRelation],
    ) -> Result<(usize, Predicate), SqlError> {
        match expr {
            Expr::Paren(inner) => match inner.as_ref() {
                // A parenthesised AND/OR chain becomes one composite node.
                Expr::And(..) => {
                    let mut parts = Vec::new();
                    flatten_and(inner, &mut parts);
                    self.lower_group(expr, &parts, relations, Predicate::And)
                }
                Expr::Or(..) => {
                    let mut parts = Vec::new();
                    flatten_or(inner, &mut parts);
                    self.lower_group(expr, &parts, relations, Predicate::Or)
                }
                other => self.lower(other, relations),
            },
            Expr::And(..) => {
                let mut parts = Vec::new();
                flatten_and(expr, &mut parts);
                self.lower_group(expr, &parts, relations, Predicate::And)
            }
            Expr::Or(..) => {
                let mut parts = Vec::new();
                flatten_or(expr, &mut parts);
                self.lower_group(expr, &parts, relations, Predicate::Or)
            }
            Expr::Not(inner) => {
                let (rel, pred) = self.lower(inner, relations)?;
                Ok((rel, Predicate::Not(Box::new(pred))))
            }
            Expr::Cmp { left, op, right } => self.lower_cmp(expr, left, *op, right, relations),
            Expr::Between { column, negated, low, high } => {
                let bound = self.resolve_column(column, relations)?;
                self.expect_type(bound, DataType::Int, column, low)?;
                let low_v = self.int_literal(low)?;
                let high_v = self.int_literal(high)?;
                let pred = Predicate::IntBetween { column: bound.column, low: low_v, high: high_v };
                Ok((bound.rel, negate_if(*negated, bound.column, pred)))
            }
            Expr::InList { column, negated, items } => {
                let bound = self.resolve_column(column, relations)?;
                let pred = match bound.dtype {
                    DataType::Str => {
                        let values = items
                            .iter()
                            .map(|item| self.str_literal(column, bound, item))
                            .collect::<Result<Vec<_>, _>>()?;
                        Predicate::StrIn { column: bound.column, values }
                    }
                    DataType::Int => {
                        // The predicate language has no integer IN; lower to a
                        // disjunction of equalities (a bare equality for a
                        // single item, so singleton Or never appears and the
                        // emit → bind round-trip stays the identity).
                        let mut alternatives = items
                            .iter()
                            .map(|item| {
                                self.int_typed_literal(column, bound, item).map(|value| {
                                    Predicate::IntCmp { column: bound.column, op: CmpOp::Eq, value }
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        if alternatives.len() == 1 {
                            alternatives.pop().expect("one alternative")
                        } else {
                            Predicate::Or(alternatives)
                        }
                    }
                };
                Ok((bound.rel, negate_if(*negated, bound.column, pred)))
            }
            Expr::Like { column, negated, pattern } => {
                let bound = self.resolve_column(column, relations)?;
                let pattern = self.str_literal(column, bound, pattern)?;
                let pred = Predicate::Like { column: bound.column, pattern };
                Ok((bound.rel, negate_if(*negated, bound.column, pred)))
            }
            Expr::IsNull { column, negated } => {
                let bound = self.resolve_column(column, relations)?;
                let pred = if *negated {
                    Predicate::IsNotNull { column: bound.column }
                } else {
                    Predicate::IsNull { column: bound.column }
                };
                Ok((bound.rel, pred))
            }
        }
    }

    /// Lowers the parts of an AND/OR group, requiring them all to restrict
    /// the same relation.
    fn lower_group(
        &self,
        whole: &Expr,
        parts: &[&Expr],
        relations: &[BaseRelation],
        combine: impl FnOnce(Vec<Predicate>) -> Predicate,
    ) -> Result<(usize, Predicate), SqlError> {
        let mut rel = None;
        let mut predicates = Vec::with_capacity(parts.len());
        for part in parts {
            let (part_rel, predicate) = self.lower(part, relations)?;
            match rel {
                None => rel = Some(part_rel),
                Some(r) if r == part_rel => {}
                Some(r) => {
                    return Err(SqlError::new(
                        ErrorKind::Unsupported,
                        format!(
                            "a boolean group must restrict a single relation, but this one mixes `{}` and `{}`",
                            relations[r].alias, relations[part_rel].alias
                        ),
                        whole.span(),
                    ));
                }
            }
            predicates.push(predicate);
        }
        let rel = rel.expect("AND/OR groups have at least two parts");
        Ok((rel, combine(predicates)))
    }

    fn lower_cmp(
        &self,
        whole: &Expr,
        left: &Operand,
        op: CmpOp,
        right: &Operand,
        relations: &[BaseRelation],
    ) -> Result<(usize, Predicate), SqlError> {
        // Normalise to column <op> literal.
        let (column, op, literal) = match (left, right) {
            (Operand::Column(c), Operand::Literal(l)) => (c, op, l),
            (Operand::Literal(l), Operand::Column(c)) => (c, flip(op), l),
            (Operand::Literal(_), Operand::Literal(_)) => {
                return Err(SqlError::new(
                    ErrorKind::Unsupported,
                    "comparison between two literals",
                    whole.span(),
                ));
            }
            (Operand::Column(_), Operand::Column(_)) => {
                // Column-column comparisons inside groups / NOT are joins in
                // disguise; those are only valid as top-level conjuncts.
                return Err(SqlError::new(
                    ErrorKind::Unsupported,
                    "join predicates cannot appear inside OR, NOT or parentheses",
                    whole.span(),
                ));
            }
        };
        let bound = self.resolve_column(column, relations)?;
        match (&literal.value, bound.dtype) {
            (LiteralValue::Null, _) => Err(SqlError::new(
                ErrorKind::Unsupported,
                "comparison with NULL is always unknown; use IS [NOT] NULL",
                literal.span,
            )),
            (LiteralValue::Int(value), DataType::Int) => {
                Ok((bound.rel, Predicate::IntCmp { column: bound.column, op, value: *value }))
            }
            (LiteralValue::Str(value), DataType::Str) => match op {
                CmpOp::Eq => {
                    Ok((bound.rel, Predicate::StrEq { column: bound.column, value: value.clone() }))
                }
                // SQL `<>` excludes NULL cells; see `negate_if`.
                CmpOp::Ne => Ok((
                    bound.rel,
                    negate_if(
                        true,
                        bound.column,
                        Predicate::StrEq { column: bound.column, value: value.clone() },
                    ),
                )),
                _ => Err(SqlError::new(
                    ErrorKind::Unsupported,
                    format!("operator `{}` is not supported on string columns", op.sql()),
                    whole.span(),
                )),
            },
            (value, dtype) => Err(SqlError::new(
                ErrorKind::TypeMismatch,
                format!(
                    "column `{}` has type {dtype} but the literal is {}",
                    column.display_name(),
                    value.type_name()
                ),
                literal.span,
            )),
        }
    }

    // -- literal helpers ---------------------------------------------------

    fn expect_type(
        &self,
        bound: BoundColumn,
        expected: DataType,
        column: &ColumnRef,
        witness: &Literal,
    ) -> Result<(), SqlError> {
        if bound.dtype != expected {
            return Err(SqlError::new(
                ErrorKind::TypeMismatch,
                format!(
                    "column `{}` has type {} but this predicate needs {expected}",
                    column.display_name(),
                    bound.dtype
                ),
                column.span.merge(witness.span),
            ));
        }
        Ok(())
    }

    fn int_literal(&self, literal: &Literal) -> Result<i64, SqlError> {
        match &literal.value {
            LiteralValue::Int(v) => Ok(*v),
            other => Err(SqlError::new(
                ErrorKind::TypeMismatch,
                format!("expected an integer literal, found {}", other.type_name()),
                literal.span,
            )),
        }
    }

    fn int_typed_literal(
        &self,
        column: &ColumnRef,
        bound: BoundColumn,
        literal: &Literal,
    ) -> Result<i64, SqlError> {
        match &literal.value {
            LiteralValue::Int(v) => Ok(*v),
            other => Err(SqlError::new(
                ErrorKind::TypeMismatch,
                format!(
                    "column `{}` has type {} but the literal is {}",
                    column.display_name(),
                    bound.dtype,
                    other.type_name()
                ),
                literal.span,
            )),
        }
    }

    fn str_literal(
        &self,
        column: &ColumnRef,
        bound: BoundColumn,
        literal: &Literal,
    ) -> Result<String, SqlError> {
        match &literal.value {
            LiteralValue::Str(s) if bound.dtype == DataType::Str => Ok(s.clone()),
            LiteralValue::Str(_)
            | LiteralValue::Int(_)
            | LiteralValue::Null
            | LiteralValue::Param(_) => Err(SqlError::new(
                ErrorKind::TypeMismatch,
                format!(
                    "column `{}` has type {} but the literal is {}",
                    column.display_name(),
                    bound.dtype,
                    literal.value.type_name()
                ),
                literal.span,
            )),
        }
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

/// Applies SQL negation semantics: `col NOT BETWEEN / NOT IN / NOT LIKE ...`
/// is false for NULL cells (three-valued logic), but the engine's
/// [`Predicate::Not`] is plain boolean negation over predicates that treat
/// NULL as non-matching — so a bare `Not` would *include* NULL rows.  The
/// null guard restores the SQL behavior.  (Integer `<>` needs no guard:
/// [`Predicate::IntCmp`] already skips NULL cells itself.)
fn negate_if(negated: bool, column: ColumnId, pred: Predicate) -> Predicate {
    if negated {
        Predicate::And(vec![Predicate::IsNotNull { column }, Predicate::Not(Box::new(pred))])
    } else {
        pred
    }
}

/// Flattens a bare (unparenthesised) AND chain into its conjuncts.
fn flatten_and<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::And(l, r) = expr {
        flatten_and(l, out);
        flatten_and(r, out);
    } else {
        out.push(expr);
    }
}

/// Flattens a bare OR chain into its alternatives.
fn flatten_or<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Or(l, r) = expr {
        flatten_or(l, out);
        flatten_or(r, out);
    } else {
        out.push(expr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use qob_storage::{ColumnMeta, TableBuilder, Value};

    /// A two-table catalog: movies(id, year, kind) and roles(id, movie_id, role).
    fn db() -> Database {
        let mut db = Database::new();
        let mut movies = TableBuilder::new(
            "movies",
            vec![
                ColumnMeta::new("id", DataType::Int),
                ColumnMeta::new("year", DataType::Int),
                ColumnMeta::new("kind", DataType::Str),
            ],
        );
        for (id, year, kind) in [(1, 1999, "movie"), (2, 2003, "movie"), (3, 1950, "short")] {
            movies
                .push_row(vec![Value::Int(id), Value::Int(year), Value::Str(kind.into())])
                .unwrap();
        }
        let mut roles = TableBuilder::new(
            "roles",
            vec![
                ColumnMeta::new("id", DataType::Int),
                ColumnMeta::new("movie_id", DataType::Int),
                ColumnMeta::new("role", DataType::Str),
            ],
        );
        for (id, movie_id, role) in [(1, 1, "actor"), (2, 2, "director")] {
            roles
                .push_row(vec![Value::Int(id), Value::Int(movie_id), Value::Str(role.into())])
                .unwrap();
        }
        db.add_table(movies.finish()).unwrap();
        db.add_table(roles.finish()).unwrap();
        db
    }

    fn bind_sql(sql: &str) -> Result<QuerySpec, SqlError> {
        let db = db();
        let stmt = parse_statement(sql).unwrap();
        bind(&db, &stmt, "test")
    }

    #[test]
    fn binds_joins_and_base_predicates() {
        let q = bind_sql(
            "SELECT COUNT(*) FROM movies m, roles r \
             WHERE r.movie_id = m.id AND m.year > 1990 AND r.role = 'actor'",
        )
        .unwrap();
        assert_eq!(q.rel_count(), 2);
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].left, 1, "left side is the first-mentioned alias `r`");
        assert_eq!(q.relations[0].predicates.len(), 1);
        assert!(matches!(
            q.relations[0].predicates[0],
            Predicate::IntCmp { op: CmpOp::Gt, value: 1990, .. }
        ));
        assert!(matches!(q.relations[1].predicates[0], Predicate::StrEq { .. }));
    }

    #[test]
    fn alias_defaults_to_table_name_and_unqualified_columns_resolve() {
        let q = bind_sql("SELECT COUNT(*) FROM movies WHERE year = 1999").unwrap();
        assert_eq!(q.relations[0].alias, "movies");
        assert_eq!(q.relations[0].predicates.len(), 1);
    }

    #[test]
    fn ambiguous_and_unknown_names_are_diagnosed() {
        let err =
            bind_sql("SELECT COUNT(*) FROM movies m, roles r WHERE r.movie_id = m.id AND id = 1")
                .unwrap_err();
        assert_eq!(err.kind, ErrorKind::AmbiguousColumn);

        let err = bind_sql("SELECT * FROM nope").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownTable);

        let err = bind_sql("SELECT * FROM movies m WHERE z.id = 1").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownAlias);

        let err = bind_sql("SELECT * FROM movies m WHERE m.budget = 1").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownColumn);

        let err = bind_sql("SELECT * FROM movies m WHERE colour = 'red'").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownColumn);

        let err = bind_sql("SELECT * FROM movies m, movies m WHERE m.id = 1").unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateAlias);
    }

    #[test]
    fn type_mismatches_are_diagnosed() {
        let err = bind_sql("SELECT * FROM movies m WHERE m.year = 'old'").unwrap_err();
        assert_eq!(err.kind, ErrorKind::TypeMismatch);

        let err = bind_sql("SELECT * FROM movies m WHERE m.kind = 3").unwrap_err();
        assert_eq!(err.kind, ErrorKind::TypeMismatch);

        let err = bind_sql("SELECT * FROM movies m WHERE m.kind BETWEEN 'a' AND 'b'").unwrap_err();
        assert_eq!(err.kind, ErrorKind::TypeMismatch);

        let err = bind_sql("SELECT * FROM movies m WHERE m.kind IN ('a', 3)").unwrap_err();
        assert_eq!(err.kind, ErrorKind::TypeMismatch);

        let err = bind_sql("SELECT * FROM movies m WHERE m.year LIKE '%9%'").unwrap_err();
        assert_eq!(err.kind, ErrorKind::TypeMismatch);

        let err =
            bind_sql("SELECT * FROM movies m, roles r WHERE r.movie_id = m.id AND r.role = m.id")
                .unwrap_err();
        assert_eq!(err.kind, ErrorKind::TypeMismatch, "join across Int and Str columns");
    }

    #[test]
    fn unsupported_constructs_are_diagnosed() {
        let err = bind_sql("SELECT * FROM movies m, roles r WHERE r.movie_id < m.id").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unsupported, "non-equality join");

        let err = bind_sql("SELECT * FROM movies m WHERE m.id = m.year").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unsupported, "intra-relation column comparison");

        let err = bind_sql("SELECT * FROM movies m WHERE m.year = NULL").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unsupported);
        assert!(err.message.contains("IS [NOT] NULL"));

        let err = bind_sql("SELECT * FROM movies m WHERE m.kind < 'z'").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unsupported, "string ordering");

        let err = bind_sql(
            "SELECT * FROM movies m, roles r \
             WHERE r.movie_id = m.id AND (m.year = 1999 OR r.role = 'actor')",
        )
        .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unsupported, "multi-relation OR group");

        let err = bind_sql("SELECT SUM(m.year) FROM movies m").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unsupported, "aggregate beyond MIN/MAX/COUNT");
    }

    #[test]
    fn disconnected_join_graph_is_rejected() {
        let err = bind_sql("SELECT COUNT(*) FROM movies m, roles r").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Validation);
        assert!(err.message.contains("cross product"), "{}", err.message);
    }

    #[test]
    fn groups_lower_to_composite_predicates() {
        let q = bind_sql(
            "SELECT COUNT(*) FROM movies m \
             WHERE (m.year < 1960 OR m.year > 2000) AND NOT (m.kind = 'short') \
               AND (m.kind = 'movie' AND m.year <> 1995) AND m.year IN (1999, 2003)",
        )
        .unwrap();
        let preds = &q.relations[0].predicates;
        assert_eq!(preds.len(), 4);
        assert!(matches!(&preds[0], Predicate::Or(alts) if alts.len() == 2));
        assert!(matches!(&preds[1], Predicate::Not(_)));
        assert!(matches!(&preds[2], Predicate::And(parts) if parts.len() == 2));
        assert!(matches!(&preds[3], Predicate::Or(alts) if alts.len() == 2), "integer IN");
    }

    #[test]
    fn literal_on_the_left_flips_the_operator() {
        let q = bind_sql("SELECT COUNT(*) FROM movies m WHERE 1990 < m.year").unwrap();
        assert!(matches!(
            q.relations[0].predicates[0],
            Predicate::IntCmp { op: CmpOp::Gt, value: 1990, .. }
        ));
    }

    #[test]
    fn string_inequality_lowers_to_null_guarded_not_eq() {
        // SQL `<>` is false for NULL cells, but the engine's Not is plain
        // boolean negation — so the binder adds the IS NOT NULL guard.
        let q = bind_sql("SELECT COUNT(*) FROM movies m WHERE m.kind <> 'short'").unwrap();
        match &q.relations[0].predicates[0] {
            Predicate::And(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Predicate::IsNotNull { .. }));
                assert!(
                    matches!(&parts[1], Predicate::Not(inner) if matches!(**inner, Predicate::StrEq { .. }))
                );
            }
            other => panic!("expected null-guarded negation, got {other:?}"),
        }
    }

    #[test]
    fn negated_predicates_carry_a_null_guard() {
        for sql in [
            "SELECT COUNT(*) FROM movies m WHERE m.kind NOT LIKE 's%'",
            "SELECT COUNT(*) FROM movies m WHERE m.kind NOT IN ('a', 'b')",
            "SELECT COUNT(*) FROM movies m WHERE m.year NOT BETWEEN 1960 AND 1990",
        ] {
            let q = bind_sql(sql).unwrap();
            assert!(
                matches!(
                    &q.relations[0].predicates[0],
                    Predicate::And(parts)
                        if parts.len() == 2 && matches!(parts[0], Predicate::IsNotNull { .. })
                ),
                "for `{sql}`: {:?}",
                q.relations[0].predicates[0]
            );
        }
        // Integer `<>` needs no guard: IntCmp itself skips NULL cells.
        let q = bind_sql("SELECT COUNT(*) FROM movies m WHERE m.year <> 1999").unwrap();
        assert!(matches!(q.relations[0].predicates[0], Predicate::IntCmp { op: CmpOp::Ne, .. }));
    }

    #[test]
    fn singleton_integer_in_lowers_to_bare_equality() {
        let q = bind_sql("SELECT COUNT(*) FROM movies m WHERE m.year IN (1999)").unwrap();
        assert!(
            matches!(
                q.relations[0].predicates[0],
                Predicate::IntCmp { op: CmpOp::Eq, value: 1999, .. }
            ),
            "single-item integer IN must not wrap in Or: {:?}",
            q.relations[0].predicates[0]
        );
    }
}
