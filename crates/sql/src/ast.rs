//! The abstract syntax tree of the JOB SQL dialect.
//!
//! One statement is a single select-project-join block:
//! `SELECT <items> FROM <range variables> [WHERE <boolean expression>]`.
//! The tree is deliberately close to the text — parenthesised groups are kept
//! as [`Expr::Paren`] nodes so the binder can preserve the conjunct structure
//! the query was written with (which is what makes emission round-trip).

use qob_storage::CmpOp;

use crate::error::Span;

/// A column reference, optionally qualified by a range-variable alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// `alias` in `alias.column`; `None` for a bare column name.
    pub qualifier: Option<String>,
    /// The column name.
    pub column: String,
    /// Source span of the whole reference.
    pub span: Span,
}

impl ColumnRef {
    /// Renders the reference as it appeared (`alias.column` or `column`).
    pub fn display_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.column),
            None => self.column.clone(),
        }
    }
}

/// A literal scalar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiteralValue {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// `NULL`.
    Null,
    /// A parameter placeholder (`?` or `$n`), carrying its resolved
    /// 0-based slot index.  Placeholders are substituted with concrete
    /// values before binding — see [`crate::substitute_params`].
    Param(u32),
}

impl LiteralValue {
    /// Type name used in diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            LiteralValue::Int(_) => "integer",
            LiteralValue::Str(_) => "string",
            LiteralValue::Null => "NULL",
            LiteralValue::Param(_) => "parameter",
        }
    }
}

/// A literal with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    /// The value.
    pub value: LiteralValue,
    /// Source span.
    pub span: Span,
}

/// Either side of a comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A column reference.
    Column(ColumnRef),
    /// A literal.
    Literal(Literal),
}

impl Operand {
    /// The operand's source span.
    pub fn span(&self) -> Span {
        match self {
            Operand::Column(c) => c.span,
            Operand::Literal(l) => l.span,
        }
    }
}

/// A boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `left OR right` (left-associative chains nest on the left).
    Or(Box<Expr>, Box<Expr>),
    /// `left AND right` (left-associative chains nest on the left).
    And(Box<Expr>, Box<Expr>),
    /// `NOT expr`.
    Not(Box<Expr>),
    /// `( expr )` — kept explicit to preserve grouping.
    Paren(Box<Expr>),
    /// `left <op> right`.
    Cmp {
        /// Left operand.
        left: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: Operand,
    },
    /// `column [NOT] BETWEEN low AND high`.
    Between {
        /// Column operand.
        column: ColumnRef,
        /// True for `NOT BETWEEN`.
        negated: bool,
        /// Lower bound.
        low: Literal,
        /// Upper bound.
        high: Literal,
    },
    /// `column [NOT] IN ( item, ... )`.
    InList {
        /// Column operand.
        column: ColumnRef,
        /// True for `NOT IN`.
        negated: bool,
        /// The literal list.
        items: Vec<Literal>,
    },
    /// `column [NOT] LIKE pattern`.
    Like {
        /// Column operand.
        column: ColumnRef,
        /// True for `NOT LIKE`.
        negated: bool,
        /// The pattern literal.
        pattern: Literal,
    },
    /// `column IS [NOT] NULL`.
    IsNull {
        /// Column operand.
        column: ColumnRef,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl Expr {
    /// An approximate source span for diagnostics.
    pub fn span(&self) -> Span {
        match self {
            Expr::Or(l, r) | Expr::And(l, r) => l.span().merge(r.span()),
            Expr::Not(e) | Expr::Paren(e) => e.span(),
            Expr::Cmp { left, right, .. } => left.span().merge(right.span()),
            Expr::Between { column, high, .. } => column.span.merge(high.span),
            Expr::InList { column, items, .. } => {
                items.last().map(|l| column.span.merge(l.span)).unwrap_or(column.span)
            }
            Expr::Like { column, pattern, .. } => column.span.merge(pattern.span),
            Expr::IsNull { column, .. } => column.span,
        }
    }
}

/// One range variable of the `FROM` clause: `table [AS] [alias]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// The catalog table name.
    pub table: String,
    /// The alias, if any (defaults to the table name when bound).
    pub alias: Option<String>,
    /// Source span of the reference.
    pub span: Span,
}

/// What a select item projects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectExpr {
    /// `*`.
    Star,
    /// `COUNT(*)`.
    CountStar,
    /// `func(column)` — MIN / MAX / COUNT over a column.
    Aggregate {
        /// Upper-cased function name.
        func: String,
        /// The argument column.
        arg: ColumnRef,
    },
    /// A plain column.
    Column(ColumnRef),
}

/// One item of the `SELECT` list with its optional output alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: SelectExpr,
    /// `AS alias`, if given.
    pub alias: Option<String>,
}

/// A full select-project-join statement.
///
/// Explicit `INNER JOIN ... ON` / `CROSS JOIN` syntax is normalised at parse
/// time: the joined tables land in [`SelectStatement::from`] in text order
/// and the `ON` conditions are conjoined in front of the `WHERE` expression,
/// so the bound form is identical to the equivalent comma-separated
/// `FROM` list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// The `SELECT` list.
    pub items: Vec<SelectItem>,
    /// The `FROM` clause range variables, in order.
    pub from: Vec<TableRef>,
    /// The `WHERE` expression, if present.
    pub selection: Option<Expr>,
}

/// One statement of a script: a query, or one of the prepared-statement
/// commands layered on top of the query dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptStatement {
    /// A plain `SELECT` statement.
    Select(SelectStatement),
    /// `PREPARE name AS SELECT ...` — register a (possibly parameterized)
    /// statement under a name.
    Prepare {
        /// The statement name.
        name: String,
        /// The parameterized statement body.
        statement: SelectStatement,
        /// Number of parameter slots the body uses.
        params: usize,
    },
    /// `EXECUTE name(arg, ...)` — run a prepared statement with concrete
    /// argument literals (parentheses optional when there are none).
    Execute {
        /// The prepared statement's name.
        name: String,
        /// Argument literals, in slot order.
        args: Vec<Literal>,
    },
    /// `DEALLOCATE name` — drop a prepared statement.
    Deallocate {
        /// The prepared statement's name.
        name: String,
    },
    /// `EXPLAIN [ANALYZE] SELECT ...` — plan a statement without running it
    /// (`EXPLAIN`), or run it and annotate every operator with its estimated
    /// vs true cardinality and wall time (`EXPLAIN ANALYZE`).
    Explain {
        /// True for `EXPLAIN ANALYZE`.
        analyze: bool,
        /// The statement being explained.
        statement: SelectStatement,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_ref_display() {
        let qualified =
            ColumnRef { qualifier: Some("t".into()), column: "id".into(), span: Span::default() };
        assert_eq!(qualified.display_name(), "t.id");
        let bare = ColumnRef { qualifier: None, column: "id".into(), span: Span::default() };
        assert_eq!(bare.display_name(), "id");
    }

    #[test]
    fn literal_type_names() {
        assert_eq!(LiteralValue::Int(1).type_name(), "integer");
        assert_eq!(LiteralValue::Str("x".into()).type_name(), "string");
        assert_eq!(LiteralValue::Null.type_name(), "NULL");
    }
}
