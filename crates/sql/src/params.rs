//! Parameter placeholders: counting and substitution.
//!
//! A parsed statement may carry [`LiteralValue::Param`] placeholders (`?` /
//! `$n`).  Placeholders are resolved *before binding*: the host substitutes
//! concrete literal values into a clone of the AST and binds the result, so
//! the binder (and everything downstream) only ever sees complete
//! statements.  This is the parse-once half of prepared statements; the
//! optimize-once half is the plan cache in `qob-cache`.

use crate::ast::{Expr, Literal, LiteralValue, Operand, SelectStatement};
use crate::error::{ErrorKind, Span, SqlError};

/// A concrete value bound to a parameter slot — the subset of literals a
/// client can send (`EXECUTE` arguments, wire-protocol `params`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamValue {
    /// An integer.
    Int(i64),
    /// A string.
    Str(String),
    /// SQL `NULL`.
    Null,
}

impl ParamValue {
    /// The literal this value substitutes as.
    pub fn to_literal_value(&self) -> LiteralValue {
        match self {
            ParamValue::Int(v) => LiteralValue::Int(*v),
            ParamValue::Str(s) => LiteralValue::Str(s.clone()),
            ParamValue::Null => LiteralValue::Null,
        }
    }

    /// Converts a parsed literal (an `EXECUTE` argument) to a value.
    /// Parameter placeholders are rejected — arguments must be concrete.
    pub fn from_literal(literal: &Literal) -> Result<ParamValue, SqlError> {
        match &literal.value {
            LiteralValue::Int(v) => Ok(ParamValue::Int(*v)),
            LiteralValue::Str(s) => Ok(ParamValue::Str(s.clone())),
            LiteralValue::Null => Ok(ParamValue::Null),
            LiteralValue::Param(_) => Err(SqlError::new(
                ErrorKind::Unsupported,
                "EXECUTE arguments must be concrete literals",
                literal.span,
            )),
        }
    }

    /// Renders the value as SQL text (used by diagnostics and the CLI).
    pub fn render(&self) -> String {
        match self {
            ParamValue::Int(v) => v.to_string(),
            ParamValue::Str(s) => format!("'{}'", s.replace('\'', "''")),
            ParamValue::Null => "NULL".to_owned(),
        }
    }
}

impl std::fmt::Display for ParamValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Number of parameter slots a statement uses (`max slot index + 1`).
pub fn param_count(stmt: &SelectStatement) -> usize {
    let mut max: Option<u32> = None;
    visit_literals(stmt, &mut |literal| {
        if let LiteralValue::Param(i) = literal.value {
            max = Some(max.map_or(i, |m: u32| m.max(i)));
        }
    });
    max.map_or(0, |m| m as usize + 1)
}

/// Substitutes concrete `values` for the parameter placeholders of `stmt`,
/// returning a complete statement ready for binding.
///
/// The value count must match the statement's slot count exactly; a
/// mismatch is reported with the span of an affected placeholder (or a
/// spanless error for surplus values).
pub fn substitute_params(
    stmt: &SelectStatement,
    values: &[ParamValue],
) -> Result<SelectStatement, SqlError> {
    let needed = param_count(stmt);
    if values.len() != needed {
        let span = first_param_span(stmt);
        let message = format!(
            "statement uses {needed} parameter{} but {} value{} were supplied",
            if needed == 1 { "" } else { "s" },
            values.len(),
            if values.len() == 1 { " was" } else { "s" },
        );
        return Err(match span {
            Some(span) => SqlError::new(ErrorKind::Parameter, message, span),
            None => SqlError::spanless(ErrorKind::Parameter, message),
        });
    }
    let mut out = stmt.clone();
    if let Some(selection) = &mut out.selection {
        substitute_expr(selection, values);
    }
    Ok(out)
}

pub(crate) fn first_param_span(stmt: &SelectStatement) -> Option<Span> {
    let mut span = None;
    visit_literals(stmt, &mut |literal| {
        if span.is_none() && matches!(literal.value, LiteralValue::Param(_)) {
            span = Some(literal.span);
        }
    });
    span
}

/// Visits every literal of the statement (literals only occur in the
/// selection — the SELECT list and FROM clause carry none).
fn visit_literals(stmt: &SelectStatement, f: &mut impl FnMut(&Literal)) {
    fn walk(expr: &Expr, f: &mut impl FnMut(&Literal)) {
        match expr {
            Expr::Or(l, r) | Expr::And(l, r) => {
                walk(l, f);
                walk(r, f);
            }
            Expr::Not(inner) | Expr::Paren(inner) => walk(inner, f),
            Expr::Cmp { left, right, .. } => {
                for operand in [left, right] {
                    if let Operand::Literal(literal) = operand {
                        f(literal);
                    }
                }
            }
            Expr::Between { low, high, .. } => {
                f(low);
                f(high);
            }
            Expr::InList { items, .. } => items.iter().for_each(&mut *f),
            Expr::Like { pattern, .. } => f(pattern),
            Expr::IsNull { .. } => {}
        }
    }
    if let Some(selection) = &stmt.selection {
        walk(selection, f);
    }
}

fn substitute_expr(expr: &mut Expr, values: &[ParamValue]) {
    let fill = |literal: &mut Literal| {
        if let LiteralValue::Param(i) = literal.value {
            // In range by the count check in `substitute_params`.
            literal.value = values[i as usize].to_literal_value();
        }
    };
    match expr {
        Expr::Or(l, r) | Expr::And(l, r) => {
            substitute_expr(l, values);
            substitute_expr(r, values);
        }
        Expr::Not(inner) | Expr::Paren(inner) => substitute_expr(inner, values),
        Expr::Cmp { left, right, .. } => {
            for operand in [left, right] {
                if let Operand::Literal(literal) = operand {
                    fill(literal);
                }
            }
        }
        Expr::Between { low, high, .. } => {
            fill(low);
            fill(high);
        }
        Expr::InList { items, .. } => items.iter_mut().for_each(fill),
        Expr::Like { pattern, .. } => fill(pattern),
        Expr::IsNull { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    #[test]
    fn counts_and_substitutes_positional_params() {
        let stmt = parse_statement(
            "SELECT COUNT(*) FROM t x WHERE x.a > ? AND x.b LIKE ? AND x.c IS NULL",
        )
        .unwrap();
        assert_eq!(param_count(&stmt), 2);
        let filled =
            substitute_params(&stmt, &[ParamValue::Int(2000), ParamValue::Str("The %".into())])
                .unwrap();
        assert_eq!(param_count(&filled), 0);
        let expected = parse_statement(
            "SELECT COUNT(*) FROM t x WHERE x.a > 2000 AND x.b LIKE 'The %' AND x.c IS NULL",
        )
        .unwrap();
        // Spans differ (placeholders keep their own spans), so compare the
        // value structure by re-substituting the expected literals.
        let mut values = Vec::new();
        super::visit_literals(&filled, &mut |l| values.push(l.value.clone()));
        let mut expected_values = Vec::new();
        super::visit_literals(&expected, &mut |l| expected_values.push(l.value.clone()));
        assert_eq!(values, expected_values);
    }

    #[test]
    fn numbered_params_substitute_by_slot_and_repeat() {
        let stmt = parse_statement(
            "SELECT * FROM t x WHERE x.a = $2 AND x.b BETWEEN $1 AND $2 AND x.c IN ($1, $3)",
        )
        .unwrap();
        assert_eq!(param_count(&stmt), 3);
        let filled =
            substitute_params(&stmt, &[ParamValue::Int(1), ParamValue::Int(2), ParamValue::Int(3)])
                .unwrap();
        let mut values = Vec::new();
        super::visit_literals(&filled, &mut |l| values.push(l.value.clone()));
        assert_eq!(
            values,
            vec![
                LiteralValue::Int(2),
                LiteralValue::Int(1),
                LiteralValue::Int(2),
                LiteralValue::Int(1),
                LiteralValue::Int(3),
            ]
        );
    }

    #[test]
    fn arity_mismatches_are_rejected_with_spans() {
        let stmt = parse_statement("SELECT * FROM t x WHERE x.a = ? AND x.b = ?").unwrap();
        let err = substitute_params(&stmt, &[ParamValue::Int(1)]).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parameter);
        assert!(err.message.contains("2 parameters"), "{}", err.message);
        assert!(err.span.is_some());

        let stmt = parse_statement("SELECT * FROM t x WHERE x.a = 1").unwrap();
        let err = substitute_params(&stmt, &[ParamValue::Int(1)]).unwrap_err();
        assert!(err.message.contains("0 parameters"), "{}", err.message);
        assert!(err.span.is_none(), "no placeholder to point at");
        assert!(substitute_params(&stmt, &[]).is_ok());
    }

    #[test]
    fn param_values_render_and_convert() {
        assert_eq!(ParamValue::Int(-3).render(), "-3");
        assert_eq!(ParamValue::Str("it's".into()).render(), "'it''s'");
        assert_eq!(ParamValue::Null.to_string(), "NULL");
        assert_eq!(ParamValue::Null.to_literal_value(), LiteralValue::Null);

        let lit = |value| Literal { value, span: Span::default() };
        assert_eq!(
            ParamValue::from_literal(&lit(LiteralValue::Int(7))).unwrap(),
            ParamValue::Int(7)
        );
        assert_eq!(
            ParamValue::from_literal(&lit(LiteralValue::Str("x".into()))).unwrap(),
            ParamValue::Str("x".into())
        );
        assert_eq!(ParamValue::from_literal(&lit(LiteralValue::Null)).unwrap(), ParamValue::Null);
        assert!(ParamValue::from_literal(&lit(LiteralValue::Param(0))).is_err());
    }
}
