//! SQL emission: the inverse of the frontend.
//!
//! [`emit_query`] renders a bound [`QuerySpec`] back to text in the JOB
//! dialect such that `parse → bind` of the output reproduces a structurally
//! identical spec (same relations in the same order, same join edges, same
//! predicates).  This inverse is what pins the whole frontend against the
//! built-in 113-query workload as an oracle.

use qob_plan::{BaseRelation, QuerySpec};
use qob_storage::{sql_string_literal, Database, Predicate, Table};

/// Renders `query` as SQL text (multi-line, `;`-terminated).
pub fn emit_query(db: &Database, query: &QuerySpec) -> String {
    let mut out = String::from("SELECT COUNT(*)\nFROM ");
    for (i, rel) in query.relations.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n     ");
        }
        out.push_str(db.table(rel.table).name());
        out.push_str(" AS ");
        out.push_str(&rel.alias);
    }
    let mut clauses: Vec<String> = Vec::new();
    for edge in &query.joins {
        let left = &query.relations[edge.left];
        let right = &query.relations[edge.right];
        clauses.push(format!(
            "{}.{} = {}.{}",
            left.alias,
            db.table(left.table).column_meta(edge.left_column).name,
            right.alias,
            db.table(right.table).column_meta(edge.right_column).name,
        ));
    }
    for rel in &query.relations {
        let table = db.table(rel.table);
        for predicate in &rel.predicates {
            clauses.push(emit_predicate(table, rel, predicate));
        }
    }
    if !clauses.is_empty() {
        out.push_str("\nWHERE ");
        out.push_str(&clauses.join("\n  AND "));
    }
    out.push(';');
    out
}

/// Renders `query` using explicit-join syntax: `FROM a INNER JOIN b ON ...
/// [CROSS JOIN c ...]` with only base predicates in `WHERE`.
///
/// Relations keep their spec order.  Each join edge is attached to the
/// later of its two endpoints (the first point at which both sides are in
/// scope); a relation with no edge to an earlier relation enters via
/// `CROSS JOIN` (a later `ON` connects it — the bound join graph is still
/// connected).  Re-binding the output therefore yields the original spec
/// with its join edges stably re-ordered by their later endpoint — the
/// normalisation the dialect round-trip tests pin.
pub fn emit_query_join_syntax(db: &Database, query: &QuerySpec) -> String {
    let mut out = String::from("SELECT COUNT(*)\nFROM ");
    for (i, rel) in query.relations.iter().enumerate() {
        let table = db.table(rel.table).name();
        if i == 0 {
            out.push_str(&format!("{table} AS {}", rel.alias));
            continue;
        }
        let edges: Vec<_> = query.joins.iter().filter(|e| e.left.max(e.right) == i).collect();
        if edges.is_empty() {
            out.push_str(&format!("\n  CROSS JOIN {table} AS {}", rel.alias));
            continue;
        }
        let conditions: Vec<String> = edges
            .iter()
            .map(|edge| {
                let left = &query.relations[edge.left];
                let right = &query.relations[edge.right];
                format!(
                    "{}.{} = {}.{}",
                    left.alias,
                    db.table(left.table).column_meta(edge.left_column).name,
                    right.alias,
                    db.table(right.table).column_meta(edge.right_column).name,
                )
            })
            .collect();
        out.push_str(&format!(
            "\n  INNER JOIN {table} AS {} ON {}",
            rel.alias,
            conditions.join(" AND ")
        ));
    }
    let mut clauses: Vec<String> = Vec::new();
    for rel in &query.relations {
        let table = db.table(rel.table);
        for predicate in &rel.predicates {
            clauses.push(emit_predicate(table, rel, predicate));
        }
    }
    if !clauses.is_empty() {
        out.push_str("\nWHERE ");
        out.push_str(&clauses.join("\n  AND "));
    }
    out.push(';');
    out
}

/// Renders one base-table predicate of `rel` as a SQL boolean expression.
pub fn emit_predicate(table: &Table, rel: &BaseRelation, predicate: &Predicate) -> String {
    let col = |id: &qob_storage::ColumnId| format!("{}.{}", rel.alias, table.column_meta(*id).name);
    match predicate {
        Predicate::IntCmp { column, op, value } => {
            format!("{} {} {}", col(column), op.sql(), value)
        }
        Predicate::IntBetween { column, low, high } => {
            format!("{} BETWEEN {low} AND {high}", col(column))
        }
        Predicate::StrEq { column, value } => {
            format!("{} = {}", col(column), sql_string_literal(value))
        }
        Predicate::StrIn { column, values } => {
            let list: Vec<String> = values.iter().map(|v| sql_string_literal(v)).collect();
            format!("{} IN ({})", col(column), list.join(", "))
        }
        Predicate::Like { column, pattern } => {
            format!("{} LIKE {}", col(column), sql_string_literal(pattern))
        }
        Predicate::IsNull { column } => format!("{} IS NULL", col(column)),
        Predicate::IsNotNull { column } => format!("{} IS NOT NULL", col(column)),
        // Singleton groups emit as their only member: the binder never
        // produces them, and a parenthesised single predicate re-binds to
        // the bare predicate, so emitting the parens would break the
        // round-trip for programmatically built specs.
        Predicate::And(parts) | Predicate::Or(parts) if parts.len() == 1 => {
            emit_predicate(table, rel, &parts[0])
        }
        Predicate::And(parts) => {
            let rendered: Vec<String> =
                parts.iter().map(|p| emit_predicate(table, rel, p)).collect();
            format!("({})", rendered.join(" AND "))
        }
        Predicate::Or(parts) => {
            let rendered: Vec<String> =
                parts.iter().map(|p| emit_predicate(table, rel, p)).collect();
            format!("({})", rendered.join(" OR "))
        }
        // Always the explicit `NOT (...)` form: emitting `col <> 'v'` for
        // NOT(StrEq) would re-bind to the null-guarded form and diverge.
        Predicate::Not(inner) => format!("NOT ({})", emit_predicate(table, rel, inner)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qob_storage::{CmpOp, ColumnId, ColumnMeta, DataType, TableBuilder, Value};

    fn table() -> Table {
        let mut b = TableBuilder::new(
            "movies",
            vec![
                ColumnMeta::new("id", DataType::Int),
                ColumnMeta::new("year", DataType::Int),
                ColumnMeta::new("kind", DataType::Str),
            ],
        );
        b.push_row(vec![Value::Int(1), Value::Int(1999), Value::Str("movie".into())]).unwrap();
        b.finish()
    }

    fn rel(table: &Table) -> BaseRelation {
        // The table id is irrelevant for predicate emission.
        let _ = table;
        BaseRelation::unfiltered(qob_storage::TableId(0), "m")
    }

    #[test]
    fn emits_each_predicate_form() {
        let t = table();
        let r = rel(&t);
        let year = ColumnId(1);
        let kind = ColumnId(2);
        let cases: Vec<(Predicate, &str)> = vec![
            (Predicate::IntCmp { column: year, op: CmpOp::Gt, value: 2000 }, "m.year > 2000"),
            (
                Predicate::IntBetween { column: year, low: 1990, high: 2005 },
                "m.year BETWEEN 1990 AND 2005",
            ),
            (Predicate::StrEq { column: kind, value: "movie".into() }, "m.kind = 'movie'"),
            (
                Predicate::StrIn { column: kind, values: vec!["a".into(), "o'b".into()] },
                "m.kind IN ('a', 'o''b')",
            ),
            (Predicate::Like { column: kind, pattern: "%seq%".into() }, "m.kind LIKE '%seq%'"),
            (Predicate::IsNull { column: year }, "m.year IS NULL"),
            (Predicate::IsNotNull { column: year }, "m.year IS NOT NULL"),
            (
                Predicate::Or(vec![
                    Predicate::Like { column: kind, pattern: "a%".into() },
                    Predicate::Like { column: kind, pattern: "b%".into() },
                ]),
                "(m.kind LIKE 'a%' OR m.kind LIKE 'b%')",
            ),
            (
                Predicate::And(vec![
                    Predicate::IntCmp { column: year, op: CmpOp::Ge, value: 1990 },
                    Predicate::IsNotNull { column: year },
                ]),
                "(m.year >= 1990 AND m.year IS NOT NULL)",
            ),
            (
                Predicate::Not(Box::new(Predicate::StrEq { column: kind, value: "x".into() })),
                "NOT (m.kind = 'x')",
            ),
            (Predicate::Not(Box::new(Predicate::IsNull { column: year })), "NOT (m.year IS NULL)"),
            (
                Predicate::Or(vec![Predicate::Like { column: kind, pattern: "a%".into() }]),
                "m.kind LIKE 'a%'",
            ),
            (Predicate::And(vec![Predicate::IsNull { column: year }]), "m.year IS NULL"),
        ];
        for (predicate, expected) in cases {
            assert_eq!(emit_predicate(&t, &r, &predicate), expected);
        }
    }
}
