//! Tokens of the JOB SQL dialect.

use std::fmt;

use crate::error::Span;

/// A lexical token.
///
/// Keywords are recognised case-insensitively.  Aggregate function names
/// (`MIN`, `MAX`, `COUNT`) deliberately stay plain identifiers so columns may
/// use those names; the parser recognises them by the following `(`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier (table, alias, column or function name).
    Ident(String),
    /// Integer literal (always non-negative; the parser applies unary minus).
    Int(i64),
    /// String literal with quotes removed and `''` unescaped.
    Str(String),
    /// Parameter placeholder: `?` is positional (`None`), `$n` is numbered
    /// (`Some(n)`, 1-based as written).
    Param(Option<u32>),

    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,

    /// `SELECT`
    Select,
    /// `AS`
    As,
    /// `FROM`
    From,
    /// `WHERE`
    Where,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `NOT`
    Not,
    /// `IN`
    In,
    /// `LIKE`
    Like,
    /// `BETWEEN`
    Between,
    /// `IS`
    Is,
    /// `NULL`
    Null,
    /// `JOIN`
    Join,
    /// `ON`
    On,
    /// `INNER`
    Inner,
    /// `CROSS`
    Cross,
    /// `PREPARE`
    Prepare,
    /// `EXECUTE`
    Execute,
    /// `DEALLOCATE`
    Deallocate,
    /// `EXPLAIN`
    Explain,
    /// `ANALYZE`
    Analyze,

    /// End of input.
    Eof,
}

impl Tok {
    /// The keyword for an identifier-shaped word, if it is one.
    pub fn keyword(word: &str) -> Option<Tok> {
        Some(match word.to_ascii_uppercase().as_str() {
            "SELECT" => Tok::Select,
            "AS" => Tok::As,
            "FROM" => Tok::From,
            "WHERE" => Tok::Where,
            "AND" => Tok::And,
            "OR" => Tok::Or,
            "NOT" => Tok::Not,
            "IN" => Tok::In,
            "LIKE" => Tok::Like,
            "BETWEEN" => Tok::Between,
            "IS" => Tok::Is,
            "NULL" => Tok::Null,
            "JOIN" => Tok::Join,
            "ON" => Tok::On,
            "INNER" => Tok::Inner,
            "CROSS" => Tok::Cross,
            "PREPARE" => Tok::Prepare,
            "EXECUTE" => Tok::Execute,
            "DEALLOCATE" => Tok::Deallocate,
            "EXPLAIN" => Tok::Explain,
            "ANALYZE" => Tok::Analyze,
            _ => return None,
        })
    }

    /// Short description used in parse-error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(name) => format!("identifier `{name}`"),
            Tok::Int(v) => format!("integer `{v}`"),
            Tok::Str(s) => format!("string '{s}'"),
            Tok::Param(None) => "parameter `?`".to_owned(),
            Tok::Param(Some(n)) => format!("parameter `${n}`"),
            Tok::Eof => "end of input".to_owned(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            Tok::Comma => ",",
            Tok::Dot => ".",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::Semi => ";",
            Tok::Star => "*",
            Tok::Minus => "-",
            Tok::Eq => "=",
            Tok::Ne => "<>",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::Select => "SELECT",
            Tok::As => "AS",
            Tok::From => "FROM",
            Tok::Where => "WHERE",
            Tok::And => "AND",
            Tok::Or => "OR",
            Tok::Not => "NOT",
            Tok::In => "IN",
            Tok::Like => "LIKE",
            Tok::Between => "BETWEEN",
            Tok::Is => "IS",
            Tok::Null => "NULL",
            Tok::Join => "JOIN",
            Tok::On => "ON",
            Tok::Inner => "INNER",
            Tok::Cross => "CROSS",
            Tok::Prepare => "PREPARE",
            Tok::Execute => "EXECUTE",
            Tok::Deallocate => "DEALLOCATE",
            Tok::Explain => "EXPLAIN",
            Tok::Analyze => "ANALYZE",
            Tok::Ident(_) | Tok::Int(_) | Tok::Str(_) | Tok::Param(_) | Tok::Eof => "",
        }
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind/payload.
    pub tok: Tok,
    /// Byte range in the source text.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(Tok::keyword("select"), Some(Tok::Select));
        assert_eq!(Tok::keyword("Between"), Some(Tok::Between));
        assert_eq!(Tok::keyword("NULL"), Some(Tok::Null));
        assert_eq!(Tok::keyword("join"), Some(Tok::Join));
        assert_eq!(Tok::keyword("Cross"), Some(Tok::Cross));
        assert_eq!(Tok::keyword("PREPARE"), Some(Tok::Prepare));
        assert_eq!(Tok::keyword("deallocate"), Some(Tok::Deallocate));
        assert_eq!(Tok::keyword("explain"), Some(Tok::Explain));
        assert_eq!(Tok::keyword("Analyze"), Some(Tok::Analyze));
        assert_eq!(Tok::keyword("min"), None, "function names are identifiers");
        assert_eq!(Tok::keyword("title"), None);
    }

    #[test]
    fn descriptions_are_informative() {
        assert_eq!(Tok::Ident("t".into()).describe(), "identifier `t`");
        assert_eq!(Tok::Int(7).describe(), "integer `7`");
        assert_eq!(Tok::Str("x".into()).describe(), "string 'x'");
        assert_eq!(Tok::Le.describe(), "`<=`");
        assert_eq!(Tok::Param(None).describe(), "parameter `?`");
        assert_eq!(Tok::Param(Some(2)).describe(), "parameter `$2`");
        assert_eq!(Tok::Eof.describe(), "end of input");
    }
}
