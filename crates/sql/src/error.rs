//! SQL diagnostics: spanned errors for every stage of the frontend.

use std::fmt;

/// A byte range within the SQL source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

/// What stage of the frontend rejected the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Lexing failed (bad character, unterminated string, overflowing number).
    Lex,
    /// Parsing failed (unexpected token).
    Parse,
    /// A `FROM` table does not exist in the catalog.
    UnknownTable,
    /// A column qualifier does not match any range variable.
    UnknownAlias,
    /// A column does not exist in its table (or in any `FROM` table).
    UnknownColumn,
    /// An unqualified column name matches more than one `FROM` table.
    AmbiguousColumn,
    /// Two range variables share one alias.
    DuplicateAlias,
    /// A literal's type does not match its column's type.
    TypeMismatch,
    /// The construct parses but has no representation in the query model
    /// (e.g. non-equality joins, string `<`).
    Unsupported,
    /// The bound query failed whole-query validation (e.g. the join graph is
    /// disconnected and would need a cross product).
    Validation,
    /// Parameter placeholders were misused: a statement executed with the
    /// wrong number of values, or bound without substituting its
    /// placeholders first.
    Parameter,
}

impl ErrorKind {
    /// Short label used as the diagnostic prefix.
    pub fn label(&self) -> &'static str {
        match self {
            ErrorKind::Lex => "lex error",
            ErrorKind::Parse => "parse error",
            ErrorKind::UnknownTable => "unknown table",
            ErrorKind::UnknownAlias => "unknown alias",
            ErrorKind::UnknownColumn => "unknown column",
            ErrorKind::AmbiguousColumn => "ambiguous column",
            ErrorKind::DuplicateAlias => "duplicate alias",
            ErrorKind::TypeMismatch => "type mismatch",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::Validation => "invalid query",
            ErrorKind::Parameter => "parameter error",
        }
    }
}

/// A frontend diagnostic: kind, human-readable message and (when known) the
/// source span it points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// The failing stage / category.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Where in the source text, if known.
    pub span: Option<Span>,
}

impl SqlError {
    /// Creates a spanned diagnostic.
    pub fn new(kind: ErrorKind, message: impl Into<String>, span: Span) -> Self {
        SqlError { kind, message: message.into(), span: Some(span) }
    }

    /// Creates a diagnostic with no source location.
    pub fn spanless(kind: ErrorKind, message: impl Into<String>) -> Self {
        SqlError { kind, message: message.into(), span: None }
    }

    /// Renders the diagnostic against the source text with a caret line, e.g.
    ///
    /// ```text
    /// unknown column: table `title` has no column `yr`
    ///   |  WHERE t.yr > 2000
    ///   |        ^^^^
    /// ```
    pub fn render(&self, sql: &str) -> String {
        let mut out = self.to_string();
        let Some(span) = self.span else { return out };
        // Find the line containing the span start.
        let start = span.start.min(sql.len());
        let line_start = sql[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = sql[start..].find('\n').map(|i| start + i).unwrap_or(sql.len());
        let line = &sql[line_start..line_end];
        let col = sql[line_start..start].chars().count();
        let width = sql[start..span.end.clamp(start, line_end)].chars().count().max(1);
        out.push_str(&format!("\n  |  {line}\n  |  {}{}", " ".repeat(col), "^".repeat(width)));
        out
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.message)
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn display_has_kind_prefix() {
        let e = SqlError::spanless(ErrorKind::UnknownTable, "no table `foo`");
        assert_eq!(e.to_string(), "unknown table: no table `foo`");
    }

    #[test]
    fn render_points_at_the_span() {
        let sql = "SELECT *\nFROM title t\nWHERE t.yr > 2000";
        let start = sql.find("t.yr").unwrap();
        let e = SqlError::new(
            ErrorKind::UnknownColumn,
            "table `title` has no column `yr`",
            Span::new(start, start + 4),
        );
        let rendered = e.render(sql);
        assert!(rendered.contains("WHERE t.yr > 2000"));
        assert!(rendered.contains("^^^^"));
        // The caret is under the span, not at column zero.
        let caret_line = rendered.lines().last().unwrap();
        assert!(caret_line.contains("      ^^^^"));
    }

    #[test]
    fn render_with_out_of_range_span_does_not_panic() {
        let e = SqlError::new(ErrorKind::Parse, "eof", Span::new(500, 505));
        let rendered = e.render("short");
        assert!(rendered.contains("parse error"));
    }
}
