//! # qob-sql
//!
//! The SQL frontend of the reproduction: the text path that turns a query in
//! the JOB dialect into a validated [`qob_plan::QuerySpec`] over a
//! [`qob_storage::Database`] catalog, plus the inverse (SQL emission), so
//! specs and text convert both ways.
//!
//! The pipeline is the classical three stages:
//!
//! 1. [`lexer`] — a hand-written lexer (keywords, identifiers, integer and
//!    `''`-escaped string literals, `--` comments); never panics, every
//!    malformed input becomes a spanned [`SqlError`],
//! 2. [`parser`] — recursive descent for single-block select-project-join
//!    queries: `SELECT MIN(...)/COUNT(*) FROM t1 a1, t2 a2 WHERE ...` with
//!    conjunctions of comparisons, `BETWEEN`, `IN`, `LIKE`, `IS [NOT] NULL`,
//!    parenthesised `OR`/`AND` groups and equality join edges,
//! 3. [`binder`] — name resolution against the catalog (unknown table /
//!    alias / column, ambiguous column), literal-vs-column type checking,
//!    join-edge extraction and whole-query validation (connected join
//!    graph) — producing the same [`QuerySpec`] the programmatic
//!    `QueryBuilder` of `qob-workload` builds.
//!
//! [`emit::emit_query`] renders any bound spec back to SQL such that
//! `emit → parse → bind` is the identity on specs — the property the
//! repository-level round-trip suite checks over all 113 JOB queries.
//!
//! ```text
//!    SQL text ──lex──▶ tokens ──parse──▶ AST ──bind──▶ QuerySpec
//!       ▲                                                  │
//!       └───────────────────── emit ◀──────────────────────┘
//! ```

pub mod ast;
pub mod binder;
pub mod emit;
pub mod error;
pub mod lexer;
pub mod params;
pub mod parser;
pub mod token;

pub use ast::{Expr, ScriptStatement, SelectExpr, SelectItem, SelectStatement, TableRef};
pub use binder::bind;
pub use emit::{emit_predicate, emit_query, emit_query_join_syntax};
pub use error::{ErrorKind, Span, SqlError};
pub use lexer::tokenize;
pub use params::{param_count, substitute_params, ParamValue};
pub use parser::{parse_script_statement, parse_statement, parse_statements};

use qob_plan::QuerySpec;
use qob_storage::Database;

/// Parses and binds one statement: the full text → [`QuerySpec`] path.
pub fn compile(db: &Database, sql: &str, name: impl Into<String>) -> Result<QuerySpec, SqlError> {
    let stmt = parse_statement(sql)?;
    bind(db, &stmt, name)
}

/// Parses and binds a `;`-separated script, naming the queries `q1`, `q2`, …
/// (`qob_workload` layers a `-- name: <x>` comment convention on top).
pub fn compile_script(db: &Database, sql: &str) -> Result<Vec<QuerySpec>, SqlError> {
    let statements = parse_statements(sql)?;
    statements.iter().enumerate().map(|(i, stmt)| bind(db, stmt, format!("q{}", i + 1))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qob_datagen::{generate_imdb, Scale};

    #[test]
    fn compile_builds_a_spec_against_the_imdb_catalog() {
        let db = generate_imdb(&Scale::tiny()).unwrap();
        let q = compile(
            &db,
            "SELECT MIN(t.title) FROM title t, movie_companies mc, company_name cn \
             WHERE mc.movie_id = t.id AND mc.company_id = cn.id \
               AND cn.country_code = '[us]' AND t.production_year > 2000",
            "demo",
        )
        .unwrap();
        assert_eq!(q.name, "demo");
        assert_eq!(q.rel_count(), 3);
        assert_eq!(q.join_predicate_count(), 2);
        assert_eq!(q.base_predicate_count(), 2);
        assert!(q.validate(&db).is_ok());
    }

    #[test]
    fn compile_script_names_queries_in_order() {
        let db = generate_imdb(&Scale::tiny()).unwrap();
        let specs = compile_script(
            &db,
            "SELECT COUNT(*) FROM title t, movie_keyword mk WHERE mk.movie_id = t.id;\n\
             SELECT COUNT(*) FROM keyword k, movie_keyword mk WHERE mk.keyword_id = k.id;",
        )
        .unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "q1");
        assert_eq!(specs[1].name, "q2");
    }

    #[test]
    fn join_syntax_binds_identically_to_the_comma_form() {
        let db = generate_imdb(&Scale::tiny()).unwrap();
        let comma = compile(
            &db,
            "SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn \
             WHERE mc.movie_id = t.id AND mc.company_id = cn.id \
               AND cn.country_code = '[us]' AND t.production_year > 2000",
            "q",
        )
        .unwrap();
        let joined = compile(
            &db,
            "SELECT COUNT(*) FROM title t \
             INNER JOIN movie_companies mc ON mc.movie_id = t.id \
             INNER JOIN company_name cn ON mc.company_id = cn.id \
             WHERE cn.country_code = '[us]' AND t.production_year > 2000",
            "q",
        )
        .unwrap();
        assert_eq!(comma, joined, "explicit joins bind to the comma-separated form");

        // CROSS JOIN enters a relation whose edges all point forward: mc
        // joins both t and cn only after cn is in scope.
        let crossed = compile(
            &db,
            "SELECT COUNT(*) FROM title t CROSS JOIN company_name cn \
             INNER JOIN movie_companies mc \
               ON mc.movie_id = t.id AND mc.company_id = cn.id \
             WHERE cn.country_code = '[us]' AND t.production_year > 2000",
            "q",
        )
        .unwrap();
        let crossed_comma = compile(
            &db,
            "SELECT COUNT(*) FROM title t, company_name cn, movie_companies mc \
             WHERE mc.movie_id = t.id AND mc.company_id = cn.id \
               AND cn.country_code = '[us]' AND t.production_year > 2000",
            "q",
        )
        .unwrap();
        assert_eq!(crossed, crossed_comma);
    }

    #[test]
    fn join_syntax_emission_rebinds_to_the_normalised_spec() {
        let db = generate_imdb(&Scale::tiny()).unwrap();
        let q = compile(
            &db,
            "SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn \
             WHERE mc.company_id = cn.id AND mc.movie_id = t.id \
               AND cn.country_code = '[us]'",
            "q",
        )
        .unwrap();
        let sql = emit_query_join_syntax(&db, &q);
        assert!(sql.contains("INNER JOIN"), "emitted:\n{sql}");
        let rebound = compile(&db, &sql, "q").unwrap();
        // Join edges re-order stably by their later endpoint; everything
        // else survives exactly.
        let mut expected = q.clone();
        expected.joins.sort_by_key(|e| e.left.max(e.right));
        assert_eq!(rebound, expected, "emitted:\n{sql}");
    }

    #[test]
    fn unbound_parameters_are_rejected_at_bind() {
        let db = generate_imdb(&Scale::tiny()).unwrap();
        let err = compile(&db, "SELECT COUNT(*) FROM title t WHERE t.production_year > ?", "q")
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parameter);
        assert!(err.message.contains("PREPARE"), "{}", err.message);
        assert!(err.span.is_some());

        // Substituting first makes the same statement bindable.
        let stmt =
            parse_statement("SELECT COUNT(*) FROM title t WHERE t.production_year > $1").unwrap();
        let filled = substitute_params(&stmt, &[ParamValue::Int(2000)]).unwrap();
        let q = bind(&db, &filled, "q").unwrap();
        assert_eq!(q.base_predicate_count(), 1);
    }

    #[test]
    fn emitted_sql_recompiles_to_an_identical_spec() {
        let db = generate_imdb(&Scale::tiny()).unwrap();
        let q = compile(
            &db,
            "SELECT COUNT(*) FROM title t, movie_info mi, info_type it \
             WHERE mi.movie_id = t.id AND mi.info_type_id = it.id \
               AND mi.info IN ('Drama', 'Horror') \
               AND (t.title LIKE 'The %' OR t.title LIKE '%Shadow%') \
               AND t.production_year BETWEEN 1990 AND 2005 \
               AND mi.note IS NULL",
            "roundtrip",
        )
        .unwrap();
        let sql = emit_query(&db, &q);
        let q2 = compile(&db, &sql, "roundtrip").unwrap();
        assert_eq!(q, q2, "emit → parse → bind must be the identity\nemitted:\n{sql}");
    }

    #[test]
    fn negated_and_singleton_forms_roundtrip() {
        // The tricky normalisations: singleton integer IN, null-guarded
        // negations, string `<>` — each must survive emit → parse → bind.
        let db = generate_imdb(&Scale::tiny()).unwrap();
        let q = compile(
            &db,
            "SELECT COUNT(*) FROM title t, movie_info mi, info_type it \
             WHERE mi.movie_id = t.id AND mi.info_type_id = it.id \
               AND t.production_year IN (1999) \
               AND t.title NOT LIKE 'The %' \
               AND it.info <> 'rating' \
               AND mi.info NOT IN ('Drama') \
               AND t.production_year NOT BETWEEN 1900 AND 1950",
            "negations",
        )
        .unwrap();
        let sql = emit_query(&db, &q);
        let q2 = compile(&db, &sql, "negations").unwrap();
        assert_eq!(q, q2, "emitted:\n{sql}");
    }
}
