//! Property tests: the frontend never panics.
//!
//! Whatever bytes arrive — arbitrary Unicode, truncated SQL, keyword soup —
//! the lexer and parser must either succeed or return a spanned diagnostic,
//! never panic.  (The `qob` CLI feeds it raw stdin, so this is a real
//! robustness boundary, not just hygiene.)

use proptest::prelude::*;
use qob_datagen::{generate_imdb, Scale};
use qob_sql::{compile, parse_statement, parse_statements, tokenize};

/// Fragments biased toward the grammar so generated soup reaches deep
/// parser states (half-finished predicates, dangling operators, stray
/// quotes) far more often than uniform random text would.
const FRAGMENTS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "AS",
    "BETWEEN",
    "IN",
    "LIKE",
    "IS",
    "NULL",
    "MIN",
    "COUNT",
    "(",
    ")",
    ",",
    ".",
    ";",
    "*",
    "=",
    "<",
    "<=",
    ">",
    ">=",
    "<>",
    "!=",
    "-",
    "t",
    "mc",
    "title",
    "movie_companies",
    "id",
    "movie_id",
    "production_year",
    "'x'",
    "''",
    "'it''s'",
    "'unterminated",
    "1999",
    "0",
    "99999999999999999999999",
    "--",
    "~",
    "🙂",
    "é",
];

proptest! {
    /// Arbitrary Unicode never panics the lexer.
    #[test]
    fn lexer_never_panics_on_arbitrary_input(input in any::<String>()) {
        let _ = tokenize(&input);
    }

    /// Arbitrary Unicode never panics the parser (single- or multi-statement).
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in any::<String>()) {
        let _ = parse_statement(&input);
        let _ = parse_statements(&input);
    }

    /// SQL-shaped token soup never panics the parser.
    #[test]
    fn parser_never_panics_on_sql_shaped_soup(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..48),
    ) {
        let soup: Vec<&str> = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let input = soup.join(" ");
        let _ = parse_statement(&input);
        let _ = parse_statements(&input);
        // Also without separating spaces, to hit token-adjacency paths.
        let dense = soup.concat();
        let _ = parse_statement(&dense);
    }
}

/// SQL-shaped soup never panics the binder either: whatever parses must
/// bind to `Ok` or a diagnostic.  (The catalog is built once — outside the
/// `proptest!` macro — because data generation dominates the runtime.)
#[test]
fn binder_never_panics_on_sql_shaped_soup() {
    let db = generate_imdb(&Scale::tiny()).unwrap();
    let mut rng = TestRng::deterministic("binder_never_panics");
    for _ in 0..512 {
        let len = rng.below(48);
        let soup: Vec<&str> = (0..len).map(|_| FRAGMENTS[rng.below(FRAGMENTS.len())]).collect();
        let input = soup.join(" ");
        let _ = compile(&db, &input, "fuzz");
    }
}
