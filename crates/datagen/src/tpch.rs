//! A TPC-H-like synthetic database with *uniform, independent* columns.
//!
//! The paper's Figure 4 contrasts cardinality estimation on JOB/IMDB with
//! TPC-H and finds TPC-H trivially easy, because the TPC-H generator obeys
//! the very assumptions (uniformity, independence, inclusion) that estimators
//! make.  This module reproduces that contrast: every attribute is drawn
//! uniformly and independently, and every foreign key has uniform fan-out.
//!
//! The schema keeps the eight TPC-H tables but uses surrogate `id` primary
//! keys and `<table>_id` foreign keys so the rest of the tooling (workload
//! builder, executor, statistics) treats both databases identically.

use rand::Rng;

use qob_storage::{ColumnMeta, DataType, Database, Result, TableBuilder, Value};

use crate::rng::stream_rng;
use crate::scale::Scale;

/// TPC-H region names.
pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// TPC-H nation names (one region each, round-robin).
pub const NATIONS: &[&str] = &[
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

/// Market segments.
pub const SEGMENTS: &[&str] = &["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];

/// Part type words.
pub const PART_TYPES: &[&str] = &[
    "ECONOMY ANODIZED STEEL",
    "ECONOMY BRUSHED BRASS",
    "STANDARD POLISHED TIN",
    "STANDARD PLATED COPPER",
    "MEDIUM BURNISHED NICKEL",
    "MEDIUM ANODIZED COPPER",
    "LARGE BRUSHED STEEL",
    "LARGE POLISHED NICKEL",
    "SMALL PLATED BRASS",
    "SMALL BURNISHED TIN",
    "PROMO ANODIZED STEEL",
    "PROMO PLATED COPPER",
];

/// Order priorities.
pub const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Return flags.
pub const RETURN_FLAGS: &[&str] = &["R", "A", "N"];

/// Generates the TPC-H-like database.  Sizes are derived from
/// [`Scale::tpch_orders`]: customers = orders / 10, parts = orders / 5,
/// suppliers = orders / 100, lineitems ≈ 4 × orders.
pub fn generate_tpch(scale: &Scale) -> Result<Database> {
    crate::record_generation();
    let mut db = Database::new();
    let orders_n = scale.tpch_orders();
    let customers_n = (orders_n / 10).max(10);
    let parts_n = (orders_n / 5).max(20);
    let suppliers_n = (orders_n / 100).max(5);

    // region
    let mut region = TableBuilder::new(
        "region",
        vec![ColumnMeta::new("id", DataType::Int), ColumnMeta::new("r_name", DataType::Str)],
    );
    for (i, r) in REGIONS.iter().enumerate() {
        region.push_row(vec![Value::Int(i as i64 + 1), Value::Str((*r).to_owned())])?;
    }
    let region_id = db.add_table(region.finish())?;

    // nation
    let mut nation = TableBuilder::new(
        "nation",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("n_name", DataType::Str),
            ColumnMeta::new("region_id", DataType::Int),
        ],
    );
    for (i, n) in NATIONS.iter().enumerate() {
        nation.push_row(vec![
            Value::Int(i as i64 + 1),
            Value::Str((*n).to_owned()),
            Value::Int((i % REGIONS.len()) as i64 + 1),
        ])?;
    }
    let nation_id = db.add_table(nation.finish())?;

    // customer
    let mut rng = stream_rng(scale.seed, "tpch-customer");
    let mut customer = TableBuilder::new(
        "customer",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("c_name", DataType::Str),
            ColumnMeta::new("nation_id", DataType::Int),
            ColumnMeta::new("c_mktsegment", DataType::Str),
            ColumnMeta::new("c_acctbal", DataType::Int),
        ],
    );
    for i in 0..customers_n {
        customer.push_row(vec![
            Value::Int(i as i64 + 1),
            Value::Str(format!("Customer#{:09}", i + 1)),
            Value::Int(rng.gen_range(1..=NATIONS.len() as i64)),
            Value::Str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_owned()),
            Value::Int(rng.gen_range(-999..10_000)),
        ])?;
    }
    let customer_id = db.add_table(customer.finish())?;

    // supplier
    let mut rng = stream_rng(scale.seed, "tpch-supplier");
    let mut supplier = TableBuilder::new(
        "supplier",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("s_name", DataType::Str),
            ColumnMeta::new("nation_id", DataType::Int),
        ],
    );
    for i in 0..suppliers_n {
        supplier.push_row(vec![
            Value::Int(i as i64 + 1),
            Value::Str(format!("Supplier#{:09}", i + 1)),
            Value::Int(rng.gen_range(1..=NATIONS.len() as i64)),
        ])?;
    }
    let supplier_id = db.add_table(supplier.finish())?;

    // part
    let mut rng = stream_rng(scale.seed, "tpch-part");
    let mut part = TableBuilder::new(
        "part",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("p_name", DataType::Str),
            ColumnMeta::new("p_type", DataType::Str),
            ColumnMeta::new("p_brand", DataType::Str),
            ColumnMeta::new("p_size", DataType::Int),
        ],
    );
    for i in 0..parts_n {
        part.push_row(vec![
            Value::Int(i as i64 + 1),
            Value::Str(format!("part {}", i + 1)),
            Value::Str(PART_TYPES[rng.gen_range(0..PART_TYPES.len())].to_owned()),
            Value::Str(format!("Brand#{}{}", rng.gen_range(1..6), rng.gen_range(1..6))),
            Value::Int(rng.gen_range(1..51)),
        ])?;
    }
    let part_id = db.add_table(part.finish())?;

    // partsupp
    let mut rng = stream_rng(scale.seed, "tpch-partsupp");
    let mut partsupp = TableBuilder::new(
        "partsupp",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("part_id", DataType::Int),
            ColumnMeta::new("supplier_id", DataType::Int),
            ColumnMeta::new("ps_availqty", DataType::Int),
        ],
    );
    let mut ps_id = 1i64;
    for p in 0..parts_n {
        for _ in 0..2 {
            partsupp.push_row(vec![
                Value::Int(ps_id),
                Value::Int(p as i64 + 1),
                Value::Int(rng.gen_range(1..=suppliers_n as i64)),
                Value::Int(rng.gen_range(1..10_000)),
            ])?;
            ps_id += 1;
        }
    }
    let partsupp_id = db.add_table(partsupp.finish())?;

    // orders
    let mut rng = stream_rng(scale.seed, "tpch-orders");
    let mut orders = TableBuilder::new(
        "orders",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("customer_id", DataType::Int),
            ColumnMeta::new("o_orderyear", DataType::Int),
            ColumnMeta::new("o_orderpriority", DataType::Str),
        ],
    );
    for i in 0..orders_n {
        orders.push_row(vec![
            Value::Int(i as i64 + 1),
            Value::Int(rng.gen_range(1..=customers_n as i64)),
            Value::Int(rng.gen_range(1992..1999)),
            Value::Str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())].to_owned()),
        ])?;
    }
    let orders_id = db.add_table(orders.finish())?;

    // lineitem: uniform 1..=7 items per order.
    let mut rng = stream_rng(scale.seed, "tpch-lineitem");
    let mut lineitem = TableBuilder::new(
        "lineitem",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("order_id", DataType::Int),
            ColumnMeta::new("part_id", DataType::Int),
            ColumnMeta::new("supplier_id", DataType::Int),
            ColumnMeta::new("l_quantity", DataType::Int),
            ColumnMeta::new("l_shipyear", DataType::Int),
            ColumnMeta::new("l_returnflag", DataType::Str),
        ],
    );
    let mut li_id = 1i64;
    for o in 0..orders_n {
        let items = rng.gen_range(1..=7);
        for _ in 0..items {
            lineitem.push_row(vec![
                Value::Int(li_id),
                Value::Int(o as i64 + 1),
                Value::Int(rng.gen_range(1..=parts_n as i64)),
                Value::Int(rng.gen_range(1..=suppliers_n as i64)),
                Value::Int(rng.gen_range(1..51)),
                Value::Int(rng.gen_range(1992..1999)),
                Value::Str(RETURN_FLAGS[rng.gen_range(0..RETURN_FLAGS.len())].to_owned()),
            ])?;
            li_id += 1;
        }
    }
    let lineitem_id = db.add_table(lineitem.finish())?;

    // Keys.
    for (tid, _) in [
        (region_id, "region"),
        (nation_id, "nation"),
        (customer_id, "customer"),
        (supplier_id, "supplier"),
        (part_id, "part"),
        (partsupp_id, "partsupp"),
        (orders_id, "orders"),
        (lineitem_id, "lineitem"),
    ] {
        db.declare_primary_key(tid, "id")?;
    }
    db.declare_foreign_key(nation_id, "region_id", region_id)?;
    db.declare_foreign_key(customer_id, "nation_id", nation_id)?;
    db.declare_foreign_key(supplier_id, "nation_id", nation_id)?;
    db.declare_foreign_key(partsupp_id, "part_id", part_id)?;
    db.declare_foreign_key(partsupp_id, "supplier_id", supplier_id)?;
    db.declare_foreign_key(orders_id, "customer_id", customer_id)?;
    db.declare_foreign_key(lineitem_id, "order_id", orders_id)?;
    db.declare_foreign_key(lineitem_id, "part_id", part_id)?;
    db.declare_foreign_key(lineitem_id, "supplier_id", supplier_id)?;

    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_eight_tables_with_keys() {
        let db = generate_tpch(&Scale::tiny()).unwrap();
        assert_eq!(db.table_count(), 8);
        for name in
            ["region", "nation", "customer", "supplier", "part", "partsupp", "orders", "lineitem"]
        {
            let tid = db.table_id(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(db.keys(tid).primary_key.is_some());
        }
        let li = db.table_id("lineitem").unwrap();
        assert_eq!(db.keys(li).foreign_keys.len(), 3);
    }

    #[test]
    fn sizes_scale_with_orders() {
        let scale = Scale::tiny();
        let db = generate_tpch(&scale).unwrap();
        let orders = db.table_by_name("orders").unwrap().row_count();
        let lineitem = db.table_by_name("lineitem").unwrap().row_count();
        assert_eq!(orders, scale.tpch_orders());
        assert!(lineitem >= orders, "lineitems at least one per order");
        assert!(lineitem <= orders * 7);
        assert_eq!(db.table_by_name("region").unwrap().row_count(), 5);
        assert_eq!(db.table_by_name("nation").unwrap().row_count(), 25);
    }

    #[test]
    fn order_years_are_roughly_uniform() {
        let db = generate_tpch(&Scale::small()).unwrap();
        let orders = db.table_by_name("orders").unwrap();
        let year = orders.column_id("o_orderyear").unwrap();
        let mut counts = std::collections::HashMap::new();
        for r in orders.row_ids() {
            *counts.entry(orders.value(r, year).as_int().unwrap()).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 7, "years 1992..=1998");
        let max = *counts.values().max().unwrap() as f64;
        let min = *counts.values().min().unwrap() as f64;
        assert!(max / min < 1.6, "uniform years should have similar counts (max {max}, min {min})");
    }

    #[test]
    fn foreign_keys_are_dense_and_valid() {
        let db = generate_tpch(&Scale::tiny()).unwrap();
        let li = db.table_by_name("lineitem").unwrap();
        let orders_n = db.table_by_name("orders").unwrap().row_count() as i64;
        let col = li.column_id("order_id").unwrap();
        for r in li.row_ids() {
            let v = li.value(r, col).as_int().unwrap();
            assert!(v >= 1 && v <= orders_n);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_tpch(&Scale::tiny()).unwrap();
        let b = generate_tpch(&Scale::tiny()).unwrap();
        assert_eq!(a.total_rows(), b.total_rows());
        let ta = a.table_by_name("lineitem").unwrap();
        let tb = b.table_by_name("lineitem").unwrap();
        let col = ta.column_id("part_id").unwrap();
        for r in ta.row_ids().take(100) {
            assert_eq!(ta.value(r, col), tb.value(r, col));
        }
    }
}
