//! Scale factors for the synthetic databases.

/// Controls the size of the generated databases.
///
/// `movies` is the number of rows in the `title` table; all other table
/// sizes are derived from it with the approximate ratios of the real IMDB
/// snapshot used in the paper (where `cast_info` is ~14x and `movie_info`
/// ~6x the size of `title`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of movies (`title` rows).
    pub movies: usize,
    /// Random seed; different seeds produce statistically similar databases.
    pub seed: u64,
}

impl Scale {
    /// A very small database for unit tests (hundreds of rows in total).
    pub fn tiny() -> Self {
        Scale { movies: 200, seed: 42 }
    }

    /// A small database suitable for integration tests and quick examples.
    pub fn small() -> Self {
        Scale { movies: 1_000, seed: 42 }
    }

    /// The default scale for regenerating the paper's figures and tables.
    pub fn benchmark() -> Self {
        Scale { movies: 8_000, seed: 42 }
    }

    /// A custom scale.
    pub fn with_movies(movies: usize) -> Self {
        Scale { movies, seed: 42 }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of people (`name` rows).
    pub fn people(&self) -> usize {
        (self.movies * 2).max(20)
    }

    /// Number of companies (`company_name` rows).
    pub fn companies(&self) -> usize {
        (self.movies / 4).max(10)
    }

    /// Number of distinct keywords.
    pub fn keywords(&self) -> usize {
        (self.movies / 2).max(20)
    }

    /// Number of character names.
    pub fn characters(&self) -> usize {
        (self.movies * 2).max(20)
    }

    /// Average number of cast entries per movie (the realised counts are
    /// zipf-distributed around this mean).
    pub fn avg_cast_per_movie(&self) -> f64 {
        12.0
    }

    /// Average number of `movie_info` rows per movie.
    pub fn avg_info_per_movie(&self) -> f64 {
        6.0
    }

    /// Average number of `movie_keyword` rows per movie.
    pub fn avg_keywords_per_movie(&self) -> f64 {
        4.0
    }

    /// Average number of `movie_companies` rows per movie.
    pub fn avg_companies_per_movie(&self) -> f64 {
        2.5
    }

    /// TPC-H-like scale derived from the movie count: number of orders.
    pub fn tpch_orders(&self) -> usize {
        (self.movies * 3).max(100)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        assert!(Scale::tiny().movies < Scale::small().movies);
        assert!(Scale::small().movies < Scale::benchmark().movies);
    }

    #[test]
    fn derived_sizes_scale_with_movies() {
        let s = Scale::with_movies(1000);
        assert_eq!(s.people(), 2000);
        assert_eq!(s.companies(), 250);
        assert_eq!(s.keywords(), 500);
        assert_eq!(s.characters(), 2000);
        assert!(s.avg_cast_per_movie() > s.avg_companies_per_movie());
        assert_eq!(s.tpch_orders(), 3000);
    }

    #[test]
    fn derived_sizes_have_floors() {
        let s = Scale::with_movies(1);
        assert!(s.people() >= 20);
        assert!(s.companies() >= 10);
        assert!(s.keywords() >= 20);
        assert!(s.tpch_orders() >= 100);
    }

    #[test]
    fn seed_override() {
        let s = Scale::small().with_seed(7);
        assert_eq!(s.seed, 7);
        assert_eq!(s.movies, Scale::small().movies);
        assert_eq!(Scale::default(), Scale::small());
    }
}
