//! # qob-datagen
//!
//! Deterministic synthetic data generators for the JOB reproduction.
//!
//! The original paper loads a May-2013 snapshot of the IMDB data set
//! (3.6 GB of CSV, 21 tables).  That data cannot be redistributed here, so
//! this crate generates a *synthetic stand-in with the same schema and the
//! same statistical pathologies* the paper attributes to IMDB:
//!
//! * non-uniform value distributions (zipfian popularity of movies, skewed
//!   production years, a handful of dominant genres/countries/companies),
//! * correlated attributes within tables (production year ↔ kind, rating
//!   availability ↔ popularity),
//! * join-crossing correlations (companies of a region produce movies with
//!   that region's language/country info; popular movies attract more cast,
//!   keywords and info rows),
//! * skewed foreign-key fan-out (a few movies have hundreds of cast entries,
//!   most have a handful).
//!
//! A second generator produces a TPC-H-like database whose columns are
//! uniform and independent — exactly the property the paper exploits in
//! Figure 4 to show that synthetic benchmarks are too easy for cardinality
//! estimators.
//!
//! All generators are deterministic: the same [`Scale`] always produces the
//! same database.

use std::sync::atomic::{AtomicU64, Ordering};

pub mod imdb;
pub mod rng;
pub mod scale;
pub mod tpch;

pub use imdb::{declare_imdb_keys, generate_imdb, imdb_schema};
pub use scale::Scale;
pub use tpch::generate_tpch;

/// Process-wide count of full database generations.
static GENERATION_COUNT: AtomicU64 = AtomicU64::new(0);

/// How many times this process has run a full database generation
/// (IMDB or TPC-H).  The serve-path tests assert this stays flat while warm
/// queries run — i.e. that a snapshot-backed server never regenerates.
pub fn generation_count() -> u64 {
    GENERATION_COUNT.load(Ordering::Relaxed)
}

pub(crate) fn record_generation() {
    GENERATION_COUNT.fetch_add(1, Ordering::Relaxed);
}
