//! The synthetic IMDB-like database generator.
//!
//! Generates all 21 tables of the IMDB schema used by the Join Order
//! Benchmark, at a configurable scale, with the statistical pathologies the
//! paper attributes to the real data set: skewed value distributions,
//! correlated attributes and skewed foreign-key fan-out.  See the crate-level
//! documentation of [`crate`] and `DESIGN.md` for the substitution argument.

pub mod core_tables;
pub mod fact_tables;
pub mod vocab;

use rand::Rng;

use qob_storage::{ColumnMeta, DataType, Database, Result, StorageError, TableSchema};

use crate::rng::{chance, stream_rng, weighted_choice, Zipf};
use crate::scale::Scale;

/// Latent per-movie attributes shared by all fact-table generators.
///
/// These latent variables are what create the *join-crossing correlations*:
/// the same `region`/`popularity` values drive `company_name.country_code`,
/// `movie_info` languages and `movie_info_idx` rating availability.
#[derive(Debug, Clone)]
pub struct MovieProfile {
    /// Index into [`vocab::MOVIE_KINDS`].
    pub kind: usize,
    /// Production year (None for ~6% of movies).
    pub year: Option<i64>,
    /// Index into [`vocab::REGIONS`].
    pub region: usize,
    /// Primary genre: index into [`vocab::GENRES`].
    pub genre: usize,
    /// Popularity score in `[0, 1]`; 1 is the most popular movie.
    pub popularity: f64,
    /// Whether a rating row exists in `movie_info_idx`.
    pub has_rating: bool,
    /// Rating multiplied by 10 (e.g. 72 = "7.2").
    pub rating_x10: i64,
    /// Vote count.
    pub votes: i64,
}

/// Latent per-person attributes.
#[derive(Debug, Clone)]
pub struct PersonProfile {
    /// 'm', 'f' or None.
    pub gender: Option<&'static str>,
    /// Index into [`vocab::REGIONS`]; people mostly act in movies of their
    /// own region, another join-crossing correlation.
    pub region: usize,
}

/// Latent per-company attributes.
#[derive(Debug, Clone)]
pub struct CompanyProfile {
    /// Index into [`vocab::REGIONS`].
    pub region: usize,
    /// Index into [`vocab::COMPANY_TYPES`] this company most often acts as.
    pub preferred_type: usize,
}

/// All latent profiles generated before the tables themselves.
#[derive(Debug)]
pub struct Profiles {
    /// One profile per `title` row.
    pub movies: Vec<MovieProfile>,
    /// One profile per `name` row.
    pub people: Vec<PersonProfile>,
    /// One profile per `company_name` row.
    pub companies: Vec<CompanyProfile>,
}

impl Profiles {
    /// Generates the latent profiles for the given scale.
    pub fn generate(scale: &Scale) -> Profiles {
        Profiles {
            movies: generate_movie_profiles(scale),
            people: generate_person_profiles(scale),
            companies: generate_company_profiles(scale),
        }
    }
}

fn region_weights() -> Vec<u32> {
    vocab::REGIONS.iter().map(|(_, _, _, w)| *w).collect()
}

fn generate_movie_profiles(scale: &Scale) -> Vec<MovieProfile> {
    let mut rng = stream_rng(scale.seed, "movie-profiles");
    let n = scale.movies;
    let kind_weights: Vec<u32> = vocab::MOVIE_KINDS.iter().map(|(_, w)| *w).collect();
    let genre_weights: Vec<u32> = vocab::GENRES.iter().map(|(_, w)| *w).collect();
    let regions = region_weights();
    // Popularity: a random permutation of zipf ranks so that movie ids do not
    // encode popularity.
    let zipf = Zipf::new(n.max(1), 0.9);
    let mut profiles = Vec::with_capacity(n);
    for _ in 0..n {
        let rank = zipf.sample(&mut rng);
        // Popularity score in [0,1]; rank 0 -> 1.0, decays with rank.
        let popularity = 1.0 / (1.0 + rank as f64).powf(0.45);
        let kind = weighted_choice(&mut rng, &kind_weights);
        let region = weighted_choice(&mut rng, &regions);
        let genre = weighted_choice(&mut rng, &genre_weights);
        // Years skew recent; 'episode' and 'video game' kinds skew even more
        // recent (correlation between kind and production year).
        let year = if chance(&mut rng, 0.06) {
            None
        } else {
            let base: i64 = if matches!(vocab::MOVIE_KINDS[kind].0, "episode" | "video game") {
                1990
            } else if chance(&mut rng, 0.68) {
                1985
            } else {
                1925
            };
            let span = 2013 - base;
            // Quadratic skew toward the end of the span (recent years).
            let u: f64 = rng.gen::<f64>();
            Some(base + (u.sqrt() * span as f64) as i64)
        };
        let recent = year.map(|y| y >= 1990).unwrap_or(false);
        let has_rating = chance(
            &mut rng,
            (0.22 + 0.55 * popularity + if recent { 0.12 } else { 0.0 }).min(0.95),
        );
        let genre_bonus: i64 = match vocab::GENRES[genre].0 {
            "Drama" | "Biography" | "Documentary" => 6,
            "Horror" => -8,
            "Comedy" => -2,
            _ => 0,
        };
        let rating_x10 = (48.0 + 28.0 * popularity + rng.gen_range(-8.0..8.0)) as i64 + genre_bonus;
        let rating_x10 = rating_x10.clamp(10, 98);
        let votes = (10.0_f64.powf(1.2 + 3.3 * popularity) * rng.gen_range(0.5..1.5)) as i64 + 5;
        profiles.push(MovieProfile {
            kind,
            year,
            region,
            genre,
            popularity,
            has_rating,
            rating_x10,
            votes,
        });
    }
    profiles
}

fn generate_person_profiles(scale: &Scale) -> Vec<PersonProfile> {
    let mut rng = stream_rng(scale.seed, "person-profiles");
    let regions = region_weights();
    (0..scale.people())
        .map(|_| {
            let gender = if chance(&mut rng, 0.58) {
                Some("m")
            } else if chance(&mut rng, 0.88) {
                Some("f")
            } else {
                None
            };
            PersonProfile { gender, region: weighted_choice(&mut rng, &regions) }
        })
        .collect()
}

fn generate_company_profiles(scale: &Scale) -> Vec<CompanyProfile> {
    let mut rng = stream_rng(scale.seed, "company-profiles");
    let regions = region_weights();
    (0..scale.companies())
        .map(|_| {
            // Most companies act as production companies or distributors.
            let preferred_type = weighted_choice(&mut rng, &[30, 52, 6, 12]);
            CompanyProfile { region: weighted_choice(&mut rng, &regions), preferred_type }
        })
        .collect()
}

/// Generates the complete synthetic IMDB database (21 tables) with key
/// declarations; indexes are *not* built — the caller picks an
/// [`qob_storage::IndexConfig`] and calls [`Database::build_indexes`].
pub fn generate_imdb(scale: &Scale) -> Result<Database> {
    crate::record_generation();
    let profiles = Profiles::generate(scale);
    let mut db = Database::new();

    // Dimension tables.
    db.add_table(core_tables::kind_type_table())?;
    db.add_table(core_tables::info_type_table())?;
    db.add_table(core_tables::company_type_table())?;
    db.add_table(core_tables::role_type_table())?;
    db.add_table(core_tables::link_type_table())?;
    db.add_table(core_tables::comp_cast_type_table())?;

    // Entity tables.
    db.add_table(core_tables::title_table(scale, &profiles.movies))?;
    db.add_table(core_tables::name_table(scale, &profiles.people))?;
    db.add_table(core_tables::char_name_table(scale))?;
    db.add_table(core_tables::company_name_table(scale, &profiles.companies))?;
    db.add_table(core_tables::keyword_table(scale))?;
    db.add_table(core_tables::aka_name_table(scale, &profiles.people))?;
    db.add_table(core_tables::aka_title_table(scale, &profiles.movies))?;

    // Fact / bridge tables.
    db.add_table(fact_tables::movie_companies_table(scale, &profiles))?;
    db.add_table(fact_tables::movie_info_table(scale, &profiles.movies))?;
    db.add_table(fact_tables::movie_info_idx_table(scale, &profiles.movies))?;
    db.add_table(fact_tables::movie_keyword_table(scale, &profiles.movies))?;
    db.add_table(fact_tables::cast_info_table(scale, &profiles))?;
    db.add_table(fact_tables::person_info_table(scale, &profiles.people))?;
    db.add_table(fact_tables::complete_cast_table(scale, &profiles.movies))?;
    db.add_table(fact_tables::movie_link_table(scale, &profiles.movies))?;

    declare_imdb_keys(&mut db)?;
    Ok(db)
}

/// The JOB foreign-key join edges as `(table, column, referenced table)`.
const IMDB_FOREIGN_KEYS: &[(&str, &str, &str)] = &[
    ("title", "kind_id", "kind_type"),
    ("aka_name", "person_id", "name"),
    ("aka_title", "movie_id", "title"),
    ("aka_title", "kind_id", "kind_type"),
    ("movie_companies", "movie_id", "title"),
    ("movie_companies", "company_id", "company_name"),
    ("movie_companies", "company_type_id", "company_type"),
    ("movie_info", "movie_id", "title"),
    ("movie_info", "info_type_id", "info_type"),
    ("movie_info_idx", "movie_id", "title"),
    ("movie_info_idx", "info_type_id", "info_type"),
    ("movie_keyword", "movie_id", "title"),
    ("movie_keyword", "keyword_id", "keyword"),
    ("cast_info", "movie_id", "title"),
    ("cast_info", "person_id", "name"),
    ("cast_info", "person_role_id", "char_name"),
    ("cast_info", "role_id", "role_type"),
    ("person_info", "person_id", "name"),
    ("person_info", "info_type_id", "info_type"),
    ("complete_cast", "movie_id", "title"),
    ("complete_cast", "subject_id", "comp_cast_type"),
    ("complete_cast", "status_id", "comp_cast_type"),
    ("movie_link", "movie_id", "title"),
    ("movie_link", "linked_movie_id", "title"),
    ("movie_link", "link_type_id", "link_type"),
];

/// Declares the IMDB primary keys (surrogate `id` on every table) and the
/// JOB foreign-key edges on `db`, whose tables may come from the generator
/// *or* from CSV ingestion — any database whose tables match
/// [`imdb_schema`].
pub fn declare_imdb_keys(db: &mut Database) -> Result<()> {
    let tid = |db: &Database, name: &str| {
        db.table_id(name).ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    };
    for schema in imdb_schema() {
        let t = tid(db, &schema.name)?;
        db.declare_primary_key(t, "id")?;
    }
    for &(table, column, referenced) in IMDB_FOREIGN_KEYS {
        let t = tid(db, table)?;
        let r = tid(db, referenced)?;
        db.declare_foreign_key(t, column, r)?;
    }
    Ok(())
}

/// The schemas of all 21 IMDB tables in generation order, for ingesting a
/// CSV export of the database (`qob ingest`).  Column order matches the
/// generator exactly; a test pins the two in sync.
pub fn imdb_schema() -> Vec<TableSchema> {
    let int = |n: &str| ColumnMeta::new(n, DataType::Int);
    let str_ = |n: &str| ColumnMeta::new(n, DataType::Str);
    vec![
        TableSchema::new("kind_type", vec![int("id"), str_("kind")]),
        TableSchema::new("info_type", vec![int("id"), str_("info")]),
        TableSchema::new("company_type", vec![int("id"), str_("kind")]),
        TableSchema::new("role_type", vec![int("id"), str_("role")]),
        TableSchema::new("link_type", vec![int("id"), str_("link")]),
        TableSchema::new("comp_cast_type", vec![int("id"), str_("kind")]),
        TableSchema::new(
            "title",
            vec![
                int("id"),
                str_("title"),
                int("kind_id"),
                int("production_year"),
                int("episode_of_id"),
                int("season_nr"),
                str_("imdb_index"),
            ],
        ),
        TableSchema::new(
            "name",
            vec![
                int("id"),
                str_("name"),
                str_("gender"),
                str_("imdb_index"),
                str_("name_pcode_cf"),
            ],
        ),
        TableSchema::new("char_name", vec![int("id"), str_("name")]),
        TableSchema::new("company_name", vec![int("id"), str_("name"), str_("country_code")]),
        TableSchema::new("keyword", vec![int("id"), str_("keyword"), str_("phonetic_code")]),
        TableSchema::new("aka_name", vec![int("id"), int("person_id"), str_("name")]),
        TableSchema::new(
            "aka_title",
            vec![int("id"), int("movie_id"), str_("title"), int("kind_id")],
        ),
        TableSchema::new(
            "movie_companies",
            vec![
                int("id"),
                int("movie_id"),
                int("company_id"),
                int("company_type_id"),
                str_("note"),
            ],
        ),
        TableSchema::new(
            "movie_info",
            vec![int("id"), int("movie_id"), int("info_type_id"), str_("info"), str_("note")],
        ),
        TableSchema::new(
            "movie_info_idx",
            vec![int("id"), int("movie_id"), int("info_type_id"), str_("info")],
        ),
        TableSchema::new("movie_keyword", vec![int("id"), int("movie_id"), int("keyword_id")]),
        TableSchema::new(
            "cast_info",
            vec![
                int("id"),
                int("person_id"),
                int("movie_id"),
                int("person_role_id"),
                str_("note"),
                int("nr_order"),
                int("role_id"),
            ],
        ),
        TableSchema::new(
            "person_info",
            vec![int("id"), int("person_id"), int("info_type_id"), str_("info"), str_("note")],
        ),
        TableSchema::new(
            "complete_cast",
            vec![int("id"), int("movie_id"), int("subject_id"), int("status_id")],
        ),
        TableSchema::new(
            "movie_link",
            vec![int("id"), int("movie_id"), int("linked_movie_id"), int("link_type_id")],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_expected_sizes_and_ranges() {
        let scale = Scale::tiny();
        let p = Profiles::generate(&scale);
        assert_eq!(p.movies.len(), scale.movies);
        assert_eq!(p.people.len(), scale.people());
        assert_eq!(p.companies.len(), scale.companies());
        for m in &p.movies {
            assert!(m.kind < vocab::MOVIE_KINDS.len());
            assert!(m.region < vocab::REGIONS.len());
            assert!(m.genre < vocab::GENRES.len());
            assert!(m.popularity > 0.0 && m.popularity <= 1.0);
            assert!(m.rating_x10 >= 10 && m.rating_x10 <= 98);
            assert!(m.votes > 0);
            if let Some(y) = m.year {
                assert!((1925..=2013).contains(&y));
            }
        }
    }

    #[test]
    fn profiles_are_deterministic() {
        let scale = Scale::tiny();
        let a = Profiles::generate(&scale);
        let b = Profiles::generate(&scale);
        assert_eq!(a.movies.len(), b.movies.len());
        for (x, y) in a.movies.iter().zip(&b.movies) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.year, y.year);
            assert_eq!(x.votes, y.votes);
        }
        let c = Profiles::generate(&scale.with_seed(7));
        let same = a
            .movies
            .iter()
            .zip(&c.movies)
            .filter(|(x, y)| x.year == y.year && x.kind == y.kind)
            .count();
        assert!(same < a.movies.len(), "different seed should change profiles");
    }

    #[test]
    fn movie_years_skew_recent() {
        let p = Profiles::generate(&Scale::small());
        let years: Vec<i64> = p.movies.iter().filter_map(|m| m.year).collect();
        let recent = years.iter().filter(|&&y| y >= 1990).count();
        assert!(
            recent as f64 > years.len() as f64 * 0.5,
            "more than half of the movies should be from 1990+, got {recent}/{}",
            years.len()
        );
    }

    #[test]
    fn popularity_correlates_with_rating_availability() {
        let p = Profiles::generate(&Scale::small());
        let (mut pop_with, mut pop_total, mut unpop_with, mut unpop_total) = (0, 0, 0, 0);
        for m in &p.movies {
            if m.popularity > 0.5 {
                pop_total += 1;
                if m.has_rating {
                    pop_with += 1;
                }
            } else {
                unpop_total += 1;
                if m.has_rating {
                    unpop_with += 1;
                }
            }
        }
        let pop_rate = pop_with as f64 / pop_total.max(1) as f64;
        let unpop_rate = unpop_with as f64 / unpop_total.max(1) as f64;
        assert!(
            pop_rate > unpop_rate,
            "popular movies should be rated more often ({pop_rate:.2} vs {unpop_rate:.2})"
        );
    }

    #[test]
    fn imdb_schema_matches_the_generator_exactly() {
        // `qob ingest` trusts `imdb_schema()` for names, column order and
        // types; this pins it to what the generator actually emits.
        let db = generate_imdb(&Scale::tiny()).unwrap();
        let schemas = imdb_schema();
        assert_eq!(schemas.len(), db.table_count());
        for schema in &schemas {
            let table = db
                .table_by_name(&schema.name)
                .unwrap_or_else(|| panic!("generator lacks table {}", schema.name));
            assert_eq!(
                table.schema(),
                schema.columns.as_slice(),
                "schema drift in `{}`",
                schema.name
            );
        }
    }

    #[test]
    fn declared_keys_match_by_name_and_by_id() {
        // declare_imdb_keys on an ingested-style database (same tables, added
        // fresh) must reproduce the generator's key declarations.
        let db = generate_imdb(&Scale::tiny()).unwrap();
        let mut rebuilt = Database::new();
        for (_, t) in db.tables() {
            rebuilt.add_table(t.clone()).unwrap();
        }
        declare_imdb_keys(&mut rebuilt).unwrap();
        for (tid, t) in db.tables() {
            let rid = rebuilt.table_id(t.name()).unwrap();
            assert_eq!(db.keys(tid).primary_key, rebuilt.keys(rid).primary_key);
            assert_eq!(db.keys(tid).foreign_keys.len(), rebuilt.keys(rid).foreign_keys.len());
        }
    }

    #[test]
    fn generate_imdb_produces_all_21_tables() {
        let db = generate_imdb(&Scale::tiny()).unwrap();
        assert_eq!(db.table_count(), 21);
        for name in [
            "kind_type",
            "info_type",
            "company_type",
            "role_type",
            "link_type",
            "comp_cast_type",
            "title",
            "name",
            "char_name",
            "company_name",
            "keyword",
            "aka_name",
            "aka_title",
            "movie_companies",
            "movie_info",
            "movie_info_idx",
            "movie_keyword",
            "cast_info",
            "person_info",
            "complete_cast",
            "movie_link",
        ] {
            let tid = db.table_id(name).unwrap_or_else(|| panic!("missing table {name}"));
            assert!(db.keys(tid).primary_key.is_some(), "{name} has a primary key");
        }
        // Fact tables declare foreign keys.
        let ci = db.table_id("cast_info").unwrap();
        assert_eq!(db.keys(ci).foreign_keys.len(), 4);
        assert!(db.total_rows() > db.table_by_name("title").unwrap().row_count() * 5);
    }
}
