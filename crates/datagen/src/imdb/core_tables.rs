//! Dimension and entity table generators (everything that is not a bridge /
//! fact table).

use qob_storage::{ColumnMeta, DataType, Table, TableBuilder, Value};

use super::vocab;
use super::{CompanyProfile, MovieProfile, PersonProfile};
use crate::rng::{chance, stream_rng, weighted_choice};
use crate::scale::Scale;
use rand::Rng;

fn dim_table(name: &str, value_column: &str, values: &[&str]) -> Table {
    let mut b = TableBuilder::new(
        name,
        vec![ColumnMeta::new("id", DataType::Int), ColumnMeta::new(value_column, DataType::Str)],
    );
    for (i, v) in values.iter().enumerate() {
        b.push_row(vec![Value::Int(i as i64 + 1), Value::Str((*v).to_owned())])
            .expect("dimension row");
    }
    b.finish()
}

/// `kind_type(id, kind)`.
pub fn kind_type_table() -> Table {
    let kinds: Vec<&str> = vocab::MOVIE_KINDS.iter().map(|(k, _)| *k).collect();
    dim_table("kind_type", "kind", &kinds)
}

/// `info_type(id, info)`.
pub fn info_type_table() -> Table {
    dim_table("info_type", "info", vocab::INFO_TYPES)
}

/// `company_type(id, kind)`.
pub fn company_type_table() -> Table {
    dim_table("company_type", "kind", vocab::COMPANY_TYPES)
}

/// `role_type(id, role)`.
pub fn role_type_table() -> Table {
    dim_table("role_type", "role", vocab::ROLE_TYPES)
}

/// `link_type(id, link)`.
pub fn link_type_table() -> Table {
    dim_table("link_type", "link", vocab::LINK_TYPES)
}

/// `comp_cast_type(id, kind)`.
pub fn comp_cast_type_table() -> Table {
    dim_table("comp_cast_type", "kind", vocab::COMP_CAST_TYPES)
}

/// Returns the 1-based `info_type.id` for a given info name.
pub fn info_type_id(info: &str) -> i64 {
    vocab::INFO_TYPES
        .iter()
        .position(|i| *i == info)
        .map(|p| p as i64 + 1)
        .expect("known info type")
}

/// `title(id, title, kind_id, production_year, episode_of_id, season_nr, imdb_index)`.
pub fn title_table(scale: &Scale, movies: &[MovieProfile]) -> Table {
    let mut rng = stream_rng(scale.seed, "title");
    let mut b = TableBuilder::new(
        "title",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("title", DataType::Str),
            ColumnMeta::new("kind_id", DataType::Int),
            ColumnMeta::new("production_year", DataType::Int),
            ColumnMeta::new("episode_of_id", DataType::Int),
            ColumnMeta::new("season_nr", DataType::Int),
            ColumnMeta::new("imdb_index", DataType::Str),
        ],
    );
    for (i, m) in movies.iter().enumerate() {
        let id = i as i64 + 1;
        let w1 = vocab::TITLE_WORDS[rng.gen_range(0..vocab::TITLE_WORDS.len())];
        let w2 = vocab::TITLE_NOUNS[rng.gen_range(0..vocab::TITLE_NOUNS.len())];
        // A fraction of popular movies are sequels whose titles carry a number.
        let title = if m.popularity > 0.6 && chance(&mut rng, 0.25) {
            format!("The {w1} {w2} {}", rng.gen_range(2..4))
        } else if chance(&mut rng, 0.5) {
            format!("The {w1} {w2}")
        } else {
            format!("{w1} {w2}")
        };
        let is_episode = vocab::MOVIE_KINDS[m.kind].0 == "episode";
        let episode_of =
            if is_episode && i > 0 { Value::Int(rng.gen_range(1..=i as i64)) } else { Value::Null };
        let season = if is_episode { Value::Int(rng.gen_range(1..15)) } else { Value::Null };
        let imdb_index = if chance(&mut rng, 0.04) {
            Value::Str(["I", "II", "III", "IV"][rng.gen_range(0..4)].to_owned())
        } else {
            Value::Null
        };
        b.push_row(vec![
            Value::Int(id),
            Value::Str(title),
            Value::Int(m.kind as i64 + 1),
            m.year.map(Value::Int).unwrap_or(Value::Null),
            episode_of,
            season,
            imdb_index,
        ])
        .expect("title row");
    }
    b.finish()
}

/// `name(id, name, gender, imdb_index, name_pcode_cf)`.
pub fn name_table(scale: &Scale, people: &[PersonProfile]) -> Table {
    let mut rng = stream_rng(scale.seed, "name");
    let mut b = TableBuilder::new(
        "name",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("name", DataType::Str),
            ColumnMeta::new("gender", DataType::Str),
            ColumnMeta::new("imdb_index", DataType::Str),
            ColumnMeta::new("name_pcode_cf", DataType::Str),
        ],
    );
    for (i, p) in people.iter().enumerate() {
        let first = vocab::FIRST_NAMES[rng.gen_range(0..vocab::FIRST_NAMES.len())];
        let last = vocab::LAST_NAMES[rng.gen_range(0..vocab::LAST_NAMES.len())];
        let name = format!("{last}, {first}");
        let pcode = format!("{}{}", &last[..1], last.len() % 10);
        b.push_row(vec![
            Value::Int(i as i64 + 1),
            Value::Str(name),
            p.gender.map(|g| Value::Str(g.to_owned())).unwrap_or(Value::Null),
            if chance(&mut rng, 0.06) {
                Value::Str(["I", "II", "Jr."][rng.gen_range(0..3)].to_owned())
            } else {
                Value::Null
            },
            Value::Str(pcode),
        ])
        .expect("name row");
    }
    b.finish()
}

/// `char_name(id, name)`.
pub fn char_name_table(scale: &Scale) -> Table {
    let mut rng = stream_rng(scale.seed, "char_name");
    let mut b = TableBuilder::new(
        "char_name",
        vec![ColumnMeta::new("id", DataType::Int), ColumnMeta::new("name", DataType::Str)],
    );
    for i in 0..scale.characters() {
        let first = vocab::FIRST_NAMES[rng.gen_range(0..vocab::FIRST_NAMES.len())];
        let role = ["Detective", "Doctor", "Captain", "Agent", "Professor", "Queen", "King", ""]
            [rng.gen_range(0..8)];
        let name = if role.is_empty() { first.to_owned() } else { format!("{role} {first}") };
        b.push_row(vec![Value::Int(i as i64 + 1), Value::Str(name)]).expect("char_name row");
    }
    b.finish()
}

/// `company_name(id, name, country_code)`.
pub fn company_name_table(scale: &Scale, companies: &[CompanyProfile]) -> Table {
    let mut rng = stream_rng(scale.seed, "company_name");
    let mut b = TableBuilder::new(
        "company_name",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("name", DataType::Str),
            ColumnMeta::new("country_code", DataType::Str),
        ],
    );
    let suffix_weights: Vec<u32> = vocab::COMPANY_SUFFIXES.iter().map(|(_, w)| *w).collect();
    for (i, c) in companies.iter().enumerate() {
        let core = vocab::COMPANY_CORES[rng.gen_range(0..vocab::COMPANY_CORES.len())];
        let suffix = vocab::COMPANY_SUFFIXES[weighted_choice(&mut rng, &suffix_weights)].0;
        let name = format!("{core} {suffix} #{}", i + 1);
        // ~4% of companies have an unknown country.
        let country = if chance(&mut rng, 0.04) {
            Value::Null
        } else {
            Value::Str(vocab::REGIONS[c.region].0.to_owned())
        };
        b.push_row(vec![Value::Int(i as i64 + 1), Value::Str(name), country])
            .expect("company_name row");
    }
    b.finish()
}

/// `keyword(id, keyword, phonetic_code)`.
pub fn keyword_table(scale: &Scale) -> Table {
    let mut rng = stream_rng(scale.seed, "keyword");
    let mut b = TableBuilder::new(
        "keyword",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("keyword", DataType::Str),
            ColumnMeta::new("phonetic_code", DataType::Str),
        ],
    );
    let total = scale.keywords().max(vocab::SPECIAL_KEYWORDS.len());
    for i in 0..total {
        let kw = if i < vocab::SPECIAL_KEYWORDS.len() {
            vocab::SPECIAL_KEYWORDS[i].0.to_owned()
        } else {
            let a = vocab::TITLE_WORDS[rng.gen_range(0..vocab::TITLE_WORDS.len())].to_lowercase();
            let b = vocab::TITLE_NOUNS[rng.gen_range(0..vocab::TITLE_NOUNS.len())].to_lowercase();
            format!("{a}-{b}")
        };
        let pcode = format!("{}{}", &kw[..1].to_uppercase(), kw.len() % 10);
        b.push_row(vec![Value::Int(i as i64 + 1), Value::Str(kw), Value::Str(pcode)])
            .expect("keyword row");
    }
    b.finish()
}

/// `aka_name(id, person_id, name)`.
pub fn aka_name_table(scale: &Scale, people: &[PersonProfile]) -> Table {
    let mut rng = stream_rng(scale.seed, "aka_name");
    let mut b = TableBuilder::new(
        "aka_name",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("person_id", DataType::Int),
            ColumnMeta::new("name", DataType::Str),
        ],
    );
    let mut id = 1i64;
    for (i, _p) in people.iter().enumerate() {
        if chance(&mut rng, 0.2) {
            let n = if chance(&mut rng, 0.85) { 1 } else { 2 };
            for _ in 0..n {
                let first = vocab::FIRST_NAMES[rng.gen_range(0..vocab::FIRST_NAMES.len())];
                let last = vocab::LAST_NAMES[rng.gen_range(0..vocab::LAST_NAMES.len())];
                b.push_row(vec![
                    Value::Int(id),
                    Value::Int(i as i64 + 1),
                    Value::Str(format!("{first} {last}")),
                ])
                .expect("aka_name row");
                id += 1;
            }
        }
    }
    b.finish()
}

/// `aka_title(id, movie_id, title, kind_id)`.
pub fn aka_title_table(scale: &Scale, movies: &[MovieProfile]) -> Table {
    let mut rng = stream_rng(scale.seed, "aka_title");
    let mut b = TableBuilder::new(
        "aka_title",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("movie_id", DataType::Int),
            ColumnMeta::new("title", DataType::Str),
            ColumnMeta::new("kind_id", DataType::Int),
        ],
    );
    let mut id = 1i64;
    for (i, m) in movies.iter().enumerate() {
        // International titles are more common for popular, non-US movies.
        let p = 0.08 + 0.15 * m.popularity + if m.region != 0 { 0.1 } else { 0.0 };
        if chance(&mut rng, p) {
            let w1 = vocab::TITLE_WORDS[rng.gen_range(0..vocab::TITLE_WORDS.len())];
            let w2 = vocab::TITLE_NOUNS[rng.gen_range(0..vocab::TITLE_NOUNS.len())];
            b.push_row(vec![
                Value::Int(id),
                Value::Int(i as i64 + 1),
                Value::Str(format!("{w1} {w2} (aka)")),
                Value::Int(m.kind as i64 + 1),
            ])
            .expect("aka_title row");
            id += 1;
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::Profiles;

    #[test]
    fn dimension_tables_have_expected_contents() {
        assert_eq!(kind_type_table().row_count(), vocab::MOVIE_KINDS.len());
        assert_eq!(info_type_table().row_count(), vocab::INFO_TYPES.len());
        assert_eq!(company_type_table().row_count(), 4);
        assert_eq!(role_type_table().row_count(), 12);
        assert_eq!(link_type_table().row_count(), vocab::LINK_TYPES.len());
        assert_eq!(comp_cast_type_table().row_count(), 4);
        let it = info_type_table();
        let rating_id = info_type_id("rating");
        assert_eq!(
            it.value((rating_id - 1) as u32, qob_storage::ColumnId(1)),
            Value::Str("rating".into())
        );
    }

    #[test]
    fn title_table_matches_profiles() {
        let scale = Scale::tiny();
        let profiles = Profiles::generate(&scale);
        let t = title_table(&scale, &profiles.movies);
        assert_eq!(t.row_count(), scale.movies);
        let kind_col = t.column_id("kind_id").unwrap();
        let year_col = t.column_id("production_year").unwrap();
        for (i, m) in profiles.movies.iter().enumerate() {
            assert_eq!(t.value(i as u32, kind_col), Value::Int(m.kind as i64 + 1));
            match m.year {
                Some(y) => assert_eq!(t.value(i as u32, year_col), Value::Int(y)),
                None => assert_eq!(t.value(i as u32, year_col), Value::Null),
            }
        }
    }

    #[test]
    fn company_names_carry_region_country_codes() {
        let scale = Scale::tiny();
        let profiles = Profiles::generate(&scale);
        let t = company_name_table(&scale, &profiles.companies);
        assert_eq!(t.row_count(), scale.companies());
        let cc = t.column_id("country_code").unwrap();
        let mut us = 0;
        for r in t.row_ids() {
            if t.value(r, cc) == Value::Str("[us]".into()) {
                us += 1;
            }
        }
        assert!(us > 0, "some companies must be US companies");
    }

    #[test]
    fn keyword_table_contains_special_keywords() {
        let t = keyword_table(&Scale::tiny());
        let col = t.column_id("keyword").unwrap();
        let all: Vec<String> =
            t.row_ids().filter_map(|r| t.value(r, col).as_str().map(|s| s.to_owned())).collect();
        assert!(all.iter().any(|k| k == "sequel"));
        assert!(all.iter().any(|k| k == "murder"));
        assert!(t.row_count() >= vocab::SPECIAL_KEYWORDS.len());
    }

    #[test]
    fn aka_tables_reference_valid_parents() {
        let scale = Scale::tiny();
        let profiles = Profiles::generate(&scale);
        let an = aka_name_table(&scale, &profiles.people);
        let pid = an.column_id("person_id").unwrap();
        for r in an.row_ids() {
            let v = an.value(r, pid).as_int().unwrap();
            assert!(v >= 1 && v <= profiles.people.len() as i64);
        }
        let at = aka_title_table(&scale, &profiles.movies);
        let mid = at.column_id("movie_id").unwrap();
        for r in at.row_ids() {
            let v = at.value(r, mid).as_int().unwrap();
            assert!(v >= 1 && v <= profiles.movies.len() as i64);
        }
    }

    #[test]
    fn name_table_gender_distribution() {
        let scale = Scale::small();
        let profiles = Profiles::generate(&scale);
        let t = name_table(&scale, &profiles.people);
        let g = t.column_id("gender").unwrap();
        let mut m = 0;
        let mut f = 0;
        for r in t.row_ids() {
            match t.value(r, g) {
                Value::Str(s) if s == "m" => m += 1,
                Value::Str(s) if s == "f" => f += 1,
                _ => {}
            }
        }
        assert!(m > f, "male-coded rows should dominate as in IMDB");
        assert!(f > 0);
    }
}
