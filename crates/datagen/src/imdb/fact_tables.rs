//! Bridge / fact table generators.
//!
//! These tables carry the skewed fan-outs and join-crossing correlations:
//! the number of cast, info and keyword rows per movie follows the movie's
//! latent popularity, companies are drawn from the movie's region, and
//! keyword choice follows the movie's genre.

use rand::Rng;

use qob_storage::{ColumnMeta, DataType, Table, TableBuilder, Value};

use super::core_tables::info_type_id;
use super::vocab;
use super::{MovieProfile, PersonProfile, Profiles};
use crate::rng::{chance, skewed_count, stream_rng, weighted_choice, Zipf};
use crate::scale::Scale;

/// Groups item indices by region so fact generators can sample
/// region-correlated foreign keys.
fn by_region(regions: impl Iterator<Item = usize>) -> Vec<Vec<usize>> {
    let mut groups = vec![Vec::new(); vocab::REGIONS.len()];
    for (i, r) in regions.enumerate() {
        groups[r].push(i);
    }
    groups
}

/// Samples an element of `group` (preferred) or `0..fallback_len` when the
/// group is empty, with zipf skew so a few members dominate.
fn sample_member(rng: &mut impl Rng, group: &[usize], fallback_len: usize, zipf: &Zipf) -> usize {
    if group.is_empty() {
        return zipf.sample(rng).min(fallback_len.saturating_sub(1));
    }
    let rank = zipf.sample(rng) % group.len();
    group[rank]
}

/// `movie_companies(id, movie_id, company_id, company_type_id, note)`.
pub fn movie_companies_table(scale: &Scale, profiles: &Profiles) -> Table {
    let mut rng = stream_rng(scale.seed, "movie_companies");
    let mut b = TableBuilder::new(
        "movie_companies",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("movie_id", DataType::Int),
            ColumnMeta::new("company_id", DataType::Int),
            ColumnMeta::new("company_type_id", DataType::Int),
            ColumnMeta::new("note", DataType::Str),
        ],
    );
    let companies_by_region = by_region(profiles.companies.iter().map(|c| c.region));
    let company_zipf = Zipf::new(profiles.companies.len().max(1), 1.05);
    let note_weights: Vec<u32> = vocab::COMPANY_NOTES.iter().map(|(_, w)| *w).collect();
    let mut id = 1i64;
    for (mi, m) in profiles.movies.iter().enumerate() {
        let count = 1 + skewed_count(&mut rng, scale.avg_companies_per_movie() - 1.0, 12);
        for _ in 0..count {
            // Join-crossing correlation: companies usually share the movie's region.
            let company = if chance(&mut rng, 0.78) {
                sample_member(
                    &mut rng,
                    &companies_by_region[m.region],
                    profiles.companies.len(),
                    &company_zipf,
                )
            } else {
                company_zipf.sample(&mut rng)
            };
            let preferred = profiles.companies[company].preferred_type;
            let ctype = if chance(&mut rng, 0.7) {
                preferred
            } else {
                weighted_choice(&mut rng, &[30, 52, 6, 12])
            };
            let note = if chance(&mut rng, 0.38) {
                Value::Str(
                    vocab::COMPANY_NOTES[weighted_choice(&mut rng, &note_weights)].0.to_owned(),
                )
            } else {
                Value::Null
            };
            b.push_row(vec![
                Value::Int(id),
                Value::Int(mi as i64 + 1),
                Value::Int(company as i64 + 1),
                Value::Int(ctype as i64 + 1),
                note,
            ])
            .expect("movie_companies row");
            id += 1;
        }
    }
    b.finish()
}

/// `movie_info(id, movie_id, info_type_id, info, note)`.
pub fn movie_info_table(scale: &Scale, movies: &[MovieProfile]) -> Table {
    let mut rng = stream_rng(scale.seed, "movie_info");
    let mut b = TableBuilder::new(
        "movie_info",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("movie_id", DataType::Int),
            ColumnMeta::new("info_type_id", DataType::Int),
            ColumnMeta::new("info", DataType::Str),
            ColumnMeta::new("note", DataType::Str),
        ],
    );
    let genres_id = info_type_id("genres");
    let languages_id = info_type_id("languages");
    let countries_id = info_type_id("countries");
    let runtimes_id = info_type_id("runtimes");
    let release_id = info_type_id("release dates");
    let budget_id = info_type_id("budget");
    let genre_weights: Vec<u32> = vocab::GENRES.iter().map(|(_, w)| *w).collect();
    let mut id = 1i64;
    let mut push = |b: &mut TableBuilder, mid: usize, ti: i64, info: String, note: Value| {
        b.push_row(vec![
            Value::Int(id),
            Value::Int(mid as i64 + 1),
            Value::Int(ti),
            Value::Str(info),
            note,
        ])
        .expect("movie_info row");
        id += 1;
    };
    for (mi, m) in movies.iter().enumerate() {
        let region = vocab::REGIONS[m.region];
        // Primary genre always present; a second genre sometimes.
        push(&mut b, mi, genres_id, vocab::GENRES[m.genre].0.to_owned(), Value::Null);
        if chance(&mut rng, 0.45) {
            let second = weighted_choice(&mut rng, &genre_weights);
            if second != m.genre {
                push(&mut b, mi, genres_id, vocab::GENRES[second].0.to_owned(), Value::Null);
            }
        }
        // Language and country follow the region (join-crossing correlation with
        // company_name.country_code).
        push(&mut b, mi, languages_id, region.1.to_owned(), Value::Null);
        push(&mut b, mi, countries_id, region.2.to_owned(), Value::Null);
        // Runtime.
        let runtime = match vocab::MOVIE_KINDS[m.kind].0 {
            "episode" => rng.gen_range(20..65),
            "tv series" | "tv mini series" => rng.gen_range(30..70),
            _ => rng.gen_range(70..185),
        };
        push(&mut b, mi, runtimes_id, runtime.to_string(), Value::Null);
        // Release date present for most movies; more often for recent ones.
        let recent = m.year.map(|y| y >= 1990).unwrap_or(false);
        if chance(&mut rng, if recent { 0.92 } else { 0.72 }) {
            if let Some(year) = m.year {
                let month = rng.gen_range(1..13);
                push(
                    &mut b,
                    mi,
                    release_id,
                    format!("{}:{:02} {}", region.2, month, year),
                    Value::Null,
                );
            }
        }
        // Budget info correlates with popularity and US region.
        let budget_p = 0.08 + 0.35 * m.popularity + if m.region == 0 { 0.15 } else { 0.0 };
        if chance(&mut rng, budget_p) {
            let millions = (1.0 + 200.0 * m.popularity * rng.gen::<f64>()) as i64;
            push(&mut b, mi, budget_id, format!("${millions},000,000"), Value::Null);
        }
    }
    b.finish()
}

/// `movie_info_idx(id, movie_id, info_type_id, info)`.
pub fn movie_info_idx_table(scale: &Scale, movies: &[MovieProfile]) -> Table {
    let mut rng = stream_rng(scale.seed, "movie_info_idx");
    let mut b = TableBuilder::new(
        "movie_info_idx",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("movie_id", DataType::Int),
            ColumnMeta::new("info_type_id", DataType::Int),
            ColumnMeta::new("info", DataType::Str),
        ],
    );
    let rating_id = info_type_id("rating");
    let votes_id = info_type_id("votes");
    let top250_id = info_type_id("top 250 rank");
    let bottom10_id = info_type_id("bottom 10 rank");
    let mut id = 1i64;
    let mut push = |b: &mut TableBuilder, mid: usize, ti: i64, info: String| {
        b.push_row(vec![
            Value::Int(id),
            Value::Int(mid as i64 + 1),
            Value::Int(ti),
            Value::Str(info),
        ])
        .expect("movie_info_idx row");
        id += 1;
    };
    for (mi, m) in movies.iter().enumerate() {
        if !m.has_rating {
            continue;
        }
        push(&mut b, mi, rating_id, format!("{}.{}", m.rating_x10 / 10, m.rating_x10 % 10));
        push(&mut b, mi, votes_id, m.votes.to_string());
        if m.popularity > 0.8 && m.rating_x10 >= 75 && chance(&mut rng, 0.5) {
            push(&mut b, mi, top250_id, rng.gen_range(1..251).to_string());
        }
        if m.rating_x10 <= 25 && chance(&mut rng, 0.25) {
            push(&mut b, mi, bottom10_id, rng.gen_range(1..11).to_string());
        }
    }
    b.finish()
}

/// `movie_keyword(id, movie_id, keyword_id)`.
pub fn movie_keyword_table(scale: &Scale, movies: &[MovieProfile]) -> Table {
    let mut rng = stream_rng(scale.seed, "movie_keyword");
    let mut b = TableBuilder::new(
        "movie_keyword",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("movie_id", DataType::Int),
            ColumnMeta::new("keyword_id", DataType::Int),
        ],
    );
    let total_keywords = scale.keywords().max(vocab::SPECIAL_KEYWORDS.len());
    let keyword_zipf = Zipf::new(total_keywords, 0.9);
    let mut id = 1i64;
    for (mi, m) in movies.iter().enumerate() {
        let count =
            skewed_count(&mut rng, scale.avg_keywords_per_movie() * (0.5 + m.popularity), 40);
        let mut used = std::collections::HashSet::new();
        for _ in 0..count {
            // Genre-affine special keywords are strongly preferred when they match.
            let kw = if chance(&mut rng, 0.45) {
                let (idx, affinity) = {
                    let i = rng.gen_range(0..vocab::SPECIAL_KEYWORDS.len());
                    (i, vocab::SPECIAL_KEYWORDS[i].1)
                };
                let matches_genre = affinity == usize::MAX || affinity == m.genre;
                let is_sequel_like = vocab::SPECIAL_KEYWORDS[idx].0.contains("sequel")
                    || vocab::SPECIAL_KEYWORDS[idx].0 == "second-part";
                let keep = if is_sequel_like {
                    m.popularity > 0.55 && chance(&mut rng, 0.8)
                } else if matches_genre {
                    chance(&mut rng, 0.85)
                } else {
                    chance(&mut rng, 0.1)
                };
                if keep {
                    idx
                } else {
                    keyword_zipf.sample(&mut rng)
                }
            } else {
                keyword_zipf.sample(&mut rng)
            };
            if used.insert(kw) {
                b.push_row(vec![
                    Value::Int(id),
                    Value::Int(mi as i64 + 1),
                    Value::Int(kw as i64 + 1),
                ])
                .expect("movie_keyword row");
                id += 1;
            }
        }
    }
    b.finish()
}

/// `cast_info(id, person_id, movie_id, person_role_id, note, nr_order, role_id)`.
pub fn cast_info_table(scale: &Scale, profiles: &Profiles) -> Table {
    let mut rng = stream_rng(scale.seed, "cast_info");
    let mut b = TableBuilder::new(
        "cast_info",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("person_id", DataType::Int),
            ColumnMeta::new("movie_id", DataType::Int),
            ColumnMeta::new("person_role_id", DataType::Int),
            ColumnMeta::new("note", DataType::Str),
            ColumnMeta::new("nr_order", DataType::Int),
            ColumnMeta::new("role_id", DataType::Int),
        ],
    );
    let people_by_region = by_region(profiles.people.iter().map(|p| p.region));
    let person_zipf = Zipf::new(profiles.people.len().max(1), 0.85);
    let char_count = scale.characters().max(1);
    let note_weights: Vec<u32> = vocab::CAST_NOTES.iter().map(|(_, w)| *w).collect();
    let actor_role = vocab::ROLE_TYPES.iter().position(|r| *r == "actor").unwrap() as i64 + 1;
    let actress_role = vocab::ROLE_TYPES.iter().position(|r| *r == "actress").unwrap() as i64 + 1;
    let director_role = vocab::ROLE_TYPES.iter().position(|r| *r == "director").unwrap() as i64 + 1;
    let writer_role = vocab::ROLE_TYPES.iter().position(|r| *r == "writer").unwrap() as i64 + 1;
    let producer_role = vocab::ROLE_TYPES.iter().position(|r| *r == "producer").unwrap() as i64 + 1;
    let mut id = 1i64;
    for (mi, m) in profiles.movies.iter().enumerate() {
        // Fan-out skew: popular movies have much larger casts.
        let mean = scale.avg_cast_per_movie() * (0.35 + 1.9 * m.popularity);
        let count = (1 + skewed_count(&mut rng, mean, 90)).min(90);
        for pos in 0..count {
            let person = if chance(&mut rng, 0.7) {
                sample_member(
                    &mut rng,
                    &people_by_region[m.region],
                    profiles.people.len(),
                    &person_zipf,
                )
            } else {
                person_zipf.sample(&mut rng)
            };
            // First few positions are crew (director/writer/producer), the rest cast.
            let (role, is_acting) = if pos == 0 && chance(&mut rng, 0.9) {
                (director_role, false)
            } else if pos == 1 && chance(&mut rng, 0.7) {
                (writer_role, false)
            } else if pos == 2 && chance(&mut rng, 0.6) {
                (producer_role, false)
            } else if chance(&mut rng, 0.12) {
                // Miscellaneous crew.
                (rng.gen_range(5..=12) as i64, false)
            } else {
                let gender = profiles.people[person].gender;
                if gender == Some("f") {
                    (actress_role, true)
                } else {
                    (actor_role, true)
                }
            };
            let person_role = if is_acting && chance(&mut rng, 0.72) {
                Value::Int(rng.gen_range(1..=char_count as i64))
            } else {
                Value::Null
            };
            let note = if chance(&mut rng, 0.22) {
                Value::Str(vocab::CAST_NOTES[weighted_choice(&mut rng, &note_weights)].0.to_owned())
            } else {
                Value::Null
            };
            let nr_order = if is_acting { Value::Int(pos as i64 + 1) } else { Value::Null };
            b.push_row(vec![
                Value::Int(id),
                Value::Int(person as i64 + 1),
                Value::Int(mi as i64 + 1),
                person_role,
                note,
                nr_order,
                Value::Int(role),
            ])
            .expect("cast_info row");
            id += 1;
        }
    }
    b.finish()
}

/// `person_info(id, person_id, info_type_id, info, note)`.
pub fn person_info_table(scale: &Scale, people: &[PersonProfile]) -> Table {
    let mut rng = stream_rng(scale.seed, "person_info");
    let mut b = TableBuilder::new(
        "person_info",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("person_id", DataType::Int),
            ColumnMeta::new("info_type_id", DataType::Int),
            ColumnMeta::new("info", DataType::Str),
            ColumnMeta::new("note", DataType::Str),
        ],
    );
    let birth_id = info_type_id("birth date");
    let height_id = info_type_id("height");
    let bio_id = info_type_id("biography");
    let spouse_id = info_type_id("spouse");
    let mut id = 1i64;
    let mut push = |b: &mut TableBuilder, pid: usize, ti: i64, info: String| {
        b.push_row(vec![
            Value::Int(id),
            Value::Int(pid as i64 + 1),
            Value::Int(ti),
            Value::Str(info),
            Value::Null,
        ])
        .expect("person_info row");
        id += 1;
    };
    for (pi, p) in people.iter().enumerate() {
        if chance(&mut rng, 0.65) {
            let year = rng.gen_range(1920..2000);
            push(&mut b, pi, birth_id, format!("{} {}", rng.gen_range(1..29), year));
        }
        if chance(&mut rng, 0.3) {
            let cm = if p.gender == Some("f") {
                rng.gen_range(150..185)
            } else {
                rng.gen_range(160..200)
            };
            push(&mut b, pi, height_id, format!("{cm} cm"));
        }
        if chance(&mut rng, 0.25) {
            push(&mut b, pi, bio_id, format!("Biography of person {}", pi + 1));
        }
        if chance(&mut rng, 0.15) {
            push(
                &mut b,
                pi,
                spouse_id,
                format!("Spouse {}", rng.gen_range(1..people.len().max(2))),
            );
        }
    }
    b.finish()
}

/// `complete_cast(id, movie_id, subject_id, status_id)`.
pub fn complete_cast_table(scale: &Scale, movies: &[MovieProfile]) -> Table {
    let mut rng = stream_rng(scale.seed, "complete_cast");
    let mut b = TableBuilder::new(
        "complete_cast",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("movie_id", DataType::Int),
            ColumnMeta::new("subject_id", DataType::Int),
            ColumnMeta::new("status_id", DataType::Int),
        ],
    );
    let cast_subject = 1i64; // "cast"
    let crew_subject = 2i64; // "crew"
    let complete_status = 3i64; // "complete"
    let verified_status = 4i64; // "complete+verified"
    let mut id = 1i64;
    for (mi, m) in movies.iter().enumerate() {
        // Completeness metadata is more common for popular movies.
        if chance(&mut rng, 0.18 + 0.3 * m.popularity) {
            let subject = if chance(&mut rng, 0.7) { cast_subject } else { crew_subject };
            let status = if chance(&mut rng, 0.6) { complete_status } else { verified_status };
            b.push_row(vec![
                Value::Int(id),
                Value::Int(mi as i64 + 1),
                Value::Int(subject),
                Value::Int(status),
            ])
            .expect("complete_cast row");
            id += 1;
        }
    }
    b.finish()
}

/// `movie_link(id, movie_id, linked_movie_id, link_type_id)`.
pub fn movie_link_table(scale: &Scale, movies: &[MovieProfile]) -> Table {
    let mut rng = stream_rng(scale.seed, "movie_link");
    let mut b = TableBuilder::new(
        "movie_link",
        vec![
            ColumnMeta::new("id", DataType::Int),
            ColumnMeta::new("movie_id", DataType::Int),
            ColumnMeta::new("linked_movie_id", DataType::Int),
            ColumnMeta::new("link_type_id", DataType::Int),
        ],
    );
    let n = movies.len();
    if n < 2 {
        return b.finish();
    }
    // Follow-style links dominate, matching the real link_type distribution.
    let link_weights: Vec<u32> = vocab::LINK_TYPES
        .iter()
        .map(|l| match *l {
            "follows" | "followed by" => 22,
            "references" | "referenced in" => 12,
            "remake of" | "remade as" => 6,
            _ => 2,
        })
        .collect();
    let mut id = 1i64;
    for (mi, m) in movies.iter().enumerate() {
        if chance(&mut rng, 0.05 + 0.22 * m.popularity) {
            let links = if chance(&mut rng, 0.75) { 1 } else { 2 };
            for _ in 0..links {
                let mut other = rng.gen_range(0..n);
                if other == mi {
                    other = (other + 1) % n;
                }
                let lt = weighted_choice(&mut rng, &link_weights);
                b.push_row(vec![
                    Value::Int(id),
                    Value::Int(mi as i64 + 1),
                    Value::Int(other as i64 + 1),
                    Value::Int(lt as i64 + 1),
                ])
                .expect("movie_link row");
                id += 1;
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qob_storage::ColumnId;

    fn profiles() -> (Scale, Profiles) {
        let scale = Scale::tiny();
        let p = Profiles::generate(&scale);
        (scale, p)
    }

    fn fk_values(t: &Table, col: &str) -> Vec<i64> {
        let c = t.column_id(col).unwrap();
        t.row_ids().filter_map(|r| t.value(r, c).as_int()).collect()
    }

    #[test]
    fn movie_companies_reference_valid_fks_and_have_fanout() {
        let (scale, p) = profiles();
        let t = movie_companies_table(&scale, &p);
        assert!(t.row_count() >= scale.movies, "at least one company row per movie");
        for v in fk_values(&t, "movie_id") {
            assert!(v >= 1 && v <= scale.movies as i64);
        }
        for v in fk_values(&t, "company_id") {
            assert!(v >= 1 && v <= p.companies.len() as i64);
        }
        for v in fk_values(&t, "company_type_id") {
            assert!((1..=4).contains(&v));
        }
    }

    #[test]
    fn movie_info_contains_expected_info_types() {
        let (scale, p) = profiles();
        let t = movie_info_table(&scale, &p.movies);
        let ti = t.column_id("info_type_id").unwrap();
        let types: std::collections::HashSet<i64> =
            t.row_ids().filter_map(|r| t.value(r, ti).as_int()).collect();
        assert!(types.contains(&info_type_id("genres")));
        assert!(types.contains(&info_type_id("languages")));
        assert!(types.contains(&info_type_id("countries")));
        assert!(types.contains(&info_type_id("runtimes")));
        // Every movie gets at least genre+language+country+runtime rows.
        assert!(t.row_count() >= scale.movies * 4);
    }

    #[test]
    fn movie_info_idx_only_for_rated_movies() {
        let (scale, p) = profiles();
        let t = movie_info_idx_table(&scale, &p.movies);
        let mid = t.column_id("movie_id").unwrap();
        let rated: std::collections::HashSet<i64> = p
            .movies
            .iter()
            .enumerate()
            .filter(|(_, m)| m.has_rating)
            .map(|(i, _)| i as i64 + 1)
            .collect();
        for r in t.row_ids() {
            let m = t.value(r, mid).as_int().unwrap();
            assert!(rated.contains(&m), "movie {m} has info_idx rows but no rating flag");
        }
        assert!(t.row_count() >= rated.len() * 2, "rating + votes rows for each rated movie");
    }

    #[test]
    fn cast_info_has_popularity_skewed_fanout() {
        let (scale, p) = profiles();
        let t = cast_info_table(&scale, &p);
        let mid = t.column_id("movie_id").unwrap();
        let mut per_movie = vec![0usize; scale.movies];
        for r in t.row_ids() {
            per_movie[(t.value(r, mid).as_int().unwrap() - 1) as usize] += 1;
        }
        // Average cast of popular movies exceeds that of unpopular movies.
        let (mut pop_sum, mut pop_n, mut unpop_sum, mut unpop_n) = (0usize, 0usize, 0usize, 0usize);
        for (i, m) in p.movies.iter().enumerate() {
            if m.popularity > 0.5 {
                pop_sum += per_movie[i];
                pop_n += 1;
            } else {
                unpop_sum += per_movie[i];
                unpop_n += 1;
            }
        }
        let pop_avg = pop_sum as f64 / pop_n.max(1) as f64;
        let unpop_avg = unpop_sum as f64 / unpop_n.max(1) as f64;
        assert!(
            pop_avg > unpop_avg,
            "popular movies should have larger casts ({pop_avg:.1} vs {unpop_avg:.1})"
        );
        // role ids are valid.
        for v in fk_values(&t, "role_id") {
            assert!(v >= 1 && v <= vocab::ROLE_TYPES.len() as i64);
        }
    }

    #[test]
    fn actress_roles_go_to_female_coded_people() {
        let (scale, p) = profiles();
        let t = cast_info_table(&scale, &p);
        let pid = t.column_id("person_id").unwrap();
        let rid = t.column_id("role_id").unwrap();
        let actress = vocab::ROLE_TYPES.iter().position(|r| *r == "actress").unwrap() as i64 + 1;
        for r in t.row_ids() {
            if t.value(r, rid).as_int() == Some(actress) {
                let person = (t.value(r, pid).as_int().unwrap() - 1) as usize;
                assert_eq!(p.people[person].gender, Some("f"));
            }
        }
    }

    #[test]
    fn keyword_bridge_is_deduplicated_per_movie() {
        let (scale, p) = profiles();
        let t = movie_keyword_table(&scale, &p.movies);
        let mid = t.column_id("movie_id").unwrap();
        let kid = t.column_id("keyword_id").unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in t.row_ids() {
            let pair = (t.value(r, mid).as_int().unwrap(), t.value(r, kid).as_int().unwrap());
            assert!(seen.insert(pair), "duplicate (movie, keyword) pair {pair:?}");
        }
    }

    #[test]
    fn small_bridge_tables_reference_valid_movies() {
        let (scale, p) = profiles();
        for t in [complete_cast_table(&scale, &p.movies), movie_link_table(&scale, &p.movies)] {
            for v in fk_values(&t, "movie_id") {
                assert!(v >= 1 && v <= scale.movies as i64, "table {}", t.name());
            }
        }
        let ml = movie_link_table(&scale, &p.movies);
        let a = ml.column_id("movie_id").unwrap();
        let b_ = ml.column_id("linked_movie_id").unwrap();
        for r in ml.row_ids() {
            assert_ne!(ml.value(r, a), ml.value(r, b_), "self links are not generated");
        }
    }

    #[test]
    fn person_info_rows_reference_valid_people() {
        let (scale, p) = profiles();
        let t = person_info_table(&scale, &p.people);
        assert!(t.row_count() > 0);
        for v in fk_values(&t, "person_id") {
            assert!(v >= 1 && v <= p.people.len() as i64);
        }
        let _ = t.value(0, ColumnId(3));
    }

    #[test]
    fn generators_are_deterministic() {
        let (scale, p) = profiles();
        let a = cast_info_table(&scale, &p);
        let b = cast_info_table(&scale, &p);
        assert_eq!(a.row_count(), b.row_count());
        let col = a.column_id("person_id").unwrap();
        for r in a.row_ids().take(50) {
            assert_eq!(a.value(r, col), b.value(r, col));
        }
    }
}
