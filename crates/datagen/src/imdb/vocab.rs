//! String vocabularies for the synthetic IMDB database.
//!
//! The constants below are chosen so that the JOB-style predicates of the
//! workload crate (`country_code = '[us]'`, `info = 'rating'`,
//! `keyword LIKE '%sequel%'`, ...) are meaningful on the generated data.

/// `kind_type.kind` values (weights sum to 100).
pub const MOVIE_KINDS: &[(&str, u32)] = &[
    ("movie", 42),
    ("tv series", 14),
    ("tv movie", 10),
    ("video movie", 12),
    ("tv mini series", 4),
    ("video game", 3),
    ("episode", 15),
];

/// `company_type.kind` values.
pub const COMPANY_TYPES: &[&str] = &[
    "distributors",
    "production companies",
    "special effects companies",
    "miscellaneous companies",
];

/// `role_type.role` values.
pub const ROLE_TYPES: &[&str] = &[
    "actor",
    "actress",
    "producer",
    "writer",
    "cinematographer",
    "composer",
    "costume designer",
    "director",
    "editor",
    "guest",
    "miscellaneous crew",
    "production designer",
];

/// `link_type.link` values.
pub const LINK_TYPES: &[&str] = &[
    "follows",
    "followed by",
    "remake of",
    "remade as",
    "references",
    "referenced in",
    "spoofs",
    "spoofed in",
    "features",
    "featured in",
    "spin off from",
    "spin off",
    "version of",
    "similar to",
    "edited into",
    "edited from",
    "alternate language version of",
    "unknown link",
];

/// `comp_cast_type.kind` values.
pub const COMP_CAST_TYPES: &[&str] = &["cast", "crew", "complete", "complete+verified"];

/// The `info_type.info` values used for `movie_info` / `movie_info_idx` /
/// `person_info`.  The first block matches the types JOB queries filter on.
pub const INFO_TYPES: &[&str] = &[
    "rating",
    "votes",
    "release dates",
    "genres",
    "languages",
    "countries",
    "budget",
    "runtimes",
    "top 250 rank",
    "bottom 10 rank",
    "gross",
    "opening weekend",
    "production dates",
    "color info",
    "sound mix",
    "certificates",
    "tech info",
    "taglines",
    "plot",
    "trivia",
    "goofs",
    "quotes",
    "soundtrack",
    "crazy credits",
    "alternate versions",
    "birth date",
    "death date",
    "birth notes",
    "height",
    "biography",
    "spouse",
    "where now",
];

/// Region profiles: `(country_code, language, country, weight)`.
///
/// The weight drives both how many companies belong to the region and how
/// many movies are (predominantly) produced there — the join-crossing
/// correlation between `company_name.country_code` and
/// `movie_info.info` (language/country) that the paper highlights.
pub const REGIONS: &[(&str, &str, &str, u32)] = &[
    ("[us]", "English", "USA", 35),
    ("[gb]", "English", "UK", 11),
    ("[de]", "German", "Germany", 9),
    ("[fr]", "French", "France", 8),
    ("[it]", "Italian", "Italy", 5),
    ("[jp]", "Japanese", "Japan", 6),
    ("[in]", "Hindi", "India", 7),
    ("[ca]", "English", "Canada", 5),
    ("[se]", "Swedish", "Sweden", 3),
    ("[ru]", "Russian", "Russia", 4),
    ("[es]", "Spanish", "Spain", 4),
    ("[au]", "English", "Australia", 3),
];

/// Genres with zipf-ish weights; correlated with keywords and ratings.
pub const GENRES: &[(&str, u32)] = &[
    ("Drama", 22),
    ("Comedy", 16),
    ("Documentary", 11),
    ("Action", 8),
    ("Thriller", 7),
    ("Romance", 6),
    ("Horror", 6),
    ("Crime", 5),
    ("Adventure", 4),
    ("Sci-Fi", 3),
    ("Fantasy", 3),
    ("Mystery", 3),
    ("Family", 2),
    ("Animation", 2),
    ("Biography", 1),
    ("Western", 1),
];

/// Keywords that JOB-style predicates search for, plus their genre affinity
/// (index into [`GENRES`], or `usize::MAX` for "any genre").
pub const SPECIAL_KEYWORDS: &[(&str, usize)] = &[
    ("sequel", usize::MAX),
    ("character-name-in-title", usize::MAX),
    ("based-on-novel", 0),
    ("murder", 7),
    ("blood", 6),
    ("violence", 3),
    ("gore", 6),
    ("love", 5),
    ("friendship", 1),
    ("revenge", 4),
    ("female-nudity", 0),
    ("superhero", 3),
    ("marvel-comics", 3),
    ("based-on-comic", 3),
    ("martial-arts", 3),
    ("second-part", usize::MAX),
    ("hero", 3),
    ("magnet", 9),
    ("fight", 3),
    ("dark-hero", 3),
];

/// Company name suffixes (some of which the workload matches with LIKE).
pub const COMPANY_SUFFIXES: &[(&str, u32)] = &[
    ("Film Works", 12),
    ("Pictures", 20),
    ("Productions", 18),
    ("Entertainment", 14),
    ("Studios", 12),
    ("Films", 14),
    ("Media Group", 6),
    ("Broadcasting", 4),
];

/// Company name cores.
pub const COMPANY_CORES: &[&str] = &[
    "Warner",
    "Universal",
    "Paramount",
    "Columbia",
    "Metro",
    "Castle",
    "Summit",
    "Gaumont",
    "Nordisk",
    "Toho",
    "Yash",
    "Atlas",
    "Polygram",
    "Lionsgate",
    "Vertigo",
    "Zentropa",
    "Canal",
    "Babelsberg",
    "Cinecitta",
    "Mosfilm",
    "Svensk",
    "Village",
    "Beacon",
    "Orion",
];

/// `movie_companies.note` values (non-null cases).
pub const COMPANY_NOTES: &[(&str, u32)] = &[
    ("(co-production)", 22),
    ("(presents)", 28),
    ("(in association with)", 20),
    ("(as Metro-Goldwyn-Mayer Pictures)", 8),
    ("(production)", 12),
    ("(USA)", 10),
];

/// `cast_info.note` values (non-null cases).
pub const CAST_NOTES: &[(&str, u32)] = &[
    ("(voice)", 22),
    ("(uncredited)", 20),
    ("(archive footage)", 12),
    ("(voice: English version)", 8),
    ("(as himself)", 14),
    ("(producer)", 12),
    ("(executive producer)", 12),
];

/// First names used for people; several contain substrings JOB-style LIKE
/// predicates look for (`%Tim%`, `%An%`, ...).
pub const FIRST_NAMES: &[&str] = &[
    "Tim",
    "Timothy",
    "Anna",
    "Anders",
    "Angela",
    "Bob",
    "Robert",
    "John",
    "Johanna",
    "Maria",
    "Marion",
    "Pierre",
    "Hans",
    "Yuki",
    "Raj",
    "Ingrid",
    "Olga",
    "Carlos",
    "Luis",
    "Emma",
    "Sven",
    "Kate",
    "Katherine",
    "Michael",
    "Michelle",
    "David",
    "Sophie",
    "Akira",
    "Priya",
    "Walter",
    "Greta",
    "Nina",
    "Oscar",
    "Paula",
    "Quentin",
    "Rosa",
    "Stefan",
    "Tom",
    "Ursula",
    "Viktor",
    "Wanda",
    "Xavier",
    "Yann",
    "Zelda",
];

/// Last names used for people.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Mueller",
    "Schmidt",
    "Dubois",
    "Rossi",
    "Tanaka",
    "Suzuki",
    "Kumar",
    "Singh",
    "Andersson",
    "Ivanov",
    "Garcia",
    "Fernandez",
    "Brown",
    "Wilson",
    "Taylor",
    "Lefebvre",
    "Moreau",
    "Weber",
    "Fischer",
    "Sato",
    "Yamamoto",
    "Patel",
    "Nilsson",
    "Petrov",
    "Lopez",
    "Martinez",
    "Clark",
    "Lewis",
    "Walker",
    "Hall",
    "Young",
    "King",
    "Wright",
];

/// Title words used to assemble movie titles.
pub const TITLE_WORDS: &[&str] = &[
    "Shadow",
    "Night",
    "Return",
    "Last",
    "Dark",
    "Golden",
    "Lost",
    "Silent",
    "Broken",
    "Eternal",
    "Hidden",
    "Crimson",
    "Winter",
    "Summer",
    "Iron",
    "Glass",
    "Paper",
    "Stone",
    "River",
    "Storm",
    "Dream",
    "Empire",
    "Secret",
    "Forgotten",
    "Burning",
    "Frozen",
    "Distant",
    "Savage",
    "Gentle",
    "Electric",
];

/// Second title words.
pub const TITLE_NOUNS: &[&str] = &[
    "City", "Heart", "Road", "Garden", "House", "Kingdom", "Island", "Forest", "Ocean", "Mountain",
    "Letter", "Promise", "Journey", "Affair", "Crossing", "Harvest", "Symphony", "Mirror",
    "Horizon", "Paradox",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_tables_have_positive_weights() {
        assert!(MOVIE_KINDS.iter().all(|(_, w)| *w > 0));
        assert!(REGIONS.iter().all(|(_, _, _, w)| *w > 0));
        assert!(GENRES.iter().all(|(_, w)| *w > 0));
        assert!(COMPANY_NOTES.iter().all(|(_, w)| *w > 0));
        assert!(CAST_NOTES.iter().all(|(_, w)| *w > 0));
        assert!(COMPANY_SUFFIXES.iter().all(|(_, w)| *w > 0));
    }

    #[test]
    fn job_predicate_constants_are_present() {
        assert!(INFO_TYPES.contains(&"rating"));
        assert!(INFO_TYPES.contains(&"release dates"));
        assert!(INFO_TYPES.contains(&"genres"));
        assert!(COMPANY_TYPES.contains(&"production companies"));
        assert!(MOVIE_KINDS.iter().any(|(k, _)| *k == "movie"));
        assert!(REGIONS.iter().any(|(c, _, _, _)| *c == "[us]"));
        assert!(SPECIAL_KEYWORDS.iter().any(|(k, _)| *k == "sequel"));
        assert!(ROLE_TYPES.contains(&"actress"));
        assert!(LINK_TYPES.contains(&"follows"));
        assert!(COMP_CAST_TYPES.contains(&"complete+verified"));
    }

    #[test]
    fn keyword_genre_affinities_are_in_range() {
        for (_, g) in SPECIAL_KEYWORDS {
            assert!(*g == usize::MAX || *g < GENRES.len());
        }
    }

    #[test]
    fn name_pools_are_non_trivial() {
        assert!(FIRST_NAMES.len() >= 20);
        assert!(LAST_NAMES.len() >= 20);
        assert!(TITLE_WORDS.len() >= 20);
        assert!(TITLE_NOUNS.len() >= 10);
        assert!(COMPANY_CORES.len() >= 20);
        assert!(INFO_TYPES.len() >= 30);
    }
}
