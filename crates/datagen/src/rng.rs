//! Deterministic random sampling helpers used by the data generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG for a named generation stream.
///
/// Every table/column combination uses its own stream so that changing the
/// generation order of one table does not perturb the others.
pub fn stream_rng(seed: u64, stream: &str) -> StdRng {
    // Mix the stream name into the seed with FNV-1a so streams are independent.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in stream.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

/// A zipf-like sampler over `0..n` with exponent `s`.
///
/// Rank 0 is the most popular item.  Sampling uses the inverse-CDF over the
/// precomputed normalised weights, which is exact and O(log n) per sample.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` items with skew exponent `s` (0 = uniform,
    /// 1 = classic zipf, larger = more skewed).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over zero items");
        let mut weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating point drift.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there are no items (never the case for a constructed sampler).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Samples an index according to integer weights.
///
/// # Panics
/// Panics if `weights` is empty or sums to zero.
pub fn weighted_choice(rng: &mut impl Rng, weights: &[u32]) -> usize {
    let total: u64 = weights.iter().map(|w| *w as u64).sum();
    assert!(total > 0, "weighted_choice needs a positive total weight");
    let mut x = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        let w = w as u64;
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Returns true with probability `p`.
pub fn chance(rng: &mut impl Rng, p: f64) -> bool {
    rng.gen::<f64>() < p
}

/// Samples a count with the given mean using a skewed (geometric-ish)
/// distribution: most items get a small count, a few get a large one.
pub fn skewed_count(rng: &mut impl Rng, mean: f64, max: usize) -> usize {
    if mean <= 0.0 || max == 0 {
        return 0;
    }
    // Mixture: 80% geometric around mean*0.6, 20% heavy tail around mean*2.6.
    let m = if chance(rng, 0.8) { mean * 0.6 } else { mean * 2.6 };
    let p = 1.0 / (1.0 + m);
    let mut count = 0usize;
    while count < max && !chance(rng, p) {
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_rng_is_deterministic_and_stream_dependent() {
        let mut a1 = stream_rng(1, "title");
        let mut a2 = stream_rng(1, "title");
        let mut b = stream_rng(1, "cast_info");
        let xs1: Vec<u32> = (0..5).map(|_| a1.gen()).collect();
        let xs2: Vec<u32> = (0..5).map(|_| a2.gen()).collect();
        let ys: Vec<u32> = (0..5).map(|_| b.gen()).collect();
        assert_eq!(xs1, xs2);
        assert_ne!(xs1, ys);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(100, 1.0);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
        let mut rng = stream_rng(0, "zipf-test");
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 more popular than rank 10");
        assert!(counts[0] > counts[50] * 3, "strong skew toward the head");
        assert!(counts.iter().sum::<usize>() == 20_000);
    }

    #[test]
    fn zipf_with_zero_skew_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = stream_rng(0, "uniform-test");
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 700 && c < 1300, "uniform-ish bucket, got {c}");
        }
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = stream_rng(0, "wc");
        let weights = [80, 15, 5];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_choice(&mut rng, &weights)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert!(counts[0] > 7_000);
    }

    #[test]
    fn skewed_count_mean_is_close_to_target() {
        let mut rng = stream_rng(0, "sc");
        let n = 20_000;
        let total: usize = (0..n).map(|_| skewed_count(&mut rng, 5.0, 1000)).sum();
        let mean = total as f64 / n as f64;
        assert!(mean > 3.0 && mean < 7.0, "mean {mean} should be near 5");
        assert_eq!(skewed_count(&mut rng, 0.0, 100), 0);
        assert_eq!(skewed_count(&mut rng, 5.0, 0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = stream_rng(0, "chance");
        assert!(!chance(&mut rng, 0.0));
        assert!(chance(&mut rng, 1.0));
    }

    #[test]
    #[should_panic(expected = "zipf over zero items")]
    fn zipf_zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
