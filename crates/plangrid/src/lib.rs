//! # qob-plangrid
//!
//! Plan-space ground truth: *how good is our optimizer, really?*
//!
//! The paper's method is comparing an optimizer's choices against ground
//! truth; the q-error machinery (`qob-cardest`) measures how wrong the
//! *estimates* are, but never asks the paper's actual question of this
//! repository's own optimizer — where does the plan we picked **rank** in
//! the space of plans we could have picked?  This crate answers it with
//! OptMark-style effectiveness metrics (Li et al.) over the grid of
//! estimator × cost-model × enumerator combinations the workspace already
//! exposes (the Datta et al. present/absent-estimates methodology):
//!
//! * [`generator`] — a seeded, deterministic random query generator over
//!   any bound schema: walk the FK graph to pick a connected join subgraph,
//!   attach filter predicates drawn from actual column domains, and emit a
//!   [`qob_plan::QuerySpec`] that is rendered to SQL and round-tripped
//!   through `qob-sql` as its own self-test.  This breaks the evaluation
//!   out of JOB's fixed 113 queries.
//! * [`grid`] — the grid runner: under *true* cardinalities it explores the
//!   whole bushy plan space ([`qob_enumerate::space`]) to find the true
//!   optimum, then ranks the plan each estimator × cost-model × enumerator
//!   combination actually picks, reporting the optimal-plan ratio, the
//!   plan-rank percentile, and subplan optimality.
//!
//! The `qob plangrid` CLI subcommand drives both and emits
//! `BENCH_planspace.json`; see `docs/PLANSPACE.md` for the metric
//! definitions and the output schema.

#![warn(missing_docs)]

pub mod generator;
pub mod grid;

pub use generator::{generate, generate_many, GeneratedQuery, GeneratorError, GeneratorOptions};
pub use grid::{
    run_grid, CellMetrics, GridError, GridOptions, GridReport, QueryCell, SpaceSummary,
};
pub use qob_enumerate::space::PlanSpaceOptions;
