//! The effectiveness grid: estimator × cost-model × enumerator, each cell
//! ranked against the true plan-space optimum.
//!
//! For every query the runner first explores the plan space **under true
//! cardinalities** (runtime truth from [`BenchmarkContext`] overlaid exactly
//! via [`FeedbackEstimator`]) — exhaustively for small queries, by unbiased
//! uniform sampling beyond [`PlanSpaceOptions`] limits — to find the true
//! optimum and the cost population.  It then lets every estimator ×
//! cost-model × enumerator combination pick its plan, re-costs that plan
//! under the *truth*, and reports per cell:
//!
//! * **optimal-plan ratio** — the fraction of queries where the chosen plan
//!   costs no more than the true optimum (OptMark's effectiveness metric),
//! * **cost ratio** — chosen-plan true cost over optimum cost (geometric
//!   mean across queries),
//! * **plan-rank percentile** — the fraction of the explored space that is
//!   strictly cheaper than the chosen plan (0 = optimal),
//! * **subplan optimality** — the fraction of the chosen plan's join
//!   subtrees that are themselves optimal for their relation set.
//!
//! Under the `true` estimator with the `dpccp` enumerator the chosen plan
//! *is* the space optimum by construction, so the optimal-plan ratio must
//! be exactly 1.0 — the CI smoke asserts this invariant on every push.

use std::fmt;

use qob_cardest::{nearest_rank_percentile, CardinalityEstimator, FeedbackEstimator};
use qob_core::{geometric_mean, BenchmarkContext, EstimatorKind};
use qob_cost::{CostModel, PostgresCostModel, SimpleCostModel};
use qob_enumerate::space::{explore, PlanSpaceOptions};
use qob_enumerate::{
    dpccp, goo, quickpick, restricted, EnumerationError, Planner, PlannerConfig, ShapeRestriction,
};
use qob_plan::{PhysicalPlan, QuerySpec, RelSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Relative tolerance for "costs the same as the optimum": absorbs the
/// floating-point noise between DP accumulation order and tree-walk
/// re-costing of structurally identical plans.
const COST_EPS: f64 = 1e-9;

/// The enumerators the grid exercises, in reporting order.
pub const ENUMERATORS: [&str; 4] = ["dpccp", "left-deep", "goo", "quickpick"];

/// The cost models the grid exercises, in reporting order.
pub const COST_MODELS: [&str; 3] = ["cmm", "postgres", "postgres-mm"];

/// Knobs for [`run_grid`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridOptions {
    /// Master seed: drives plan-space sampling and Quickpick. Two runs with
    /// the same seed, queries and context produce identical reports.
    pub seed: u64,
    /// When the plan space is exhausted vs. sampled.
    pub space: PlanSpaceOptions,
    /// Random plans per query for the `quickpick` enumerator.
    pub quickpick_runs: usize,
}

impl Default for GridOptions {
    fn default() -> Self {
        GridOptions { seed: 0, space: PlanSpaceOptions::default(), quickpick_runs: 100 }
    }
}

/// One query × estimator × cost-model × enumerator measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCell {
    /// Query name.
    pub query: String,
    /// Estimator wire name (`true`, `postgres`, `hyper`, ...).
    pub estimator: &'static str,
    /// Cost model wire name (`cmm`, `postgres`, `postgres-mm`).
    pub cost_model: &'static str,
    /// Enumerator wire name (`dpccp`, `left-deep`, `goo`, `quickpick`).
    pub enumerator: &'static str,
    /// Chosen-plan true cost over the space optimum's cost (≥ 1 up to
    /// floating-point noise).
    pub cost_ratio: f64,
    /// Fraction of the explored space strictly cheaper than the chosen plan.
    pub rank: f64,
    /// Fraction of the chosen plan's join subtrees that are optimal for
    /// their relation set.
    pub subplan_optimality: f64,
    /// True when the chosen plan costs no more than the optimum.
    pub optimal: bool,
}

/// Aggregate over all queries for one estimator × cost-model × enumerator.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// Estimator wire name.
    pub estimator: &'static str,
    /// Cost model wire name.
    pub cost_model: &'static str,
    /// Enumerator wire name.
    pub enumerator: &'static str,
    /// Queries measured.
    pub queries: usize,
    /// Queries where the chosen plan matched the optimum cost.
    pub optimal_queries: usize,
    /// `optimal_queries / queries` — OptMark's optimal-plan ratio.
    pub optimal_plan_ratio: f64,
    /// Geometric mean of the per-query cost ratios.
    pub geo_mean_cost_ratio: f64,
    /// Median (nearest-rank) plan-rank percentile.
    pub median_rank: f64,
    /// Arithmetic mean of per-query subplan optimality.
    pub mean_subplan_optimality: f64,
}

/// How one query's plan space was explored under one cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceSummary {
    /// Query name.
    pub query: String,
    /// Cost model wire name.
    pub cost_model: &'static str,
    /// Number of relations joined.
    pub relations: usize,
    /// True when every plan of the space was costed.
    pub exhaustive: bool,
    /// Exact size of the bushy cross-product-free plan space.
    pub plan_count: u128,
    /// Number of plan costs in the explored population.
    pub explored: usize,
}

/// The full grid report, ready for JSON serialisation by the CLI.
#[derive(Debug, Clone, PartialEq)]
pub struct GridReport {
    /// One aggregate per estimator × cost-model × enumerator.
    pub cells: Vec<CellMetrics>,
    /// Every individual measurement.
    pub per_query: Vec<QueryCell>,
    /// How each query's space was explored, per cost model.
    pub spaces: Vec<SpaceSummary>,
}

/// Why the grid run failed.
#[derive(Debug)]
pub enum GridError {
    /// True cardinalities could not be extracted for a query.
    Truth {
        /// The query that failed.
        query: String,
        /// The execution error, rendered.
        detail: String,
    },
    /// An enumerator failed on a query.
    Enumeration {
        /// The query that failed.
        query: String,
        /// The underlying error.
        error: EnumerationError,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Truth { query, detail } => {
                write!(f, "true cardinalities unavailable for `{query}`: {detail}")
            }
            GridError::Enumeration { query, error } => {
                write!(f, "enumeration failed for `{query}`: {error:?}")
            }
        }
    }
}

impl std::error::Error for GridError {}

/// Wire name of a cardinality estimator profile, matching
/// [`EstimatorKind::parse`].
fn wire_name(kind: EstimatorKind) -> &'static str {
    match kind {
        EstimatorKind::Postgres => "postgres",
        EstimatorKind::PostgresTrueDistinct => "true-distinct",
        EstimatorKind::HyPer => "hyper",
        EstimatorKind::DbmsA => "dbms-a",
        EstimatorKind::DbmsB => "dbms-b",
        EstimatorKind::DbmsC => "dbms-c",
    }
}

/// The estimator profiles the grid exercises, in reporting order: `true`
/// (runtime truth overlay) first, then every synthetic profile.
const ESTIMATOR_KINDS: [EstimatorKind; 6] = [
    EstimatorKind::Postgres,
    EstimatorKind::PostgresTrueDistinct,
    EstimatorKind::HyPer,
    EstimatorKind::DbmsA,
    EstimatorKind::DbmsB,
    EstimatorKind::DbmsC,
];

/// All estimator wire names in reporting order (`true` + profiles).
pub fn estimator_names() -> Vec<&'static str> {
    let mut names = vec!["true"];
    names.extend(ESTIMATOR_KINDS.iter().map(|&k| wire_name(k)));
    names
}

/// FNV-1a over the query name folded with the master seed and a per-cell
/// salt — gives every (query, model, cell) its own deterministic RNG stream.
fn cell_seed(seed: u64, name: &str, model: usize, salt: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ seed.rotate_left(17) ^ ((model as u64) << 8) ^ salt
}

/// Runs the grid over `queries` (JOB or generated), exploring each query's
/// plan space under truth once per cost model.
pub fn run_grid(
    ctx: &BenchmarkContext,
    queries: &[QuerySpec],
    options: &GridOptions,
) -> Result<GridReport, GridError> {
    let models: Vec<(&'static str, Box<dyn CostModel>)> = vec![
        ("cmm", Box::new(SimpleCostModel::new())),
        ("postgres", Box::new(PostgresCostModel::standard())),
        ("postgres-mm", Box::new(PostgresCostModel::tuned_for_main_memory())),
    ];
    let config = PlannerConfig::default();
    let mut per_query: Vec<QueryCell> = Vec::new();
    let mut spaces: Vec<SpaceSummary> = Vec::new();

    for query in queries {
        let truth = ctx
            .try_true_cardinalities(query)
            .map_err(|e| GridError::Truth { query: query.name.clone(), detail: e.to_string() })?;
        let fallback = ctx.estimator(EstimatorKind::Postgres);
        let truth_est = FeedbackEstimator::new(truth.as_ref(), fallback.as_ref());
        let profiles: Vec<(&'static str, Box<dyn CardinalityEstimator + '_>)> =
            ESTIMATOR_KINDS.iter().map(|&k| (wire_name(k), ctx.estimator(k))).collect();

        for (mi, (model_name, model)) in models.iter().enumerate() {
            let truth_planner = Planner::new(ctx.db(), query, model.as_ref(), &truth_est, config);
            let mut space_rng = StdRng::seed_from_u64(cell_seed(options.seed, &query.name, mi, 0));
            let space = explore(&truth_planner, &options.space, &mut space_rng)
                .map_err(|error| GridError::Enumeration { query: query.name.clone(), error })?;
            spaces.push(SpaceSummary {
                query: query.name.clone(),
                cost_model: model_name,
                relations: query.rel_count(),
                exhaustive: space.exhaustive,
                plan_count: space.plan_count,
                explored: space.costs.len(),
            });
            // Re-cost the optimum the same way chosen plans are costed, so
            // identical plans compare exactly equal.
            let opt_cost = ctx.plan_cost(query, &space.optimum.plan, model.as_ref(), &truth_est);

            let mut estimators: Vec<(&'static str, &dyn CardinalityEstimator)> =
                vec![("true", &truth_est)];
            estimators.extend(
                profiles.iter().map(|(n, b)| (*n, b.as_ref() as &dyn CardinalityEstimator)),
            );
            for (ei, (est_name, est)) in estimators.iter().enumerate() {
                let planner = Planner::new(ctx.db(), query, model.as_ref(), *est, config);
                for (ni, &enum_name) in ENUMERATORS.iter().enumerate() {
                    let chosen = match enum_name {
                        "dpccp" => dpccp::optimize_bushy(&planner),
                        "left-deep" => {
                            restricted::optimize_restricted(&planner, ShapeRestriction::LeftDeep)
                        }
                        "goo" => goo::optimize_goo(&planner),
                        _ => {
                            let salt = 1 + (ei as u64) * ENUMERATORS.len() as u64 + ni as u64;
                            let mut rng = StdRng::seed_from_u64(cell_seed(
                                options.seed,
                                &query.name,
                                mi,
                                salt,
                            ));
                            quickpick::quickpick_best(&planner, options.quickpick_runs, &mut rng)
                        }
                    }
                    .map_err(|error| GridError::Enumeration { query: query.name.clone(), error })?;
                    let true_cost = ctx.plan_cost(query, &chosen.plan, model.as_ref(), &truth_est);
                    let cost_ratio = if opt_cost > 0.0 { true_cost / opt_cost } else { 1.0 };
                    per_query.push(QueryCell {
                        query: query.name.clone(),
                        estimator: est_name,
                        cost_model: model_name,
                        enumerator: enum_name,
                        cost_ratio,
                        rank: space.rank_of(true_cost),
                        subplan_optimality: subplan_optimality(
                            ctx,
                            query,
                            &chosen.plan,
                            model.as_ref(),
                            &truth_est,
                            &space.optimal_costs,
                        ),
                        optimal: true_cost <= opt_cost * (1.0 + COST_EPS),
                    });
                }
            }
        }
    }

    Ok(GridReport { cells: aggregate(&per_query), per_query, spaces })
}

/// Fraction of `plan`'s join subtrees whose true cost matches the optimal
/// cost of their relation set (1.0 for a plan with no joins).
fn subplan_optimality(
    ctx: &BenchmarkContext,
    query: &QuerySpec,
    plan: &PhysicalPlan,
    model: &dyn CostModel,
    truth: &dyn CardinalityEstimator,
    optimal_costs: &HashMap<RelSet, f64>,
) -> f64 {
    let sets = plan.join_rel_sets();
    if sets.is_empty() {
        return 1.0;
    }
    let optimal = sets
        .iter()
        .filter(|&&set| {
            let sub = plan.subplan(set).expect("join sets come from the plan itself");
            let cost = ctx.plan_cost(query, sub, model, truth);
            optimal_costs.get(&set).is_some_and(|&best| cost <= best * (1.0 + COST_EPS))
        })
        .count();
    optimal as f64 / sets.len() as f64
}

/// One aggregate per estimator × cost-model × enumerator, in reporting
/// order.
fn aggregate(per_query: &[QueryCell]) -> Vec<CellMetrics> {
    let mut cells = Vec::new();
    for est_name in estimator_names() {
        for model_name in COST_MODELS {
            for enum_name in ENUMERATORS {
                let rows: Vec<&QueryCell> = per_query
                    .iter()
                    .filter(|c| {
                        c.estimator == est_name
                            && c.cost_model == model_name
                            && c.enumerator == enum_name
                    })
                    .collect();
                if rows.is_empty() {
                    continue;
                }
                let ratios: Vec<f64> = rows.iter().map(|c| c.cost_ratio).collect();
                let ranks: Vec<f64> = rows.iter().map(|c| c.rank).collect();
                let optimal_queries = rows.iter().filter(|c| c.optimal).count();
                cells.push(CellMetrics {
                    estimator: est_name,
                    cost_model: model_name,
                    enumerator: enum_name,
                    queries: rows.len(),
                    optimal_queries,
                    optimal_plan_ratio: optimal_queries as f64 / rows.len() as f64,
                    geo_mean_cost_ratio: geometric_mean(&ratios),
                    median_rank: nearest_rank_percentile(&ranks, 0.5).unwrap_or(0.0),
                    mean_subplan_optimality: rows.iter().map(|c| c.subplan_optimality).sum::<f64>()
                        / rows.len() as f64,
                });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use qob_datagen::Scale;
    use qob_storage::IndexConfig;

    fn small_queries(ctx: &BenchmarkContext, n: usize) -> Vec<QuerySpec> {
        ctx.queries().iter().filter(|q| q.rel_count() <= 5).take(n).cloned().collect()
    }

    #[test]
    fn true_estimates_with_dpccp_always_find_the_optimum() {
        let ctx = BenchmarkContext::new(Scale::tiny(), IndexConfig::PrimaryKeyOnly).unwrap();
        let queries = small_queries(&ctx, 2);
        assert!(!queries.is_empty());
        let report = run_grid(&ctx, &queries, &GridOptions::default()).unwrap();
        for cell in &report.cells {
            assert!(cell.queries == queries.len());
            if cell.estimator == "true" && cell.enumerator == "dpccp" {
                assert_eq!(
                    cell.optimal_plan_ratio, 1.0,
                    "dpccp under truth must find the optimum ({} model)",
                    cell.cost_model
                );
                assert_eq!(cell.median_rank, 0.0);
                assert_eq!(cell.mean_subplan_optimality, 1.0);
            }
            assert!(cell.geo_mean_cost_ratio >= 1.0 - COST_EPS, "ratios never beat the optimum");
        }
        for cell in &report.per_query {
            assert!((0.0..=1.0).contains(&cell.rank));
            assert!((0.0..=1.0).contains(&cell.subplan_optimality));
            assert!(cell.cost_ratio >= 1.0 - COST_EPS);
        }
        // 7 estimators × 3 models × 4 enumerators, all present.
        assert_eq!(report.cells.len(), 7 * 3 * 4);
        assert_eq!(report.spaces.len(), queries.len() * 3);
        for space in &report.spaces {
            assert!(space.exhaustive, "≤ 5-relation queries are exhausted");
        }
    }

    #[test]
    fn grid_is_deterministic_for_a_fixed_seed() {
        let ctx = BenchmarkContext::new(Scale::tiny(), IndexConfig::PrimaryKeyOnly).unwrap();
        let queries = small_queries(&ctx, 1);
        let options = GridOptions { seed: 99, ..Default::default() };
        let a = run_grid(&ctx, &queries, &options).unwrap();
        let b = run_grid(&ctx, &queries, &options).unwrap();
        assert_eq!(a.per_query, b.per_query);
        assert_eq!(a.cells, b.cells);
        assert_eq!(a.spaces, b.spaces);
    }
}
