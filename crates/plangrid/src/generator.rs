//! Seeded random query generation over any bound schema.
//!
//! The generator walks the declared foreign-key graph: it starts from a
//! random FK edge and repeatedly attaches a *new* relation instance to a
//! random already-chosen instance along a random incident edge, so the join
//! graph is always a connected tree (self-joins arise naturally when a walk
//! revisits a table — each visit gets its own alias).  Filter predicates are
//! drawn from the **actual column domains**: literals are values sampled
//! from rows of the table, so generated predicates are never trivially
//! empty by construction.
//!
//! Every generated query is rendered to SQL ([`qob_sql::emit_query`]) and
//! compiled back ([`qob_sql::compile`]) as a built-in self-test: the
//! re-bound [`QuerySpec`] must be structurally identical to the one the
//! generator built, or [`generate`] refuses to return it.  The proptest
//! suite in `tests/plangrid_generator.rs` hammers this invariant across
//! arbitrary seeds and schemas.

use std::fmt;

use qob_plan::{BaseRelation, JoinEdge, QuerySpec};
use qob_storage::{CmpOp, ColumnId, DataType, Database, EncodedColumn, Predicate, TableId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Tuning knobs for [`generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorOptions {
    /// Minimum number of relations in the join subgraph (at least 2).
    pub min_relations: usize,
    /// Maximum number of relations in the join subgraph.
    pub max_relations: usize,
    /// Probability that a relation instance receives any filter at all.
    pub filter_probability: f64,
    /// Upper bound on the number of filter predicates per relation.
    pub max_filters_per_relation: usize,
}

impl Default for GeneratorOptions {
    fn default() -> Self {
        GeneratorOptions {
            min_relations: 2,
            max_relations: 6,
            filter_probability: 0.6,
            max_filters_per_relation: 2,
        }
    }
}

/// A generated query: the bound spec plus the SQL text it round-tripped
/// through.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// The structurally validated query.
    pub spec: QuerySpec,
    /// Its SQL rendering (the text that re-binds to `spec`).
    pub sql: String,
}

/// Why generation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum GeneratorError {
    /// The catalog declares no foreign key whose referenced table has a
    /// primary key — there is no join graph to walk.
    NoForeignKeys,
    /// The emit → parse → bind self-test did not reproduce the generated
    /// spec (this indicates a frontend bug, not a caller error).
    RoundTrip {
        /// The SQL that failed to round-trip.
        sql: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneratorError::NoForeignKeys => {
                write!(f, "the schema declares no usable foreign keys to walk")
            }
            GeneratorError::RoundTrip { sql, detail } => {
                write!(f, "generated query failed its SQL round-trip self-test: {detail}\n{sql}")
            }
        }
    }
}

impl std::error::Error for GeneratorError {}

/// One joinable FK edge: `from.from_column` references `to`'s primary key.
#[derive(Debug, Clone, Copy)]
struct FkEdge {
    from: TableId,
    from_column: ColumnId,
    to: TableId,
    to_column: ColumnId,
}

/// Identifiers the parser claims as keywords — never used as aliases.
const RESERVED: &[&str] = &[
    "select", "count", "from", "where", "as", "and", "or", "not", "in", "is", "null", "between",
    "like", "inner", "join", "cross", "on", "prepare", "execute",
];

/// Generates one random query named `name` over `db`'s FK graph.
///
/// Deterministic in `rng`: the same schema, options and generator state
/// produce the same query.  The result has already passed the
/// emit → parse → bind round-trip self-test.
pub fn generate(
    db: &Database,
    options: &GeneratorOptions,
    rng: &mut impl Rng,
    name: impl Into<String>,
) -> Result<GeneratedQuery, GeneratorError> {
    let name = name.into();
    let edges = fk_edges(db);
    if edges.is_empty() {
        return Err(GeneratorError::NoForeignKeys);
    }

    // -- Walk the FK graph into a connected join tree ----------------------
    let lo = options.min_relations.max(2);
    let hi = options.max_relations.max(lo);
    let target = rng.gen_range(lo..=hi).min(qob_plan::RelSet::MAX_RELS);
    let first = *edges.choose(rng).expect("non-empty");
    let mut tables: Vec<TableId> = vec![first.from, first.to];
    let mut joins = vec![JoinEdge {
        left: 0,
        left_column: first.from_column,
        right: 1,
        right_column: first.to_column,
    }];
    let mut attempts = 0usize;
    while tables.len() < target && attempts < target * 8 {
        attempts += 1;
        let anchor = rng.gen_range(0..tables.len());
        let anchor_table = tables[anchor];
        let incident: Vec<FkEdge> = edges
            .iter()
            .copied()
            .filter(|e| e.from == anchor_table || e.to == anchor_table)
            .collect();
        let Some(edge) = incident.choose(rng) else { continue };
        // Attach the far endpoint as a brand-new relation instance.
        let (new_table, anchor_column, new_column) = if edge.from == anchor_table {
            (edge.to, edge.from_column, edge.to_column)
        } else {
            (edge.from, edge.to_column, edge.from_column)
        };
        tables.push(new_table);
        joins.push(JoinEdge {
            left: anchor,
            left_column: anchor_column,
            right: tables.len() - 1,
            right_column: new_column,
        });
    }

    // -- Aliases, then filters drawn from the column domains ---------------
    let mut aliases: Vec<String> = Vec::with_capacity(tables.len());
    for &table in &tables {
        aliases.push(fresh_alias(db.table(table).name(), &aliases));
    }
    let relations: Vec<BaseRelation> = tables
        .iter()
        .zip(aliases)
        .map(|(&table, alias)| {
            let mut predicates = Vec::new();
            if rng.gen_bool(options.filter_probability) {
                let n = rng.gen_range(1..=options.max_filters_per_relation.max(1));
                for _ in 0..n {
                    if let Some(p) = random_predicate(db, table, rng) {
                        predicates.push(p);
                    }
                }
            }
            BaseRelation::filtered(table, alias, predicates)
        })
        .collect();
    let spec = QuerySpec::new(name.clone(), relations, joins);

    // -- Self-test: emit → parse → bind must reproduce the spec ------------
    let sql = qob_sql::emit_query(db, &spec);
    let rebound = qob_sql::compile(db, &sql, name).map_err(|e| GeneratorError::RoundTrip {
        sql: sql.clone(),
        detail: format!("re-compile failed: {e}"),
    })?;
    if rebound != spec {
        return Err(GeneratorError::RoundTrip {
            sql,
            detail: "re-bound spec differs from the generated spec".into(),
        });
    }
    Ok(GeneratedQuery { spec, sql })
}

/// Generates `count` queries named `{prefix}{i}` from one seed.
pub fn generate_many(
    db: &Database,
    options: &GeneratorOptions,
    count: usize,
    seed: u64,
    prefix: &str,
) -> Result<Vec<GeneratedQuery>, GeneratorError> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generate(db, options, &mut rng, format!("{prefix}{i}"))).collect()
}

/// All FK edges whose referenced table declares a primary key.
fn fk_edges(db: &Database) -> Vec<FkEdge> {
    let mut edges = Vec::new();
    for (tid, _) in db.tables() {
        for fk in &db.keys(tid).foreign_keys {
            if let Some(pk) = db.keys(fk.references).primary_key {
                edges.push(FkEdge {
                    from: tid,
                    from_column: fk.column,
                    to: fk.references,
                    to_column: pk,
                });
            }
        }
    }
    edges
}

/// A short unique alias for a table: the initials of its `_`-separated words
/// (`movie_companies` → `mc`), falling back to `t`, suffixed with a counter
/// on collision with earlier aliases or reserved words.
fn fresh_alias(table_name: &str, taken: &[String]) -> String {
    let initials: String = table_name
        .split('_')
        .filter_map(|w| w.chars().next())
        .filter(|c| c.is_ascii_alphabetic())
        .collect::<String>()
        .to_ascii_lowercase();
    let base = if initials.is_empty() { "t".to_string() } else { initials };
    let unusable =
        |candidate: &str| RESERVED.contains(&candidate) || taken.iter().any(|t| t == candidate);
    if !unusable(&base) {
        return base;
    }
    let mut n = 2usize;
    loop {
        let candidate = format!("{base}{n}");
        if !unusable(&candidate) {
            return candidate;
        }
        n += 1;
    }
}

/// One filter predicate over a random column of `table`, with literals drawn
/// from the column's actual values.  `None` when the chosen column offers
/// nothing usable (e.g. all-NULL).
fn random_predicate(db: &Database, table: TableId, rng: &mut impl Rng) -> Option<Predicate> {
    let t = db.table(table);
    if t.column_count() == 0 || t.row_count() == 0 {
        return None;
    }
    let column = ColumnId(rng.gen_range(0..t.column_count()) as u32);
    match t.column(column).data_type() {
        DataType::Int => {
            let value = sample_int(t.column(column), t.row_count(), rng)?;
            Some(match rng.gen_range(0..4u32) {
                0 => Predicate::IntCmp { column, op: CmpOp::Eq, value },
                1 => Predicate::IntCmp { column, op: CmpOp::Le, value },
                2 => Predicate::IntCmp { column, op: CmpOp::Ge, value },
                _ => {
                    let other = sample_int(t.column(column), t.row_count(), rng)?;
                    Predicate::IntBetween { column, low: value.min(other), high: value.max(other) }
                }
            })
        }
        DataType::Str => {
            let dict = t.column(column).dict()?;
            if dict.is_empty() {
                return Some(Predicate::IsNotNull { column });
            }
            Some(match rng.gen_range(0..4u32) {
                0 => Predicate::StrEq { column, value: sample_str(dict, rng) },
                1 if dict.len() >= 2 => {
                    let mut values =
                        vec![sample_str(dict, rng), sample_str(dict, rng), sample_str(dict, rng)];
                    values.dedup();
                    if values.len() < 2 {
                        Predicate::StrEq { column, value: values.remove(0) }
                    } else {
                        Predicate::StrIn { column, values }
                    }
                }
                2 => {
                    let value = sample_str(dict, rng);
                    let prefix: String = value.chars().take(rng.gen_range(1..=3)).collect();
                    Predicate::Like { column, pattern: format!("{prefix}%") }
                }
                _ => Predicate::IsNotNull { column },
            })
        }
    }
}

/// A string drawn uniformly from the column's dictionary.
fn sample_str(dict: &qob_storage::StringDict, rng: &mut impl Rng) -> String {
    dict.string(rng.gen_range(0..dict.len()) as u32).to_string()
}

/// A non-NULL integer drawn uniformly from the column's rows.
fn sample_int(col: &EncodedColumn, rows: usize, rng: &mut impl Rng) -> Option<i64> {
    for _ in 0..16 {
        if let Some(v) = col.int_at(rng.gen_range(0..rows)) {
            return Some(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use qob_storage::{ColumnMeta, DataType, IndexConfig, TableBuilder, Value};

    /// star schema: fact → d1, fact → d2, d1 → d2 (so walks can branch).
    fn db() -> Database {
        let mut db = Database::new();
        let mut fact = TableBuilder::new(
            "fact_events",
            vec![
                ColumnMeta::new("id", DataType::Int),
                ColumnMeta::new("d1_id", DataType::Int),
                ColumnMeta::new("d2_id", DataType::Int),
                ColumnMeta::new("amount", DataType::Int),
            ],
        );
        for i in 0..200i64 {
            fact.push_row(vec![
                Value::Int(i),
                Value::Int(i % 20),
                Value::Int(i % 10),
                Value::Int(i * 3 % 17),
            ])
            .unwrap();
        }
        let mut d1 = TableBuilder::new(
            "dim_one",
            vec![
                ColumnMeta::new("id", DataType::Int),
                ColumnMeta::new("d2_id", DataType::Int),
                ColumnMeta::new("label", DataType::Str),
            ],
        );
        for i in 0..20i64 {
            d1.push_row(vec![
                Value::Int(i),
                Value::Int(i % 10),
                Value::Str(format!("label-{}", i % 5)),
            ])
            .unwrap();
        }
        let mut d2 = TableBuilder::new(
            "dim_two",
            vec![ColumnMeta::new("id", DataType::Int), ColumnMeta::new("kind", DataType::Str)],
        );
        for i in 0..10i64 {
            d2.push_row(vec![Value::Int(i), Value::Str(format!("kind {i}"))]).unwrap();
        }
        let f = db.add_table(fact.finish()).unwrap();
        let a = db.add_table(d1.finish()).unwrap();
        let b = db.add_table(d2.finish()).unwrap();
        db.declare_primary_key(f, "id").unwrap();
        db.declare_primary_key(a, "id").unwrap();
        db.declare_primary_key(b, "id").unwrap();
        db.declare_foreign_key(f, "d1_id", a).unwrap();
        db.declare_foreign_key(f, "d2_id", b).unwrap();
        db.declare_foreign_key(a, "d2_id", b).unwrap();
        db.build_indexes(IndexConfig::PrimaryAndForeignKey).unwrap();
        db
    }

    #[test]
    fn same_seed_same_query_different_seed_usually_differs() {
        let db = db();
        let options = GeneratorOptions::default();
        let a = generate_many(&db, &options, 5, 42, "q").unwrap();
        let b = generate_many(&db, &options, 5, 42, "q").unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sql, y.sql);
            assert_eq!(x.spec, y.spec);
        }
        let c = generate_many(&db, &options, 5, 43, "q").unwrap();
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.sql != y.sql),
            "five queries from different seeds should not all coincide"
        );
    }

    #[test]
    fn generated_queries_are_connected_and_validated() {
        let db = db();
        let options = GeneratorOptions { max_relations: 6, ..Default::default() };
        for q in generate_many(&db, &options, 20, 7, "conn").unwrap() {
            assert!(q.spec.rel_count() >= 2);
            assert!(q.spec.rel_count() <= 6);
            q.spec.validate(&db).unwrap();
            let adjacency = q.spec.adjacency();
            assert!(q.spec.is_connected(q.spec.all_rels(), &adjacency));
            // A tree join graph: exactly rels − 1 edges.
            assert_eq!(q.spec.joins.len(), q.spec.rel_count() - 1);
        }
    }

    #[test]
    fn aliases_are_unique_and_never_keywords() {
        let db = db();
        let options = GeneratorOptions { max_relations: 6, ..Default::default() };
        for q in generate_many(&db, &options, 30, 3, "al").unwrap() {
            let mut seen = std::collections::HashSet::new();
            for rel in &q.spec.relations {
                assert!(seen.insert(rel.alias.clone()), "duplicate alias {}", rel.alias);
                assert!(!RESERVED.contains(&rel.alias.as_str()));
            }
        }
    }

    #[test]
    fn no_foreign_keys_is_reported() {
        let mut empty = Database::new();
        let mut t = TableBuilder::new("lone", vec![ColumnMeta::new("id", DataType::Int)]);
        t.push_row(vec![Value::Int(1)]).unwrap();
        empty.add_table(t.finish()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let err = generate(&empty, &GeneratorOptions::default(), &mut rng, "x").unwrap_err();
        assert_eq!(err, GeneratorError::NoForeignKeys);
    }

    #[test]
    fn alias_abbreviation_scheme() {
        assert_eq!(fresh_alias("movie_companies", &[]), "mc");
        assert_eq!(fresh_alias("movie_companies", &["mc".into()]), "mc2");
        assert_eq!(fresh_alias("a_series", &[]), "as2", "`as` is reserved");
        assert_eq!(fresh_alias("0numeric", &[]), "t");
    }
}
