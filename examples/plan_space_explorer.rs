//! Plan-space exploration: run Quickpick on one query under the three
//! physical designs and print the cost distribution of random plans relative
//! to the optimum — a text rendering of the paper's Figure 9.
//!
//! Run with `cargo run --release --example plan_space_explorer [query]`.

use qob_cardest::InjectedCardinalities;
use qob_core::{BenchmarkContext, EstimatorKind};
use qob_datagen::Scale;
use qob_enumerate::{Planner, PlannerConfig};
use qob_storage::IndexConfig;
use rand::SeedableRng;

fn main() {
    let query_name = std::env::args().nth(1).unwrap_or_else(|| "16d".to_owned());
    let runs = 2_000;

    let mut ctx = BenchmarkContext::new(Scale::small(), IndexConfig::PrimaryAndForeignKey)
        .expect("database generation");
    let query = ctx.query(&query_name).expect("unknown query name");

    // The paper normalises by the optimal plan of the FK configuration.
    let pg = ctx.estimator(EstimatorKind::Postgres);
    let truth = ctx.true_cardinalities(&query);
    let injected = InjectedCardinalities::new(&truth, pg.as_ref());
    let reference = ctx.optimize(&query, &injected, PlannerConfig::default()).unwrap().cost;
    drop(pg);

    println!("query {query_name}: cost of {runs} random (Quickpick) plans, relative to the optimal FK plan\n");
    for config in IndexConfig::all() {
        ctx.set_index_config(config).expect("index rebuild");
        let pg = ctx.estimator(EstimatorKind::Postgres);
        let injected = InjectedCardinalities::new(&truth, pg.as_ref());
        let model = qob_cost::SimpleCostModel::new();
        let planner = Planner::new(ctx.db(), &query, &model, &injected, PlannerConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let plans = qob_enumerate::quickpick::quickpick_plans(&planner, runs, &mut rng).unwrap();
        let mut ratios: Vec<f64> = plans.iter().map(|p| p.cost / reference).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());

        // Text histogram over log-spaced buckets (1x, 10x, 100x, ...).
        let buckets = [1.5, 10.0, 100.0, 1_000.0, 10_000.0, f64::INFINITY];
        let labels = ["<=1.5x", "<=10x", "<=100x", "<=1e3x", "<=1e4x", ">1e4x"];
        println!("{}:", config.label());
        let mut start = 0usize;
        for (bound, label) in buckets.iter().zip(labels) {
            let end = ratios.partition_point(|r| r <= bound);
            let count = end - start;
            let bar = "#".repeat((count * 60 / runs).max(usize::from(count > 0)));
            println!("  {label:>8} {count:>6} {bar}");
            start = end;
        }
        println!(
            "  best {:.2}x, median {:.2}x, worst {:.1}x\n",
            ratios.first().unwrap(),
            ratios[ratios.len() / 2],
            ratios.last().unwrap()
        );
    }
}
