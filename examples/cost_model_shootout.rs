//! Cost-model shootout: optimize and execute a slice of the workload under
//! the three cost models of Section 5 (PostgreSQL-style, main-memory tuned,
//! and the simple C_mm), with estimated and with true cardinalities, and
//! print how well each model's cost predicts the measured runtime.
//!
//! Run with `cargo run --release --example cost_model_shootout`.

use qob_core::experiments::{cost_model_correlation, CostModelKind};
use qob_core::BenchmarkContext;
use qob_datagen::Scale;
use qob_storage::IndexConfig;
use std::time::Duration;

fn main() {
    let ctx = BenchmarkContext::new(Scale::small(), IndexConfig::PrimaryAndForeignKey)
        .expect("database generation");
    println!("optimizing and executing a 30-query slice of the workload under 3 cost models...\n");
    let panels = cost_model_correlation(&ctx, Some(30), Duration::from_secs(20));

    println!(
        "{:<22} {:>18} {:>16} {:>22}",
        "cost model", "cardinalities", "median fit error", "geo-mean runtime (ms)"
    );
    for panel in &panels {
        println!(
            "{:<22} {:>18} {:>15.0}% {:>22.3}",
            panel.model.label(),
            if panel.true_cardinalities { "true" } else { "PostgreSQL" },
            panel.median_fit_error * 100.0,
            panel.geometric_mean_runtime * 1e3,
        );
    }

    // The Section 5.4 comparison: runtime improvement from better cost models
    // under true cardinalities.
    let runtime = |kind: CostModelKind| {
        panels
            .iter()
            .find(|p| p.model == kind && p.true_cardinalities)
            .map(|p| p.geometric_mean_runtime)
            .unwrap_or(f64::NAN)
    };
    let standard = runtime(CostModelKind::Standard);
    println!(
        "\nwith true cardinalities, relative to the standard model: tuned {:.0}% faster, simple {:.0}% faster",
        (1.0 - runtime(CostModelKind::Tuned) / standard) * 100.0,
        (1.0 - runtime(CostModelKind::Simple) / standard) * 100.0,
    );
    println!("(the paper reports 41% and 34%; the direction and rough magnitude are what matters)");
}
