//! Quickstart: generate the synthetic IMDB-like database, pick a JOB query,
//! optimize it with different cardinality sources and execute the plans.
//!
//! Run with `cargo run --release --example quickstart`.

use qob_cardest::InjectedCardinalities;
use qob_core::{BenchmarkContext, EstimatorKind};
use qob_datagen::Scale;
use qob_enumerate::PlannerConfig;
use qob_exec::ExecutionOptions;
use qob_storage::IndexConfig;

fn main() {
    // 1. Build the benchmark context: data, statistics, indexes, workload.
    let ctx = BenchmarkContext::new(Scale::small(), IndexConfig::PrimaryKeyOnly)
        .expect("database generation");
    println!(
        "generated {} tables / {} rows, workload of {} queries",
        ctx.db().table_count(),
        ctx.db().total_rows(),
        ctx.queries().len()
    );

    // 2. Pick the paper's example query (13d) and look at its structure.
    let query = ctx.query("13d").expect("query 13d");
    println!(
        "\nquery 13d: {} relations, {} join predicates, {} selections",
        query.rel_count(),
        query.join_predicate_count(),
        query.base_predicate_count()
    );

    // 3. Optimize with PostgreSQL-style estimates and with true cardinalities.
    let pg = ctx.estimator(EstimatorKind::Postgres);
    let truth = ctx.true_cardinalities(&query);
    let injected = InjectedCardinalities::new(&truth, pg.as_ref());

    let estimate_plan = ctx.optimize(&query, pg.as_ref(), PlannerConfig::default()).unwrap();
    let optimal_plan = ctx.optimize(&query, &injected, PlannerConfig::default()).unwrap();

    println!("\nplan from PostgreSQL-style estimates:\n{}", estimate_plan.plan.render(&query));
    println!("plan from true cardinalities:\n{}", optimal_plan.plan.render(&query));

    // 4. Execute both on the same engine and compare.
    let options = ExecutionOptions::default();
    let est_run = ctx.execute(&query, &estimate_plan.plan, pg.as_ref(), &options).unwrap();
    let opt_run = ctx.execute(&query, &optimal_plan.plan, &injected, &options).unwrap();
    println!(
        "estimate-based plan: {} rows in {:?}\ntrue-cardinality plan: {} rows in {:?}\nslowdown: {:.2}x",
        est_run.rows,
        est_run.elapsed,
        opt_run.rows,
        opt_run.elapsed,
        est_run.elapsed.as_secs_f64() / opt_run.elapsed.as_secs_f64().max(1e-9)
    );
}
