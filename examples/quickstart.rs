//! Quickstart: generate the synthetic IMDB-like database, write a query as
//! plain SQL, and run it through the whole pipeline — parse → bind →
//! estimate → plan → execute — comparing the estimate-driven plan against
//! the true-cardinality plan (the paper's central experiment, on one query).
//!
//! Run with `cargo run --release --example quickstart`.

use qob_cardest::InjectedCardinalities;
use qob_core::{BenchmarkContext, EstimatorKind};
use qob_datagen::Scale;
use qob_enumerate::PlannerConfig;
use qob_exec::ExecutionOptions;
use qob_sql::{compile, emit_query};
use qob_storage::IndexConfig;

fn main() {
    // 1. Build the benchmark context: data, statistics, indexes, workload.
    let ctx = BenchmarkContext::new(Scale::small(), IndexConfig::PrimaryKeyOnly)
        .expect("database generation");
    println!(
        "generated {} tables / {} rows, workload of {} queries",
        ctx.db().table_count(),
        ctx.db().total_rows(),
        ctx.queries().len()
    );

    // 2. Express a query as plain SQL and push it through the text frontend.
    //    (This is the JOB-13-style shape: companies × kind × info ratings.)
    let sql = "\
        SELECT MIN(miidx.info) AS rating, MIN(t.title) AS movie\n\
        FROM title t, kind_type kt, movie_info_idx miidx, info_type it2,\n\
             movie_companies mc, company_name cn, company_type ct\n\
        WHERE t.kind_id = kt.id\n\
          AND miidx.movie_id = t.id AND miidx.info_type_id = it2.id\n\
          AND mc.movie_id = t.id AND mc.company_id = cn.id\n\
          AND mc.company_type_id = ct.id\n\
          AND kt.kind = 'movie'\n\
          AND cn.country_code = '[de]'\n\
          AND it2.info = 'rating'";
    let query = match compile(ctx.db(), sql, "quickstart") {
        Ok(query) => query,
        Err(e) => {
            // Diagnostics render against the source with a caret.
            eprintln!("{}", e.render(sql));
            std::process::exit(1);
        }
    };
    println!(
        "\nbound `{}`: {} relations, {} join predicates, {} selections",
        query.name,
        query.rel_count(),
        query.join_predicate_count(),
        query.base_predicate_count()
    );
    println!("\nround-tripped back to SQL:\n{}", emit_query(ctx.db(), &query));

    // 3. Optimize with PostgreSQL-style estimates and with true cardinalities.
    let pg = ctx.estimator(EstimatorKind::Postgres);
    let truth = ctx.true_cardinalities(&query);
    let injected = InjectedCardinalities::new(&truth, pg.as_ref());

    let estimate_plan = ctx.optimize(&query, pg.as_ref(), PlannerConfig::default()).unwrap();
    let optimal_plan = ctx.optimize(&query, &injected, PlannerConfig::default()).unwrap();

    println!("\nplan from PostgreSQL-style estimates:\n{}", estimate_plan.plan.render(&query));
    println!("plan from true cardinalities:\n{}", optimal_plan.plan.render(&query));

    // 4. Execute both on the same engine and compare.
    let options = ExecutionOptions::default();
    let est_run = ctx.execute(&query, &estimate_plan.plan, pg.as_ref(), &options).unwrap();
    let opt_run = ctx.execute(&query, &optimal_plan.plan, &injected, &options).unwrap();
    println!(
        "estimate-based plan: {} rows in {:?}\ntrue-cardinality plan: {} rows in {:?}\nslowdown: {:.2}x",
        est_run.rows,
        est_run.elapsed,
        opt_run.rows,
        opt_run.elapsed,
        est_run.elapsed.as_secs_f64() / opt_run.elapsed.as_secs_f64().max(1e-9)
    );
}
