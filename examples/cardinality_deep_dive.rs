//! Cardinality-estimation deep dive: for one JOB query, print the estimate
//! of every system next to the true cardinality for each subexpression size,
//! the per-query version of the paper's Figure 3.
//!
//! Run with `cargo run --release --example cardinality_deep_dive [query]`.

use qob_cardest::q_error;
use qob_core::{BenchmarkContext, EstimatorKind};
use qob_datagen::Scale;
use qob_storage::IndexConfig;

fn main() {
    let query_name = std::env::args().nth(1).unwrap_or_else(|| "17b".to_owned());
    let ctx = BenchmarkContext::new(Scale::small(), IndexConfig::PrimaryKeyOnly)
        .expect("database generation");
    let query = ctx.query(&query_name).expect("unknown query name");
    let truth = ctx.true_cardinalities(&query);

    let estimators: Vec<_> =
        EstimatorKind::paper_systems().iter().map(|k| (*k, ctx.estimator(*k))).collect();

    println!("query {query_name}: estimate / true cardinality per subexpression\n");
    print!("{:<28} {:>12}", "subexpression (aliases)", "true");
    for (kind, _) in &estimators {
        print!(" {:>14}", kind.label());
    }
    println!();

    let mut subexpressions = query.connected_subexpressions();
    subexpressions.sort_by_key(|s| (s.len(), s.bits()));
    for set in subexpressions {
        let Some(true_card) = truth.get(set) else { continue };
        let aliases: Vec<&str> = set.iter().map(|r| query.relations[r].alias.as_str()).collect();
        print!("{:<28} {:>12.0}", aliases.join(","), true_card);
        for (_, est) in &estimators {
            let estimate = est.estimate(&query, set);
            print!(" {:>8.0} ({:>3.0}x)", estimate, q_error(estimate, true_card));
        }
        println!();
    }

    println!("\n(q-error in parentheses; note how errors grow with the subexpression size)");
}
