#!/usr/bin/env bash
# Ingestion smoke: exercise the checked-in 21-table CSV fixture through
# `qob ingest`, then generate a tiny synthetic database, export it to CSV,
# ingest it back with a snapshot leg, and assert the BENCH_ingest.json
# numbers tell the story docs/STORAGE.md claims: the encoded form is
# smaller than the plain layout, the snapshot round-trips every row, and
# the lazy point query faults in only a fraction of the snapshot file.
#
# CI runs this on every push; re-run it locally after
# `cargo build --release` to regenerate the committed bench file.
#
# Usage: scripts/ingest_smoke.sh [path-to-qob-binary]
set -euo pipefail

QOB=${1:-./target/release/qob}
OUT=${QOB_INGEST_OUT:-BENCH_ingest.json}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# The fixture is tiny but exercises every parser edge (quoted commas,
# escaped quotes, embedded newlines, NULL vs "" fields, a .tsv file).
"$QOB" ingest tests/fixtures/imdb_csv --output "$WORK/fixture.json"
jq -e '.rows > 0 and (.tables | length) == 21' "$WORK/fixture.json"
jq -e '[.tables[] | select(.table == "title")][0].rows == 6' "$WORK/fixture.json"

# The measured run: generate → export CSV → ingest → snapshot → lazy probe.
"$QOB" ingest "$WORK/csv" --generate tiny \
  --snapshot "$WORK/db.qob" --output "$OUT"

jq -e '.bench == "ingest" and .rows > 1000' "$OUT"
jq -e '(.tables | length) == 21' "$OUT"
# Auto encoding must beat the plain layout on the synthetic IMDB data.
jq -e '.encoded_bytes > 0 and .encoded_bytes < .plain_bytes' "$OUT"
jq -e '.compression_ratio > 1' "$OUT"
# The snapshot leg: save + eager reload round-tripped (the binary exits
# non-zero on row loss), and the lazy point query reads less than the file.
jq -e '.snapshot.file_bytes > 0' "$OUT"
jq -e '.snapshot.lazy_point_query_rows == 1' "$OUT"
jq -e '.snapshot.lazy_bytes_read < .snapshot.file_bytes' "$OUT"
jq -e '.snapshot.lazy_fraction_of_file < 0.5' "$OUT"

echo "ingest smoke OK — wrote $OUT"
