#!/usr/bin/env bash
# Concurrent-load bench: the same statement mix, the same warm snapshot,
# the same total worker budget — once on the shared server-wide pool and
# once with the historical per-query pools — then one BENCH_load.json
# holding both sides so the speedup is a diff, not a claim.
#
# `qob bench-load` itself verifies every concurrent answer against a
# sequential baseline and exits non-zero on any error or mismatch, so a
# green run *is* the isolation check.
#
# Usage: scripts/load_bench.sh [path-to-qob-binary]
# Env:   QOB_LOAD_CONNECTIONS (64)  concurrent connections per run
#        QOB_LOAD_REQUESTS    (16)  requests per connection
#        QOB_LOAD_PASSES      (3)   bench passes per mode (median by QPS
#                                   is what lands in BENCH_load.json)
#        QOB_LOAD_SCALE       (small) snapshot scale
#        QOB_LOAD_WORKERS     (8)   total worker budget for both modes
#        QOB_LOAD_MORSEL      (512) execution morsel size (the small-scale
#                                   tables need small morsels before any
#                                   pipeline has work to parallelise)
#        QOB_LOAD_STRICT      (1)   assert shared beats per-query on
#                                   QPS and p99 (set 0 on noisy CI boxes)
set -euo pipefail

QOB=${1:-./target/release/qob}
ADDR=${QOB_LOAD_ADDR:-127.0.0.1:4551}
OUT=${QOB_LOAD_OUT:-BENCH_load.json}
SCALE=${QOB_LOAD_SCALE:-small}
CONNECTIONS=${QOB_LOAD_CONNECTIONS:-64}
REQUESTS=${QOB_LOAD_REQUESTS:-16}
PASSES=${QOB_LOAD_PASSES:-3}
WORKERS=${QOB_LOAD_WORKERS:-8}
MORSEL=${QOB_LOAD_MORSEL:-512}
STRICT=${QOB_LOAD_STRICT:-1}
SNAPSHOT=${QOB_LOAD_SNAPSHOT:-load-bench.snap}

# Build the snapshot once up front so both serve runs start warm and
# neither pays generation time inside its measurement window.
if [ ! -e "$SNAPSHOT" ]; then
  "$QOB" --snapshot "$SNAPSHOT" --scale "$SCALE" -e \
    'SELECT COUNT(*) FROM title' > /dev/null
fi

# Runs PASSES bench passes against one server and keeps the median pass
# (by QPS) as `load-<label>.json` — single passes on a busy box swing by
# ±10%, the median doesn't.
run_mode() { # run_mode <label> <serve flags...>
  local label=$1
  shift
  "$QOB" serve --addr "$ADDR" --snapshot "$SNAPSHOT" --plan-cache "$@" \
    > "load-serve-$label.log" 2>&1 &
  local pid=$!
  for _ in $(seq 1 100); do
    "$QOB" connect --addr "$ADDR" --ping > /dev/null 2>&1 && break
    sleep 0.1
  done
  for pass in $(seq 1 "$PASSES"); do
    "$QOB" bench-load --addr "$ADDR" --connections "$CONNECTIONS" \
      --requests "$REQUESTS" --label "$label" --output "load-$label-$pass.json"
  done
  jq -s 'sort_by(.qps) | .[(length - 1) / 2 | floor]' \
    "load-$label-"*.json > "load-$label.json"
  rm -f "load-$label-"*.json
  "$QOB" connect --addr "$ADDR" --shutdown
  wait "$pid" || true
}

# Same total per-statement budget on both sides.  The baseline is the
# historical server: every statement scopes its own fresh N-thread pool
# and nothing bounds how many run at once, so 64 connections pay thread
# churn and oversubscription.  The contender is this PR's scheduler: N
# persistent shared workers plus admission control (2N concurrent).
run_mode per-query --per-query-pools --threads "$WORKERS" \
  --morsel-size "$MORSEL" --max-concurrent 0
run_mode shared --workers "$WORKERS" --threads "$WORKERS" \
  --morsel-size "$MORSEL" --max-concurrent $((2 * WORKERS))

jq -n \
  --slurpfile shared load-shared.json \
  --slurpfile per_query load-per-query.json \
  --argjson workers "$WORKERS" \
  '{bench: "load", workers: $workers, shared: $shared[0], per_query: $per_query[0]}' \
  > "$OUT"

# Both runs answered correctly (bench-load already enforced it) and the
# latency tail is a real number.
jq -e '.shared.errors == 0 and .per_query.errors == 0
       and .shared.mismatches == 0 and .per_query.mismatches == 0
       and (.shared.p99_us > 0) and (.per_query.p99_us > 0)' "$OUT" > /dev/null

if [ "$STRICT" = "1" ]; then
  jq -e '.shared.qps > .per_query.qps' "$OUT" > /dev/null \
    || { echo "FAIL: shared pool QPS not above per-query pools" >&2; exit 1; }
  jq -e '.shared.p99_us < .per_query.p99_us' "$OUT" > /dev/null \
    || { echo "FAIL: shared pool p99 not below per-query pools" >&2; exit 1; }
fi

rm -f load-serve-shared.log load-serve-per-query.log \
  load-shared.json load-per-query.json
echo "load bench OK — wrote $OUT"
jq -r '"shared: \(.shared.qps) qps, p99 \(.shared.p99_us)us | per-query: \(.per_query.qps) qps, p99 \(.per_query.p99_us)us"' "$OUT"
