#!/usr/bin/env bash
# Observability smoke: start a warm server, run a fixed query mix (plain,
# traced, EXPLAIN ANALYZE, adaptive), scrape the metrics endpoint, assert
# the exposition parses and the counters match exactly what just ran, and
# write BENCH_serve_smoke.json (warm latency quantiles + cache/replan
# counters).  CI runs this on every push; re-run it locally after
# `cargo build --release` to regenerate the committed bench file.
#
# Usage: scripts/observe_smoke.sh [path-to-qob-binary]
set -euo pipefail

QOB=${1:-./target/release/qob}
ADDR=${QOB_SMOKE_ADDR:-127.0.0.1:4549}
OUT=${QOB_SMOKE_OUT:-BENCH_serve_smoke.json}

SQL="SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn
     WHERE mc.movie_id = t.id AND mc.company_id = cn.id
       AND cn.country_code = '[us]' AND t.production_year > 2000"
# The year filter makes the estimates diverge enough to re-plan at a 1.5x
# threshold (same query as the CI adaptive smoke).
ADAPT="SELECT MIN(t.title) FROM title t, movie_info mi, info_type it,
              cast_info ci, name n
       WHERE mi.movie_id = t.id AND mi.info_type_id = it.id
         AND ci.movie_id = t.id AND ci.person_id = n.id
         AND it.info = 'genres' AND t.production_year > 2005"

"$QOB" serve --addr "$ADDR" --threads 1 --plan-cache --slow-query-ms 10000 \
  > observe-serve.log 2>&1 &
SERVER_PID=$!
trap 'kill $SERVER_PID 2>/dev/null || true' EXIT
for i in $(seq 1 100); do
  "$QOB" connect --addr "$ADDR" --ping >/dev/null 2>&1 && break
  sleep 0.1
done

# Five warm runs populate the latency histograms and the plan cache...
for i in 1 2 3 4 5; do
  echo "$SQL" | "$QOB" connect --addr "$ADDR" > observe-run$i.out
done
grep -q '^plan cache: miss' observe-run1.out
grep -q '^plan cache: hit' observe-run5.out

# ...a traced session exposes phase spans and per-operator times...
echo "$SQL" | "$QOB" connect --addr "$ADDR" --set tracing=true > observe-traced.out
grep -q '^phases: parse' observe-traced.out
grep -Eq '^\{[^}]+\} +[0-9]+ +[0-9]+ +[0-9.]+x +[0-9]+us +[0-9]+$' observe-traced.out

# ...EXPLAIN ANALYZE annotates the plan tree with est vs true vs time...
echo "EXPLAIN ANALYZE $SQL" | "$QOB" connect --addr "$ADDR" > observe-analyze.out
for needle in 'est=' 'true=' 'q=' 'time=' 'morsels='; do
  grep -q "$needle" observe-analyze.out
done

# ...and an adaptive run fires re-plans into the counters and the
# structured event log on the server's stderr.
echo "$ADAPT" | "$QOB" connect --addr "$ADDR" \
  --set adaptive=true --set adaptive_threshold=1.5 > observe-adaptive.out
grep -Eq '^re-plan [0-9]+: after \{' observe-adaptive.out
grep -q '"event":"replan"' observe-serve.log

# The scrape validates the exposition client-side (qob connect --metrics
# refuses an unparseable body); the counters match the eight statements
# this script just ran, exactly.
"$QOB" connect --addr "$ADDR" --metrics --bench-json "$OUT" > observe-metrics.txt
grep -q '^qob_queries_total 8$' observe-metrics.txt
grep -q '^qob_query_errors_total 0$' observe-metrics.txt
grep -q '^qob_execute_seconds_count 8$' observe-metrics.txt
grep -q '^qob_plan_cache_misses_total 2$' observe-metrics.txt
grep -q '^# TYPE qob_query_seconds histogram$' observe-metrics.txt
REPLANS=$(grep '^qob_replans_total ' observe-metrics.txt | grep -o '[0-9]*$')
test "$REPLANS" -ge 1

grep -q '"bench":"serve_smoke"' "$OUT"
grep -q '"queries_total":8' "$OUT"
grep -q '"query_p50_us":' "$OUT"
grep -q '"query_p99_us":' "$OUT"
grep -q '"plan_cache_hits":' "$OUT"
grep -q '"replans_total":' "$OUT"

"$QOB" connect --addr "$ADDR" --shutdown
wait $SERVER_PID
trap - EXIT
rm -f observe-serve.log observe-run[1-5].out observe-traced.out \
  observe-analyze.out observe-adaptive.out observe-metrics.txt
echo "observe smoke OK — wrote $OUT"
