#!/usr/bin/env bash
# Observability smoke: start a warm server, run a fixed query mix (plain,
# traced, EXPLAIN ANALYZE, adaptive), scrape the metrics endpoint, assert
# the exposition parses and the counters match exactly what just ran, and
# write BENCH_serve_smoke.json (warm latency quantiles + cache/replan
# counters).  A second server with a tiny --regression-ratio then forces
# the regression detector end-to-end, and its scheduler timeline exports
# as Chrome trace-event JSON (BENCH_trace.json, validated with jq).  CI
# runs this on every push; re-run it locally after
# `cargo build --release` to regenerate the committed bench files.
#
# Usage: scripts/observe_smoke.sh [path-to-qob-binary]
set -euo pipefail

QOB=${1:-./target/release/qob}
ADDR=${QOB_SMOKE_ADDR:-127.0.0.1:4549}
REG_ADDR=${QOB_SMOKE_REG_ADDR:-127.0.0.1:4550}
OUT=${QOB_SMOKE_OUT:-BENCH_serve_smoke.json}
TRACE_OUT=${QOB_SMOKE_TRACE_OUT:-BENCH_trace.json}

SQL="SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn
     WHERE mc.movie_id = t.id AND mc.company_id = cn.id
       AND cn.country_code = '[us]' AND t.production_year > 2000"
# The year filter makes the estimates diverge enough to re-plan at a 1.5x
# threshold (same query as the CI adaptive smoke).
ADAPT="SELECT MIN(t.title) FROM title t, movie_info mi, info_type it,
              cast_info ci, name n
       WHERE mi.movie_id = t.id AND mi.info_type_id = it.id
         AND ci.movie_id = t.id AND ci.person_id = n.id
         AND it.info = 'genres' AND t.production_year > 2005"

"$QOB" serve --addr "$ADDR" --threads 1 --plan-cache --slow-query-ms 10000 \
  > observe-serve.log 2>&1 &
SERVER_PID=$!
trap 'kill $SERVER_PID 2>/dev/null || true' EXIT
for i in $(seq 1 100); do
  "$QOB" connect --addr "$ADDR" --ping >/dev/null 2>&1 && break
  sleep 0.1
done

# Five warm runs populate the latency histograms and the plan cache...
for i in 1 2 3 4 5; do
  echo "$SQL" | "$QOB" connect --addr "$ADDR" > observe-run$i.out
done
grep -q '^plan cache: miss' observe-run1.out
grep -q '^plan cache: hit' observe-run5.out

# ...a traced session exposes phase spans and per-operator times...
echo "$SQL" | "$QOB" connect --addr "$ADDR" --set tracing=true > observe-traced.out
grep -q '^phases: parse' observe-traced.out
grep -Eq '^\{[^}]+\} +[0-9]+ +[0-9]+ +[0-9.]+x +[0-9]+us +[0-9]+$' observe-traced.out

# ...EXPLAIN ANALYZE annotates the plan tree with est vs true vs time...
echo "EXPLAIN ANALYZE $SQL" | "$QOB" connect --addr "$ADDR" > observe-analyze.out
for needle in 'est=' 'true=' 'q=' 'time=' 'morsels='; do
  grep -q "$needle" observe-analyze.out
done

# ...and an adaptive run fires re-plans into the counters and the
# structured event log on the server's stderr.
echo "$ADAPT" | "$QOB" connect --addr "$ADDR" \
  --set adaptive=true --set adaptive_threshold=1.5 > observe-adaptive.out
grep -Eq '^re-plan [0-9]+: after \{' observe-adaptive.out
grep -q '"event":"replan"' observe-serve.log

# The scrape validates the exposition client-side (qob connect --metrics
# refuses an unparseable body); the counters match the eight statements
# this script just ran, exactly.
"$QOB" connect --addr "$ADDR" --metrics --bench-json "$OUT" > observe-metrics.txt
grep -q '^qob_queries_total 8$' observe-metrics.txt
grep -q '^qob_query_errors_total 0$' observe-metrics.txt
grep -q '^qob_execute_seconds_count 8$' observe-metrics.txt
grep -q '^qob_plan_cache_misses_total 2$' observe-metrics.txt
grep -q '^# TYPE qob_query_seconds histogram$' observe-metrics.txt
REPLANS=$(grep '^qob_replans_total ' observe-metrics.txt | grep -o '[0-9]*$')
test "$REPLANS" -ge 1

grep -q '"bench":"serve_smoke"' "$OUT"
grep -q '"queries_total":8' "$OUT"
grep -q '"query_p50_us":' "$OUT"
grep -q '"query_p99_us":' "$OUT"
grep -q '"plan_cache_hits":' "$OUT"
grep -q '"replans_total":' "$OUT"

# The per-fingerprint history mirrors the statement mix exactly: the main
# query ran 7 times under one structural fingerprint (5 warm + 1 traced +
# 1 EXPLAIN ANALYZE — literals and tracing don't change the fingerprint),
# the adaptive query once, and the pure EXPLAIN never recorded.
"$QOB" connect --addr "$ADDR" --history > observe-history.json
jq -e '.recorded == 8' observe-history.json
jq -e '.fingerprints | length == 2' observe-history.json
jq -e '.fingerprints[0].count == 7 and .fingerprints[1].count == 1' observe-history.json
jq -e '.fingerprints[0].p50_us > 0 and .fingerprints[0].p99_us >= .fingerprints[0].p50_us' \
  observe-history.json
jq -e '.fingerprints[0].fingerprint | test("^[0-9a-f]{16}$")' observe-history.json
jq -e '.regressions == []' observe-history.json
# `--history 1` caps the list without touching the totals.
"$QOB" connect --addr "$ADDR" --history 1 > observe-history-top.json
jq -e '(.fingerprints | length == 1) and .recorded == 8' observe-history-top.json

"$QOB" connect --addr "$ADDR" --shutdown
wait $SERVER_PID
trap - EXIT

# --- Regression + trace leg: a second server with a 0.01x regression
# threshold (any recent median "exceeds" 1% of baseline, so a flat series
# fires deterministically once the windows fill) and a 2-worker pool with
# small morsels (so pipeline spans land on both pool workers).
# --slow-query-ms switches the structured event log on (the 10s threshold
# keeps slow_query events themselves out of the way).
"$QOB" serve --addr "$REG_ADDR" --workers 2 --morsel-size 16 \
  --regression-ratio 0.01 --slow-query-ms 10000 > regress-serve.log 2>&1 &
REG_PID=$!
trap 'kill $REG_PID 2>/dev/null || true' EXIT
for i in $(seq 1 100); do
  "$QOB" connect --addr "$REG_ADDR" --ping >/dev/null 2>&1 && break
  sleep 0.1
done

# Baseline window (8) + recent window (4) = 12 samples arm and fire the
# detector exactly once (it latches per fingerprint).
for i in $(seq 1 12); do
  echo "$SQL" | "$QOB" connect --addr "$REG_ADDR" >/dev/null
done
grep -q '"event":"regression"' regress-serve.log
"$QOB" connect --addr "$REG_ADDR" --metrics > regress-metrics.txt
grep -q '^qob_regressions_total 1$' regress-metrics.txt
"$QOB" connect --addr "$REG_ADDR" --history > regress-history.json
jq -e '.regressions | length == 1' regress-history.json
jq -e '.fingerprints[0].regressions == 1' regress-history.json
jq -e '.regressions[0].factor > 0.01 and .regressions[0].ratio == 0.01' regress-history.json

# The Chrome trace export is a plain JSON array of structurally complete
# events (about://tracing and Perfetto both load it): every event carries
# ph/ts/pid/tid/name, both pool workers announce themselves, and the
# pipeline spans cover more than one thread.
"$QOB" connect --addr "$REG_ADDR" --trace-out "$TRACE_OUT"
jq -e 'type == "array" and length > 0' "$TRACE_OUT"
jq -e 'all(.[]; has("ph") and has("ts") and has("pid") and has("tid") and has("name"))' \
  "$TRACE_OUT"
jq -e '[.[] | select(.ph == "M" and .name == "thread_name")] | length >= 2' "$TRACE_OUT"
jq -e '[.[] | select(.ph == "X")] | length > 0' "$TRACE_OUT"
jq -e '[.[] | select(.ph == "X") | .tid] | unique | length >= 2' "$TRACE_OUT"

"$QOB" connect --addr "$REG_ADDR" --shutdown
wait $REG_PID
trap - EXIT
rm -f observe-serve.log observe-run[1-5].out observe-traced.out \
  observe-analyze.out observe-adaptive.out observe-metrics.txt \
  observe-history.json observe-history-top.json \
  regress-serve.log regress-metrics.txt regress-history.json
echo "observe smoke OK — wrote $OUT and $TRACE_OUT"
